"""Property-based tests for the probabilistic core / truss baselines.

These pin down the structural invariants the paper relies on when using
the innermost (k, eta)-core and (k, gamma)-truss as comparison points
(Tables III-VI):

* decompositions are monotone in the probability threshold,
* (k, .)-subgraphs are nested in k,
* the incremental Poisson-binomial maintenance used by the truss peel
  (convolve a wing in, divide it back out) is an exact inverse.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.probabilistic_core import (
    degree_tail_probabilities,
    eta_core_decomposition,
    k_eta_core,
)
from repro.baselines.probabilistic_truss import (
    _deconvolve_wing,
    _pmf_from_wings,
    _support_from_pmf,
    gamma_truss_decomposition,
    k_gamma_truss,
)
from repro.graph.uncertain import UncertainGraph

from .conftest import random_uncertain_graph

probabilities = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=0, max_size=12
)


def _graph_from_seed(seed: int, n: int = 9, p: float = 0.5) -> UncertainGraph:
    return random_uncertain_graph(random.Random(seed), n, p, low=0.05, high=1.0)


class TestPmfMaintenance:
    @given(probabilities, st.floats(min_value=0.01, max_value=0.95))
    def test_deconvolve_inverts_convolve(self, wings, extra):
        """Adding a wing and dividing it back out recovers the pmf."""
        base = _pmf_from_wings(wings)
        grown = _pmf_from_wings(wings + [extra])
        recovered = _deconvolve_wing(grown, extra)
        assert recovered is not None
        assert len(recovered) == len(base)
        for a, b in zip(recovered, base):
            assert math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-9)

    @given(probabilities)
    def test_pmf_is_a_distribution(self, wings):
        pmf = _pmf_from_wings(wings)
        assert math.isclose(sum(pmf), 1.0, abs_tol=1e-9)
        assert all(-1e-12 <= mass <= 1.0 + 1e-12 for mass in pmf)

    def test_deconvolve_certain_wing_shifts(self):
        """A q = 1 wing always fires: removing it shifts the pmf down."""
        pmf = _pmf_from_wings([1.0, 0.5])
        reduced = _deconvolve_wing(pmf, 1.0)
        expected = _pmf_from_wings([0.5])
        assert reduced is not None
        for a, b in zip(reduced, expected):
            assert math.isclose(a, b, abs_tol=1e-12)

    @given(probabilities, st.floats(min_value=0.05, max_value=0.9),
           st.floats(min_value=0.01, max_value=0.5))
    def test_support_matches_tail_definition(self, wings, p_edge, gamma):
        """_support_from_pmf agrees with the textbook tail scan."""
        pmf = _pmf_from_wings(wings)
        support = _support_from_pmf(pmf, p_edge, gamma)
        tail = degree_tail_probabilities(wings)
        if p_edge < gamma:
            assert support == -1
            return
        expected = 0
        for s in range(1, len(tail)):
            if p_edge * tail[s] >= gamma:
                expected = s
            else:
                break
        assert support == expected


class TestCoreProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=200))
    def test_core_nesting_in_k(self, seed):
        """(k+1, eta)-core is contained in the (k, eta)-core."""
        graph = _graph_from_seed(seed)
        decomposition = eta_core_decomposition(graph, 0.2)
        if not decomposition:
            return
        k_max = max(decomposition.values())
        previous = None
        for k in range(k_max, 0, -1):
            core = k_eta_core(graph, k, 0.2)
            if previous is not None:
                assert previous <= core
            previous = core

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=200))
    def test_core_monotone_in_eta(self, seed):
        """Raising eta can only lower every node's eta-core number."""
        graph = _graph_from_seed(seed)
        low = eta_core_decomposition(graph, 0.1)
        high = eta_core_decomposition(graph, 0.6)
        for node, core_number in high.items():
            assert core_number <= low.get(node, 0)


class TestTrussProperties:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=200))
    def test_truss_nesting_in_k(self, seed):
        """(k+1, gamma)-truss nodes are contained in the (k, gamma)-truss."""
        graph = _graph_from_seed(seed)
        trussness = gamma_truss_decomposition(graph, 0.2)
        if not trussness:
            return
        k_max = max(trussness.values())
        previous = None
        for k in range(k_max, 1, -1):
            truss = k_gamma_truss(graph, k, 0.2)
            if previous is not None:
                assert previous <= truss
            previous = truss

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=200))
    def test_truss_monotone_in_gamma(self, seed):
        """Raising gamma can only lower every edge's trussness."""
        graph = _graph_from_seed(seed)
        low = gamma_truss_decomposition(graph, 0.05)
        high = gamma_truss_decomposition(graph, 0.5)
        for edge, trussness in high.items():
            assert trussness <= low[edge]

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=200))
    def test_trussness_at_least_one(self, seed):
        graph = _graph_from_seed(seed)
        trussness = gamma_truss_decomposition(graph, 0.3)
        assert all(value >= 1 for value in trussness.values())
        assert set(trussness) == {
            tuple(sorted(edge)) for edge in graph.edges()
        }
