"""Monte Carlo possible-world sampling (the paper's default strategy).

Each of the ``theta`` rounds flips every edge independently.  MC stores no
per-edge state between rounds, which is why the paper finds it consumes the
least memory of the three strategies (Tables XIII/XIV) and adopts it as the
default.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from ..graph.graph import Graph
from ..graph.uncertain import UncertainGraph
from .base import WeightedWorld


class MonteCarloSampler:
    """Independent Bernoulli sampling of possible worlds."""

    name = "MC"

    def __init__(self, graph: UncertainGraph, seed: Optional[int] = None) -> None:
        self._graph = graph
        self._rng = random.Random(seed)
        self._edges = list(graph.weighted_edges())
        self._nodes = graph.nodes()

    def worlds(self, theta: int) -> Iterator[WeightedWorld]:
        """Yield ``theta`` worlds, each with weight ``1 / theta``."""
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        weight = 1.0 / theta
        rng = self._rng
        for _ in range(theta):
            world = Graph()
            for node in self._nodes:
                world.add_node(node)
            for u, v, p in self._edges:
                if rng.random() < p:
                    world.add_edge(u, v)
            yield WeightedWorld(world, weight)

    def memory_units(self) -> int:
        """MC keeps no per-edge state between rounds."""
        return 0
