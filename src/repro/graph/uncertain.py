"""Uncertain graphs: the paper's input data model (Section II).

An uncertain graph ``G = (V, E, p)`` assigns each undirected edge an
independent existence probability ``p(e) in (0, 1]``.  It induces a
probability distribution over ``2^m`` *possible worlds* -- deterministic
graphs obtained by sampling each edge independently (Equation 1):

    Pr(G) = prod_{e in E_G} p(e) * prod_{e in E \\ E_G} (1 - p(e))
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .graph import Edge, Graph, Node, canonical_edge


class UncertainGraph:
    """An undirected graph whose edges carry existence probabilities.

    Examples
    --------
    >>> ug = UncertainGraph()
    >>> ug.add_edge("A", "B", 0.5)
    >>> ug.add_edge("B", "C", 0.25)
    >>> round(ug.probability("A", "B"), 3)
    0.5
    """

    __slots__ = ("_graph", "_prob")

    def __init__(self) -> None:
        self._graph = Graph()
        self._prob: Dict[Edge, float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_weighted_edges(
        cls, edges: Iterable[Tuple[Node, Node, float]]
    ) -> "UncertainGraph":
        """Build from an iterable of ``(u, v, probability)`` triples."""
        graph = cls()
        for u, v, p in edges:
            graph.add_edge(u, v, p)
        return graph

    @classmethod
    def from_graph(cls, graph: Graph, probability: float = 1.0) -> "UncertainGraph":
        """Lift a deterministic graph, giving every edge ``probability``."""
        out = cls()
        for node in graph:
            out.add_node(node)
        for u, v in graph.edges():
            out.add_edge(u, v, probability)
        return out

    def add_node(self, node: Node) -> None:
        """Add an isolated node."""
        self._graph.add_node(node)

    def add_edge(self, u: Node, v: Node, probability: float) -> None:
        """Add edge ``(u, v)`` with existence probability in (0, 1]."""
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                f"edge probability must be in (0, 1], got {probability!r}"
            )
        self._graph.add_edge(u, v)
        self._prob[canonical_edge(u, v)] = float(probability)

    def set_probability(self, u: Node, v: Node, probability: float) -> None:
        """Re-weight the existing edge ``(u, v)`` in place.

        The edge keeps its position in the insertion order (the order
        :meth:`weighted_edges` iterates and the engine's edge indexing
        follows), which is what lets :mod:`repro.delta` re-draw exactly
        one mask column for a probability update.
        """
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                f"edge probability must be in (0, 1], got {probability!r}"
            )
        edge = canonical_edge(u, v)
        if edge not in self._prob:
            raise KeyError(f"no uncertain edge {edge!r} to re-weight")
        self._prob[edge] = float(probability)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the uncertain edge ``(u, v)``; both endpoints stay.

        Mirrors :meth:`condition` with ``present=False``, but mutates
        in place (the :class:`repro.delta.GraphDelta` deletion path).
        Later edges close ranks in the insertion order.
        """
        edge = canonical_edge(u, v)
        if edge not in self._prob:
            raise KeyError(f"no uncertain edge {edge!r} to remove")
        self._graph.remove_edge(u, v)
        del self._prob[edge]

    def copy(self) -> "UncertainGraph":
        """Return an independent copy."""
        clone = UncertainGraph()
        clone._graph = self._graph.copy()
        clone._prob = dict(self._prob)
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._graph

    def __iter__(self) -> Iterator[Node]:
        return iter(self._graph)

    def __len__(self) -> int:
        return len(self._graph)

    def nodes(self) -> List[Node]:
        """Return all nodes."""
        return self._graph.nodes()

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in canonical orientation."""
        return self._graph.edges()

    def weighted_edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate over ``(u, v, probability)`` triples.

        Iterates the insertion-ordered probability map rather than the
        adjacency sets: dict order survives pickling (set order does
        not), so seeded sampling stays reproducible across process
        boundaries (``repro.core.parallel``).
        """
        for (u, v), p in self._prob.items():
            yield u, v, p

    def number_of_nodes(self) -> int:
        """Return |V|."""
        return self._graph.number_of_nodes()

    def number_of_edges(self) -> int:
        """Return |E|."""
        return self._graph.number_of_edges()

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return True if edge ``(u, v)`` is present (with any probability)."""
        return self._graph.has_edge(u, v)

    def neighbors(self, node: Node):
        """Return the neighbor set of ``node``."""
        return self._graph.neighbors(node)

    def degree(self, node: Node) -> int:
        """Return the structural degree (number of incident uncertain edges)."""
        return self._graph.degree(node)

    def probability(self, u: Node, v: Node) -> float:
        """Return the existence probability of edge ``(u, v)``."""
        return self._prob[canonical_edge(u, v)]

    def deterministic_version(self) -> Graph:
        """Return the deterministic graph with every uncertain edge present."""
        return self._graph.copy()

    def subgraph(self, nodes: Iterable[Node]) -> "UncertainGraph":
        """Return the uncertain subgraph induced by ``nodes``."""
        keep = set(nodes)
        sub = UncertainGraph()
        for node in keep:
            if node in self._graph:
                sub.add_node(node)
        for u, v, p in self.weighted_edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, p)
        return sub

    def condition(self, u: Node, v: Node, present: bool) -> "UncertainGraph":
        """Return a copy conditioned on edge ``(u, v)`` being (ab)sent.

        Conditioning on ``present=True`` fixes the edge's probability to 1;
        on ``present=False`` it removes the edge (the nodes stay).  Because
        edges are independent, the result is exactly the conditional
        distribution over possible worlds -- useful for what-if analyses
        ("how does the MPDS change if this interaction is confirmed?").
        """
        edge = canonical_edge(u, v)
        if edge not in self._prob:
            raise KeyError(f"no uncertain edge {edge!r} to condition on")
        clone = self.copy()
        if present:
            clone._prob[edge] = 1.0
        else:
            clone._graph.remove_edge(u, v)
            del clone._prob[edge]
        return clone

    def prune(self, threshold: float) -> "UncertainGraph":
        """Return a copy without edges of probability below ``threshold``.

        A common preprocessing step on noisy uncertain graphs; note that
        (unlike :meth:`condition`) this *changes* the distribution, so
        estimates on the pruned graph are approximations.
        """
        clone = UncertainGraph()
        for node in self._graph:
            clone.add_node(node)
        for u, v, p in self.weighted_edges():
            if p >= threshold:
                clone.add_edge(u, v, p)
        return clone

    # ------------------------------------------------------------------
    # possible-world semantics
    # ------------------------------------------------------------------
    def sample_world(self, rng: Optional[random.Random] = None) -> Graph:
        """Draw one possible world by independent edge flips (Monte Carlo)."""
        rng = rng or random
        world = Graph()
        for node in self._graph:
            world.add_node(node)
        for u, v, p in self.weighted_edges():
            if rng.random() < p:
                world.add_edge(u, v)
        return world

    def world_probability(self, world: Graph) -> float:
        """Return Pr(world) per Equation 1.

        ``world`` must be over (a subset of) this graph's nodes; any edge of
        the world absent from this uncertain graph makes the probability 0.
        """
        log_prob = 0.0
        present = {canonical_edge(u, v) for u, v in world.edges()}
        for edge, p in self._prob.items():
            if edge in present:
                log_prob += math.log(p)
                present.discard(edge)
            else:
                if p >= 1.0:
                    return 0.0
                log_prob += math.log1p(-p)
        if present:
            return 0.0
        return math.exp(log_prob)

    def possible_worlds(self) -> Iterator[Tuple[Graph, float]]:
        """Enumerate all ``2^m`` possible worlds with their probabilities.

        Exponential: intended only for tiny graphs (exact reference solvers
        and the paper's Table I / Table XV experiments).
        """
        edges = list(self.weighted_edges())
        nodes = self.nodes()
        for mask in itertools.product((False, True), repeat=len(edges)):
            world = Graph()
            for node in nodes:
                world.add_node(node)
            probability = 1.0
            for include, (u, v, p) in zip(mask, edges):
                if include:
                    world.add_edge(u, v)
                    probability *= p
                else:
                    probability *= 1.0 - p
            if probability > 0.0:
                yield world, probability

    # ------------------------------------------------------------------
    # expectations
    # ------------------------------------------------------------------
    def expected_degree(self, node: Node) -> float:
        """Return the expected degree of ``node``."""
        return sum(
            self._prob[canonical_edge(node, nbr)]
            for nbr in self._graph.neighbors(node)
        )

    def expected_edge_count(self, nodes: Optional[Iterable[Node]] = None) -> float:
        """Return the expected number of edges (optionally induced by ``nodes``)."""
        if nodes is None:
            return sum(self._prob.values())
        keep = set(nodes)
        return sum(
            p for u, v, p in self.weighted_edges() if u in keep and v in keep
        )

    def expected_edge_density(self, nodes: Iterable[Node]) -> float:
        """Return the expected edge density of the subgraph induced by ``nodes``.

        By linearity of expectation this equals the weighted density
        ``sum of p(e) over induced edges / |nodes|`` (Zou [44]).
        """
        keep = set(nodes)
        if not keep:
            return 0.0
        return self.expected_edge_count(keep) / len(keep)

    def __repr__(self) -> str:
        return (
            f"UncertainGraph(n={self.number_of_nodes()}, "
            f"m={self.number_of_edges()})"
        )


def edge_probability_statistics(
    graph: UncertainGraph,
) -> Dict[str, float]:
    """Return mean / standard deviation / quartiles of edge probabilities.

    Mirrors the "Edge Prob: Mean, St. Dev., Quart." column of Table II.
    """
    probs: Sequence[float] = sorted(p for _, _, p in graph.weighted_edges())
    if not probs:
        return {"mean": 0.0, "std": 0.0, "q1": 0.0, "q2": 0.0, "q3": 0.0}
    n = len(probs)
    mean = sum(probs) / n
    variance = sum((p - mean) ** 2 for p in probs) / n
    def quantile(q: float) -> float:
        position = q * (n - 1)
        low = int(position)
        high = min(low + 1, n - 1)
        weight = position - low
        return probs[low] * (1 - weight) + probs[high] * weight
    return {
        "mean": mean,
        "std": math.sqrt(variance),
        "q1": quantile(0.25),
        "q2": quantile(0.5),
        "q3": quantile(0.75),
    }
