"""Setup shim: enables `pip install -e .` in offline environments.

The offline interpreter lacks the `wheel` package, so the PEP 517 editable
path (`bdist_wheel`) fails; this shim lets pip fall back to the legacy
`setup.py develop` route. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
