"""Optional numba JIT tier for the two irreducible per-world hot loops.

The vectorised engine batches every stage it can across worlds
(:func:`repro.engine.kernels.batch_peel_bounds`,
:func:`repro.engine.kernels.batch_k_core_alive`), but two loops resist
batching because their control flow is data-dependent per world: the
bucketed Charikar peel (:func:`repro.dense.peeling._peel_arrays`) and
the FIFO push-relabel discharge (:mod:`repro.flow.push_relabel`,
:class:`repro.flow.parametric.ReverseChain`).  This module provides
flat-``int64``-array ports of both, written in nopython-compatible
style:

* when **numba is installed**, :func:`maybe_jit` compiles them
  (``engine='jit'`` requests the tier explicitly; ``engine='auto'``
  upgrades to it automatically -- see
  :func:`repro.engine.estimators.resolve_engine`);
* when it is **not**, the same functions run interpreted and the tier is
  never activated by the engine resolver (``engine='jit'`` falls back to
  ``'vectorized'``), but the ports remain importable and testable -- the
  differential tests compare them against the classic list-based
  implementations with the tier forced on, so correctness does not
  depend on having numba anywhere.

Activation is a :class:`~contextvars.ContextVar` (:func:`use_jit`), so
concurrent sessions/threads of the serve daemon can run different tiers
simultaneously.  The hooks convert between the list-based solver state
and ``int64`` arrays at the call boundary; conversion raises
``OverflowError`` for capacities beyond ``int64`` (the parametric
chain's common denominator grows multiplicatively), in which case the
caller silently stays on the exact python path.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "maybe_jit",
    "use_jit",
    "jit_active",
    "peel_csr",
    "phase1_discharge",
    "preflow_phase1",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    _njit = None
    HAVE_NUMBA = False


def maybe_jit(func):
    """``numba.njit(cache=True)`` when available, identity otherwise."""
    if HAVE_NUMBA:  # pragma: no cover - exercised only with numba
        return _njit(cache=True)(func)
    return func


_TIER: ContextVar[bool] = ContextVar("repro_jit_tier", default=False)


def jit_active() -> bool:
    """Is the JIT tier requested for the current context?"""
    return _TIER.get()


@contextmanager
def use_jit(enabled: bool = True):
    """Activate (or deactivate) the JIT tier for the enclosed block.

    The engine sets this around the exact per-world stage when the
    resolved engine is ``'jit'``; tests force it on without numba to
    exercise the ports interpreted.
    """
    token = _TIER.set(bool(enabled))
    try:
        yield
    finally:
        _TIER.reset(token)


# ----------------------------------------------------------------------
# bucketed Charikar peel (flat-array port of peeling._peel_arrays)
# ----------------------------------------------------------------------
@maybe_jit
def _heap_push(heap: np.ndarray, size: int, key: int) -> int:
    heap[size] = key
    i = size
    while i > 0:
        parent = (i - 1) >> 1
        if heap[parent] <= heap[i]:
            break
        heap[parent], heap[i] = heap[i], heap[parent]
        i = parent
    return size + 1


@maybe_jit
def _heap_pop(heap: np.ndarray, size: int):
    top = heap[0]
    size -= 1
    heap[0] = heap[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        child = left
        right = left + 1
        if right < size and heap[right] < heap[left]:
            child = right
        if heap[i] <= heap[child]:
            break
        heap[i], heap[child] = heap[child], heap[i]
        i = child
    return top, size


@maybe_jit
def peel_csr(n: int, indptr: np.ndarray, neighbors: np.ndarray):
    """Charikar peel over local CSR arrays; flat twin of ``_peel_arrays``.

    One lazy min-heap keyed by ``degree * n + index`` replaces the
    per-degree bucket heaps: the minimum key is exactly (minimum alive
    degree, smallest index), the same deterministic tie-break, so the
    removal order -- and everything derived from it -- is identical.
    Returns ``(order, edges_after, best_num, best_den, best_size,
    degeneracy)`` with the two sequences as ``int64`` arrays.
    """
    degree = np.empty(n, np.int64)
    edges2 = 0
    for i in range(n):
        degree[i] = indptr[i + 1] - indptr[i]
        edges2 += degree[i]
    edges_left = edges2 // 2
    heap = np.empty(n + neighbors.shape[0] + 1, np.int64)
    size = 0
    for i in range(n):
        size = _heap_push(heap, size, degree[i] * n + i)
    alive = np.ones(n, np.bool_)
    order = np.empty(n, np.int64)
    edges_after = np.empty(n - 1 if n > 1 else 0, np.int64)
    nodes_left = n
    best_num = edges_left
    best_den = nodes_left
    best_size = nodes_left
    degeneracy = 0
    idx = 0
    while nodes_left > 1:
        while True:
            key, size = _heap_pop(heap, size)
            node = key % n
            d = key // n
            if alive[node] and degree[node] == d:
                break
        if d > degeneracy:
            degeneracy = d
        alive[node] = False
        order[idx] = node
        edges_left -= degree[node]
        nodes_left -= 1
        for pos in range(indptr[node], indptr[node + 1]):
            other = neighbors[pos]
            if alive[other]:
                nd = degree[other] - 1
                degree[other] = nd
                size = _heap_push(heap, size, nd * n + other)
        edges_after[idx] = edges_left
        idx += 1
        if edges_left * best_den > best_num * nodes_left:
            best_num = edges_left
            best_den = nodes_left
            best_size = nodes_left
    for i in range(n):
        if alive[i]:
            order[idx] = i
            break
    return order, edges_after, best_num, best_den, best_size, degeneracy


# ----------------------------------------------------------------------
# FIFO push-relabel phase-1 discharge (flat-array port)
# ----------------------------------------------------------------------
@maybe_jit
def _rebuild_phase1(
    to: np.ndarray, cap: np.ndarray, twin: np.ndarray, indptr: np.ndarray,
    excess: np.ndarray, height: np.ndarray, count_at_height: np.ndarray,
    pointers: np.ndarray, in_queue: np.ndarray, queue: np.ndarray,
    source: int, sink: int, num_nodes: int,
) -> int:
    """Exact-height global relabel; rebuild the FIFO queue.  Returns qtail."""
    infinity = 2 * num_nodes
    for i in range(num_nodes):
        height[i] = infinity
    height[sink] = 0
    height[source] = num_nodes
    bfs = np.empty(num_nodes, np.int64)
    bfs_head = 0
    bfs_tail = 0
    bfs[bfs_tail] = sink
    bfs_tail += 1
    while bfs_head < bfs_tail:
        v = bfs[bfs_head]
        bfs_head += 1
        dist = height[v] + 1
        for e in range(indptr[v], indptr[v + 1]):
            u = to[e]
            if cap[twin[e]] > 0 and height[u] == infinity:
                height[u] = dist
                bfs[bfs_tail] = u
                bfs_tail += 1
    for level in range(2 * num_nodes + 2):
        count_at_height[level] = 0
    qtail = 0
    for i in range(num_nodes):
        count_at_height[height[i]] += 1
        pointers[i] = indptr[i]
        if (
            excess[i] > 0 and i != source and i != sink
            and height[i] < num_nodes
        ):
            in_queue[i] = True
            queue[qtail] = i
            qtail += 1
        else:
            in_queue[i] = False
    return qtail


@maybe_jit
def phase1_discharge(
    to: np.ndarray, cap: np.ndarray, twin: np.ndarray, indptr: np.ndarray,
    excess: np.ndarray, height: np.ndarray, count_at_height: np.ndarray,
    pointers: np.ndarray, in_queue: np.ndarray, queue: np.ndarray,
    qhead: int, qtail: int, source: int, sink: int, num_nodes: int,
    fresh: bool,
) -> int:
    """Run the FIFO phase-1 discharge to quiescence; return ``excess[sink]``.

    The flat twin of :meth:`repro.flow.parametric.ReverseChain.run` (and
    of ``_push_relabel``'s first phase): current-arc pointers, inlined
    relabel, gap heuristic, periodic global relabeling, nodes parked at
    ``height >= num_nodes`` left alone.  All state arrays are mutated in
    place, so the caller can resume the same chain later (warm
    parametric continuation) or read the height cut.  ``queue`` is a
    ring buffer of capacity ``num_nodes + 1``; ``fresh`` forces an
    initial global relabel (cold start).
    """
    qsize = queue.shape[0]
    infinity = 2 * num_nodes
    if fresh:
        qtail = _rebuild_phase1(
            to, cap, twin, indptr, excess, height, count_at_height,
            pointers, in_queue, queue, source, sink, num_nodes,
        )
        qhead = 0
    relabels_since_global = 0
    while qhead != qtail:
        node = queue[qhead]
        qhead += 1
        if qhead == qsize:
            qhead = 0
        in_queue[node] = False
        node_height = height[node]
        if node_height >= num_nodes:
            continue
        limit = indptr[node + 1]
        node_excess = excess[node]
        e = pointers[node]
        clean = True
        while node_excess > 0:
            if e >= limit:
                old = node_height
                smallest = infinity
                for a in range(indptr[node], limit):
                    if cap[a] > 0:
                        h = height[to[a]]
                        if h < smallest:
                            smallest = h
                node_height = smallest + 1
                height[node] = node_height
                count_at_height[old] -= 1
                count_at_height[node_height] += 1
                e = indptr[node]
                if count_at_height[old] == 0 and old < num_nodes:
                    for other in range(num_nodes):
                        oh = height[other]
                        if old < oh <= num_nodes and other != source:
                            count_at_height[oh] -= 1
                            height[other] = num_nodes + 1
                            count_at_height[num_nodes + 1] += 1
                    node_height = height[node]
                relabels_since_global += 1
                if relabels_since_global >= num_nodes:
                    relabels_since_global = 0
                    excess[node] = node_excess
                    qtail = _rebuild_phase1(
                        to, cap, twin, indptr, excess, height,
                        count_at_height, pointers, in_queue, queue,
                        source, sink, num_nodes,
                    )
                    qhead = 0
                    clean = False
                    break
                if node_height >= num_nodes:
                    excess[node] = node_excess
                    clean = False
                    break
                continue
            residual = cap[e]
            if residual > 0:
                head = to[e]
                if node_height == height[head] + 1:
                    delta = node_excess if node_excess < residual \
                        else residual
                    cap[e] = residual - delta
                    cap[twin[e]] += delta
                    node_excess -= delta
                    excess[head] += delta
                    if (
                        not in_queue[head]
                        and head != source
                        and head != sink
                        and excess[head] > 0
                    ):
                        in_queue[head] = True
                        queue[qtail] = head
                        qtail += 1
                        if qtail == qsize:
                            qtail = 0
                    continue
            e += 1
        if clean:
            excess[node] = node_excess
            pointers[node] = e
    return excess[sink]


def preflow_phase1(network):
    """JIT phase-1 of ``csr_max_preflow_min_cut`` on a CSR network.

    Converts the list-based network to ``int64`` arrays, saturates the
    source, runs :func:`phase1_discharge` cold, and writes the residual
    capacities back.  Returns ``(value, side)`` exactly like the classic
    implementation, or ``None`` when a capacity does not fit ``int64``
    (the caller then uses the exact python path).
    """
    num_nodes = network.num_nodes
    source, sink = network.source, network.sink
    try:
        cap = np.array(network.cap, dtype=np.int64)
    except OverflowError:
        return None
    to = np.array(network.to, dtype=np.int64)
    twin = np.array(network.twin, dtype=np.int64)
    indptr = np.array(network.indptr, dtype=np.int64)
    excess = np.zeros(num_nodes, dtype=np.int64)
    for e in range(indptr[source], indptr[source + 1]):
        delta = cap[e]
        if delta <= 0:
            continue
        cap[e] = 0
        cap[twin[e]] += delta
        excess[to[e]] += delta
        excess[source] -= delta
    height = np.zeros(num_nodes, dtype=np.int64)
    count_at_height = np.zeros(2 * num_nodes + 2, dtype=np.int64)
    pointers = np.zeros(num_nodes, dtype=np.int64)
    in_queue = np.zeros(num_nodes, dtype=np.bool_)
    queue = np.zeros(num_nodes + 1, dtype=np.int64)
    value = phase1_discharge(
        to, cap, twin, indptr, excess, height, count_at_height, pointers,
        in_queue, queue, 0, 0, source, sink, num_nodes, True,
    )
    network.cap[:] = cap.tolist()
    return int(value), [int(h) >= num_nodes for h in height]
