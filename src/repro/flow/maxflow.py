"""Dinic's maximum-flow algorithm: object networks and the CSR port.

Dinic's algorithm repeatedly builds a BFS level graph and saturates a
blocking flow with iterative DFS.  It terminates for arbitrary non-negative
rational capacities (the level structure strictly grows), which is what the
exact-density constructions need.

:func:`max_flow` runs on the object :class:`~repro.flow.network.FlowNetwork`
(the reference path); :func:`csr_max_flow` is the same algorithm over the
flat-array :class:`~repro.flow.csr.CSRFlowNetwork` used by the vectorised
engine.  Max-flow values are unique and min-cut sides / residual SCCs are
flow-invariant, so the two are interchangeable downstream.

Complexity is ``O(V^2 E)`` in general and much better on the unit-ish
networks that arise here; the graphs in this reproduction are laptop-scale.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .csr import CSRFlowNetwork
from .network import Arc, Capacity, FlowNetwork, NetNode


def max_flow(network: FlowNetwork, source: NetNode, sink: NetNode) -> Capacity:
    """Push a maximum flow from ``source`` to ``sink``; return its value.

    The network's arcs are mutated in place (their ``flow`` attributes),
    leaving the residual graph available for inspection.  Call
    ``network.reset_flow()`` first to recompute from scratch.
    """
    s = network.index_of(source)
    t = network.index_of(sink)
    if s == t:
        raise ValueError("source and sink must differ")
    n = network.number_of_nodes()
    total: Capacity = 0
    while True:
        level = _bfs_levels(network, s, t, n)
        if level[t] < 0:
            return total
        # iterative DFS blocking flow with per-node arc pointers
        pointers = [0] * n
        while True:
            pushed = _dfs_push(network, s, t, level, pointers)
            if pushed is None:
                break
            total = total + pushed


def _bfs_levels(network: FlowNetwork, s: int, t: int, n: int) -> List[int]:
    level = [-1] * n
    level[s] = 0
    queue = deque([s])
    while queue:
        node = queue.popleft()
        for arc in network.arcs_from(node):
            if arc.residual() > 0 and level[arc.head] < 0:
                level[arc.head] = level[node] + 1
                queue.append(arc.head)
    return level


def _dfs_push(
    network: FlowNetwork,
    s: int,
    t: int,
    level: List[int],
    pointers: List[int],
) -> Optional[Capacity]:
    """Find one augmenting path in the level graph; push its bottleneck.

    Returns the pushed amount, or ``None`` when the level graph admits no
    further augmenting path (blocking flow reached).
    """
    path: List[Arc] = []
    node = s
    while True:
        if node == t:
            bottleneck = min(arc.residual() for arc in path)
            for arc in path:
                arc.flow = arc.flow + bottleneck
                arc.reverse.flow = arc.reverse.flow - bottleneck
            return bottleneck
        arcs = network.arcs_from(node)
        advanced = False
        while pointers[node] < len(arcs):
            arc = arcs[pointers[node]]
            if arc.residual() > 0 and level[arc.head] == level[node] + 1:
                path.append(arc)
                node = arc.head
                advanced = True
                break
            pointers[node] += 1
        if advanced:
            continue
        # dead end: retreat
        level[node] = -1
        if not path:
            return None
        dead = path.pop()
        node = dead.tail
        pointers[node] += 1


def csr_max_flow(network: CSRFlowNetwork) -> int:
    """Dinic over a :class:`CSRFlowNetwork`; returns the max-flow value.

    Mutates ``network.cap`` (residual capacities) in place, leaving the
    residual graph available for the network's queries.  Flat twin of
    :func:`max_flow`: BFS level graph + iterative DFS blocking flow with
    per-node current-arc pointers, all over tail-sorted list arcs (the
    reverse of arc ``e`` is ``network.twin[e]``).
    """
    s = network.source
    t = network.sink
    if s == t:
        raise ValueError("source and sink must differ")
    n = network.num_nodes
    to = network.to
    cap = network.cap
    twin = network.twin
    indptr = network.indptr
    total = 0
    while True:
        # BFS level graph over positive-residual arcs
        level = [-1] * n
        level[s] = 0
        queue = deque([s])
        while queue:
            node = queue.popleft()
            node_level = level[node] + 1
            for e in range(indptr[node], indptr[node + 1]):
                head = to[e]
                if cap[e] > 0 and level[head] < 0:
                    level[head] = node_level
                    queue.append(head)
        if level[t] < 0:
            return total
        # iterative DFS blocking flow with per-node arc pointers
        pointers = [indptr[i] for i in range(n)]
        path: List[int] = []
        node = s
        while True:
            if node == t:
                bottleneck = min(cap[e] for e in path)
                for e in path:
                    cap[e] -= bottleneck
                    cap[twin[e]] += bottleneck
                total += bottleneck
                # retreat to the first saturated arc on the path
                for position, e in enumerate(path):
                    if cap[e] == 0:
                        del path[position:]
                        node = to[twin[e]]
                        break
                continue
            limit = indptr[node + 1]
            e = pointers[node]
            advanced = False
            while e < limit:
                if cap[e] > 0 and level[to[e]] == level[node] + 1:
                    pointers[node] = e
                    path.append(e)
                    node = to[e]
                    advanced = True
                    break
                e += 1
            if advanced:
                continue
            pointers[node] = e
            # dead end: retreat
            level[node] = -1
            if not path:
                break
            dead = path.pop()
            node = to[twin[dead]]
            pointers[node] += 1


def min_cut_source_side(
    network: FlowNetwork, source: NetNode
) -> List[NetNode]:
    """Return the *minimal* min-cut source side after a max-flow run.

    These are the labels reachable from ``source`` in the residual graph.
    """
    return network.residual_reachable_from(source)


def min_cut_maximal_source_side(
    network: FlowNetwork, sink: NetNode
) -> List[NetNode]:
    """Return the *maximal* min-cut source side after a max-flow run.

    By min-cut structure theory the maximal source side is the complement of
    the set of nodes that can still reach the sink in the residual graph.
    The paper uses this to extract the maximum-sized densest subgraph
    (Algorithm 5 line 4; see also [59]).
    """
    coreachable = set(network.residual_coreachable_to(sink))
    return [label for label in network.labels() if label not in coreachable]
