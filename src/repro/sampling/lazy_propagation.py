"""Lazy Propagation sampling [54] (Section III-A remark 2, Tables XIII/XIV).

Instead of flipping every edge in every round, LP schedules each edge's
*next occurrence* with a geometric jump: if an edge has probability ``p``,
the gap until it next appears is Geometric(p), so the per-round inclusion
indicators are still independent Bernoulli(p) -- the samples are
distributed exactly as Monte Carlo's.

The trade-off the paper reports: LP must keep per-edge visit state (the
next-occurrence round for every edge) across rounds, which increases memory
(one counter per edge, tracked by ``memory_units``), while the speedup is
limited because MPDS/NDS touch all edges anyway.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Optional

from ..graph.graph import Graph
from ..graph.uncertain import UncertainGraph
from .base import WeightedWorld


class LazyPropagationSampler:
    """Geometric-skip ("lazy") possible-world sampling."""

    name = "LP"

    def __init__(self, graph: UncertainGraph, seed: Optional[int] = None) -> None:
        self._graph = graph
        self._rng = random.Random(seed)
        self._edges = list(graph.weighted_edges())
        self._nodes = graph.nodes()
        self._state_cells = 0

    def _geometric_gap(self, p: float) -> int:
        """Return k >= 1 distributed Geometric(p) (rounds until next hit)."""
        if p >= 1.0:
            return 1
        u = self._rng.random()
        # inverse-CDF sampling: smallest k with 1 - (1-p)^k >= u
        return 1 + int(math.log(1.0 - u) / math.log(1.0 - p))

    def worlds(self, theta: int) -> Iterator[WeightedWorld]:
        """Yield ``theta`` worlds, each with weight ``1 / theta``."""
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        weight = 1.0 / theta
        # schedule[r]: edge indices occurring in round r
        schedule: Dict[int, List[int]] = {}
        for index, (_u, _v, p) in enumerate(self._edges):
            first = self._geometric_gap(p) - 1
            if first < theta:
                schedule.setdefault(first, []).append(index)
        self._state_cells = len(self._edges)  # one next-occurrence per edge
        for round_index in range(theta):
            world = Graph()
            for node in self._nodes:
                world.add_node(node)
            occurring = schedule.pop(round_index, [])
            for index in occurring:
                u, v, p = self._edges[index]
                world.add_edge(u, v)
                next_round = round_index + self._geometric_gap(p)
                if next_round < theta:
                    schedule.setdefault(next_round, []).append(index)
            yield WeightedWorld(world, weight)

    def memory_units(self) -> int:
        """One next-occurrence counter per edge."""
        return self._state_cells
