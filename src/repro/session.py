"""Session/Query API: amortize sampling and substrate prep across queries.

The estimators' dominant serving workload is many queries -- different
``k``, ``min_size``, measure, MPDS vs NDS, worker counts -- against the
*same* uncertain graph.  The free functions (``top_k_mpds`` and
friends) rebuild everything per call: the :class:`IndexedGraph`/CSR
index, the shared-memory segments, the worker pool hand-off, and --
dominating all of it -- the ``theta`` sampled possible worlds.  A
:class:`Session` owns those substrates once:

* the **indexed graph** (endpoint/probability arrays + cached CSR),
  built on first use and shared by every query and every world store;
* a seed-keyed **world store cache**: each distinct
  ``(sampler, theta, seed)`` draw is sampled exactly once
  (:class:`repro.engine.worldstore.WorldStore`) and replayed by every
  later query that names it -- zero resampling;
* a per-(store, measure, engine) **evaluation cache**: the per-world
  densest-family / transaction records are computed once, so a warm
  query that only varies ``k``, ``min_size``, ``enumerate_all`` -> same
  records, or MPDS vs NDS ranking knobs replays records through the
  cheap finalize stage instead of re-solving every world (a different
  *measure* re-evaluates, but still reuses the sampled worlds);
* the **published shared-memory segments** for parallel queries: the
  graph payload and each store's world arrays are packed once and kept
  alive for the session, so warm fan-outs ship only tiny task tuples
  (and the persistent worker pool re-attaches nothing).

Queries are built with a chainable :class:`Query`::

    with Session(graph) as session:
        q = session.query().sampler("mc", theta=160, seed=7)
        best = q.measure("edge").top_k(5).mpds()
        cliquey = session.query().sampler("mc", theta=160, seed=7) \\
            .measure("clique:h=3").top_k(5).mpds()       # same worlds
        nuclei = session.query().sampler("mc", theta=160, seed=7) \\
            .min_size(3).top_k(5).nds()                  # same worlds

Sampler and measure arguments accept registry spec strings
(:mod:`repro.specs`: ``"mc:theta=160"``, ``"lp"``, ``"clique:h=3"``),
plain instances, or ``None`` for the defaults.

Byte-identity contract
----------------------
A warm query's estimates are **byte-identical** to the equivalent
one-shot ``top_k_mpds`` / ``top_k_nds`` / ``parallel_top_k_*`` call
with the same seed: the store is drained from the sampler's continuous
RNG stream exactly as the parallel substrate pre-partitions it, and
replayed worlds rebuild the very objects the one-shot loop would have
evaluated (``tests/test_session_differential.py`` pins every
sampler x measure x engine x workers cell).  The free functions are
themselves thin shims over a one-shot session (``cache_worlds=False``),
so there is exactly one implementation to trust.

Unseeded queries (``seed=None``) resample on every execution -- the
store cache is *seed-keyed* by design; give the sampler a seed to share
worlds across queries.  User-constructed sampler *instances* carry
mutable RNG state, so they stream exactly as the legacy functions did
instead of populating the cache.

Dynamic graphs: :meth:`Session.update` applies a
:class:`repro.delta.GraphDelta` to the session's graph in place.
Queries marked :meth:`Query.dynamic` draw per-edge-substream stores
(:mod:`repro.delta`) that updates maintain *surgically* -- only the
affected mask columns are re-drawn, and only the evaluation-cache
records of worlds that actually flipped are re-computed (lazily, on
the next query).  Legacy continuous-stream stores cannot be maintained
column-wise (one RNG stream spans all edges), so an update evicts them
along with their evaluations; they re-draw on demand.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple, Union

from .core.measures import DensityMeasure, EdgeDensity
from .core.mpds import evaluate_store_mpds, evaluate_worlds, finalize_mpds
from .core.nds import (
    accumulate_transactions,
    evaluate_store_transactions,
    evaluate_transactions,
    finalize_nds,
)
from .core.results import MPDSResult, NDSResult
from .graph.uncertain import UncertainGraph
from .specs import (
    build_measure,
    build_sampler,
    check_int_knob,
    parse_sampler_spec,
    sampler_store_key,
)

def _vector_sampler(kind: str, indexed, seed: Optional[int], params: dict):
    """Build a registry kind's vectorised twin over the session's shared
    :class:`IndexedGraph` (so nothing is re-indexed per draw)."""
    from .engine.estimators import VECTOR_SAMPLER_KINDS

    twin = VECTOR_SAMPLER_KINDS.get(kind)
    if twin is None:  # pragma: no cover - parse_sampler_spec gates kinds
        raise ValueError(f"unknown sampler kind {kind!r}")
    return twin(indexed, seed, **params)


def _close_published(published: List) -> None:
    """Finalizer target: unlink a session's published segments."""
    while published:
        published.pop().close()


def _check_dynamic_draw(kind, params, seed) -> None:
    """Validate a dynamic draw request (mc/lp, seeded, no params)."""
    from .delta import DYNAMIC_KINDS

    if kind not in DYNAMIC_KINDS:
        raise ValueError(
            f"sampler kind {kind!r} is not delta-capable; dynamic draws "
            f"support {list(DYNAMIC_KINDS)}"
        )
    if params:
        raise ValueError(
            f"dynamic draws accept no sampler parameters, got "
            f"{sorted(params)}"
        )
    if seed is None:
        raise ValueError(
            "dynamic draws require an explicit seed (the per-edge "
            "substreams are keyed on it)"
        )


class _StaleEval:
    """An evaluation-cache entry awaiting per-world re-evaluation.

    :meth:`Session.update` marks an entry stale instead of recomputing
    it eagerly: ``records`` are the pre-update per-world records and
    ``dirty`` the indices of the worlds that flipped.  The next query
    that hits the entry re-evaluates *only* the dirty worlds (the
    store's ``subset`` replay) and splices the fresh records in --
    byte-identical to a full re-evaluation, since records are strictly
    per-world.  Repeated updates union their flips into ``dirty``.
    Only entries whose original evaluation replayed zero truncated
    worlds are marked (a truncated entry's replay attribution is not
    per-world, so updates drop it instead).
    """

    __slots__ = ("records", "dirty")

    def __init__(self, records: list, dirty: set) -> None:
        self.records = records
        self.dirty = dirty


def _measure_key(measure: DensityMeasure) -> Optional[Tuple]:
    """Evaluation-cache key component identifying a measure, or ``None``.

    The bundled measures all have value-style reprs
    (``CliqueDensity(h=3)``), so equal configurations hit the same
    cache line.  Two traps are handled explicitly:

    * a measure type that inherits ``object.__repr__`` has only an
      *address* identity -- an address can be reused by a different
      measure after garbage collection, so such measures opt out of
      evaluation caching entirely (``None``: every query re-evaluates;
      the world store is still reused);
    * ``PatternDensity``'s repr names only ``pattern.name``, and two
      structurally different patterns may share a name -- the pattern's
      canonical edge list joins the key so they cannot collide.

    Wrapping measures (``HeuristicMeasure``) key on their wrapped
    measure recursively, inheriting both rules.
    """
    cls = type(measure)
    if cls.__repr__ is object.__repr__:
        return None
    key: Tuple = (cls.__module__, cls.__qualname__, repr(measure))
    pattern = getattr(measure, "pattern", None)
    if pattern is not None:
        edges = getattr(pattern, "edges", None)
        if not callable(edges):  # pragma: no cover - defensive
            return None
        key += (tuple(edges()),)
    base = getattr(measure, "base", None)
    if isinstance(base, DensityMeasure):
        base_key = _measure_key(base)
        if base_key is None:
            return None
        key += (base_key,)
    return key


class Session:
    """Prepared substrates + world store cache for repeated queries.

    Parameters
    ----------
    graph:
        The uncertain graph every query runs against.
    engine:
        Default engine for queries (``"auto" | "python" | "vectorized" |
        "jit"``); individual queries may override it.  ``jit`` (and
        ``auto`` when numba is installed) runs the vectorized engine
        with compiled hot loops; without numba it falls back to
        ``vectorized``.  Estimates are identical either way.
    workers:
        Default worker count for queries (``1`` = sequential,
        ``"auto"`` = host-sized fan-out, or an explicit count).
    cache_worlds:
        When ``False`` the session is *one-shot*: no world store or
        published segment survives the query.  This is the mode the
        legacy free functions run in -- it keeps their memory profile
        (streaming, never holding all worlds) and their exact behavior.
    packed:
        Default mask representation for this session's world stores:
        ``True`` (default) holds bit-packed uint64 words (8x less
        memory, published as 8x smaller segments), ``False`` the
        historical boolean byte matrix.  Both replay byte-identical
        estimates; per-store overrides go through
        :meth:`world_store`/:meth:`Query.packed`.  Packed and unpacked
        draws are cached (and counted in :attr:`stats`) separately, so
        a mixed session never replays one representation through the
        other's code path.

    Memory model: the caches grow with query *diversity* and are never
    evicted -- every distinct seeded ``(sampler, theta, seed)`` draw
    pins its ``(T, m)`` mask matrix (see ``WorldStore.nbytes``), and
    every distinct (draw, measure, engine, knobs) combination pins its
    per-world records, until :meth:`close`.  Size sessions to a working
    set (typically one or a few draws queried many ways -- where the
    amortization lives); for unbounded-diversity traffic, close and
    recreate sessions at natural boundaries rather than holding one
    forever.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        engine: str = "auto",
        workers: Union[int, str] = 1,
        cache_worlds: bool = True,
        packed: bool = True,
    ) -> None:
        self.graph = graph
        self.engine = engine
        self.workers = workers
        self.cache_worlds = cache_worlds
        self.packed = packed
        self._indexed = None
        #: guards every cache, the stats dict and the in-flight tables;
        #: never held while sampling or evaluating worlds (single-flight
        #: followers wait on per-key events instead, so distinct draws
        #: still sample concurrently)
        self._lock = threading.RLock()
        #: store key -> Event set when the leader's draw lands (or fails)
        self._store_flights: Dict[Tuple, threading.Event] = {}
        #: eval key -> Event set when the leader's records land (or fail)
        self._eval_flights: Dict[Tuple, threading.Event] = {}
        self._stores: Dict[Tuple, object] = {}
        #: (store key, measure key, engine, ...) -> (records, replayed)
        self._eval_cache: Dict[Tuple, Tuple[list, int]] = {}
        self._graph_segment = None
        self._published: Dict[Tuple, object] = {}
        #: shared container so the finalizer never references ``self``
        self._published_segments: List = []
        self._finalizer = weakref.finalize(
            self, _close_published, self._published_segments
        )
        self.stats = {
            "queries": 0,
            "stores_built": 0,
            "store_hits": 0,
            "worlds_sampled": 0,
            "worlds_evaluated": 0,
            "eval_hits": 0,
            "plans_published": 0,
            # per-representation splits of stores_built / store_hits:
            # packed and unpacked draws are cached separately, and these
            # counters keep the ledger honest about which is which
            "packed_stores_built": 0,
            "unpacked_stores_built": 0,
            "packed_store_hits": 0,
            "unpacked_store_hits": 0,
            # admission/coalescing ledger: arrivals that waited on an
            # in-flight identical draw / evaluation instead of redoing it
            # (single-flight -- the serving tier's batching counters)
            "store_waits": 0,
            "eval_waits": 0,
            # per-stage evaluation split (vectorized / jit engines only):
            # seconds spent producing worlds, running the batched cheap
            # filtering stages, and solving the exact edge-density
            # networks -- plus how many worlds the batched pre-pass
            # primed and how many it dismissed as edgeless
            "eval_sampling_seconds": 0.0,
            "eval_bound_seconds": 0.0,
            "eval_exact_seconds": 0.0,
            "worlds_primed": 0,
            "worlds_filtered": 0,
            # dynamic-graph maintenance ledger (Session.update): how
            # many deltas were applied, how much work surgery actually
            # did (columns re-drawn in place, worlds whose edge sets
            # flipped), and what it cost the caches (evaluations marked
            # stale or dropped, stale entries patched lazily, worlds
            # re-evaluated during patching, legacy stores evicted)
            "graph_updates": 0,
            "dynamic_stores_built": 0,
            "stores_updated": 0,
            "stores_evicted": 0,
            "columns_redrawn": 0,
            "worlds_flipped": 0,
            "evals_invalidated": 0,
            "evals_patched": 0,
            "worlds_reevaluated": 0,
        }

    # ------------------------------------------------------------------
    # bookkeeping (thread-safe: sessions are shared by server threads)
    # ------------------------------------------------------------------
    def _bump(self, counter: str, n: int = 1) -> None:
        """Increment one stats counter under the session lock."""
        with self._lock:
            self.stats[counter] += n

    def _absorb_stage_stats(self, stage: Optional[dict]) -> None:
        """Merge an :meth:`EngineMeasure.stage_stats` dict into stats."""
        if not stage:
            return
        with self._lock:
            self.stats["eval_sampling_seconds"] += stage.get("sampling", 0.0)
            self.stats["eval_bound_seconds"] += stage.get("bound", 0.0)
            self.stats["eval_exact_seconds"] += stage.get("exact", 0.0)
            self.stats["worlds_primed"] += stage.get("primed", 0)
            self.stats["worlds_filtered"] += stage.get("filtered", 0)

    def stats_snapshot(self) -> dict:
        """A consistent copy of :attr:`stats` (safe to read while other
        threads are querying), plus the current cache sizes."""
        with self._lock:
            snapshot = dict(self.stats)
            snapshot["cached_stores"] = len(self._stores)
            snapshot["cached_evaluations"] = len(self._eval_cache)
        return snapshot

    def has_store(self, key: Tuple) -> bool:
        """Whether a draw (a :func:`repro.specs.sampler_store_key`) is
        already cached -- the admission layer's warm/cold probe."""
        with self._lock:
            return key in self._stores

    # ------------------------------------------------------------------
    # substrates
    # ------------------------------------------------------------------
    @property
    def indexed(self):
        """The session's shared :class:`IndexedGraph` (built once)."""
        if self._indexed is None:
            from .engine.indexed import IndexedGraph

            indexed = IndexedGraph.from_uncertain(self.graph)
            with self._lock:
                if self._indexed is None:
                    self._indexed = indexed
        return self._indexed

    def world_store(
        self,
        sampler: str = "mc",
        theta: int = 160,
        seed: Optional[int] = None,
        packed: Optional[bool] = None,
        dynamic: bool = False,
        **params,
    ):
        """Return the cached world store for a draw, sampling on miss.

        ``sampler`` is a registry spec (``"mc"``, ``"lp"``,
        ``"rss:r=4"``; a ``theta=``/``seed=`` carried in the spec
        overrides the keyword).  Seeded draws are cached under
        ``(kind, params, theta, seed, packed, dynamic)``; unseeded
        draws are sampled fresh each call (the cache is seed-keyed by
        design).  ``packed`` overrides the session's default mask
        representation for this draw; packed and unpacked draws never
        share a cache line.  ``dynamic=True`` draws the per-edge
        substream twin (:mod:`repro.delta`) that
        :meth:`Session.update` maintains surgically.
        """
        kind, spec_params = parse_sampler_spec(sampler)
        spec_params.update(params)
        context = f"sampler spec {sampler!r}"
        if "theta" in spec_params:
            theta = check_int_knob(
                context, "theta", spec_params.pop("theta"), positive=True
            )
        if "seed" in spec_params:
            seed = check_int_knob(context, "seed", spec_params.pop("seed"))
        theta = check_int_knob(context, "theta", theta, positive=True)
        if dynamic:
            _check_dynamic_draw(kind, spec_params, seed)
        return self._store_for(
            kind, spec_params, theta, seed, packed, dynamic
        )

    def _store_for(
        self,
        kind: str,
        params: dict,
        theta: int,
        seed: Optional[int],
        packed: Optional[bool] = None,
        dynamic: bool = False,
    ):
        """Return the cached store for a draw -- **single-flight**.

        Concurrent requests for the *same* ``(kind, params, theta,
        seed, packed)`` draw coalesce: the first arrival (the leader)
        samples, later arrivals wait on its in-flight event and then
        take the cache hit (counted in ``stats["store_waits"]``)
        instead of resampling.  Distinct draws never wait on each other
        -- the session lock is held only for cache/table bookkeeping,
        never while sampling.
        """
        packed = self.packed if packed is None else bool(packed)
        rep = "packed" if packed else "unpacked"
        key = sampler_store_key(kind, params, theta, seed, packed, dynamic)
        cacheable = self.cache_worlds and seed is not None
        if not cacheable:
            return self._draw_store(
                kind, params, theta, seed, packed, rep, dynamic
            )
        while True:
            with self._lock:
                store = self._stores.get(key)
                if store is not None:
                    self.stats["store_hits"] += 1
                    self.stats[f"{rep}_store_hits"] += 1
                    return store
                flight = self._store_flights.get(key)
                if flight is None:
                    flight = threading.Event()
                    self._store_flights[key] = flight
                    leader = True
                else:
                    leader = False
                    self.stats["store_waits"] += 1
            if not leader:
                # wait for the leader's draw, then re-read the cache (a
                # failed draw leaves it empty and this arrival retries
                # as the new leader -- errors re-raise from the sampler)
                flight.wait()
                continue
            try:
                store = self._draw_store(
                    kind, params, theta, seed, packed, rep, dynamic
                )
                with self._lock:
                    self._stores[key] = store
                return store
            finally:
                with self._lock:
                    self._store_flights.pop(key, None)
                flight.set()

    def _draw_store(self, kind, params, theta, seed, packed, rep,
                    dynamic=False):
        """Sample one draw into a fresh store (counts it in stats)."""
        from .engine.worldstore import WorldStore

        if dynamic:
            from .delta import draw_dynamic_store

            store = draw_dynamic_store(
                self.indexed, kind=kind, theta=theta, seed=seed,
                packed=packed,
            )
        else:
            vec = _vector_sampler(kind, self.indexed, seed, params)
            store = WorldStore.from_vectorized(
                vec, theta, kind=kind, seed=seed, packed=packed
            )
        with self._lock:
            self.stats["stores_built"] += 1
            self.stats[f"{rep}_stores_built"] += 1
            if dynamic:
                self.stats["dynamic_stores_built"] += 1
            self.stats["worlds_sampled"] += store.count
        return store

    def _published_graph(self):
        """Publish the graph payload once; every store's fan-out shares it."""
        from .core.parallel import PublishedGraph

        indexed = self.indexed
        with self._lock:
            if self._graph_segment is None:
                self._graph_segment = PublishedGraph.publish(indexed)
                self._published_segments.append(self._graph_segment)
            return self._graph_segment

    def _published_plan(self, key: Tuple, plan):
        """Publish a store's fan-out arrays once; reuse across queries."""
        from .core.parallel import PublishedPlan

        graph_segment = self._published_graph()
        with self._lock:
            published = self._published.get(key)
            if published is None:
                published = PublishedPlan.publish(plan, graph=graph_segment)
                self.stats["plans_published"] += 1
                if self.cache_worlds:
                    self._published[key] = published
                    self._published_segments.append(published)
            return published

    # ------------------------------------------------------------------
    # dynamic-graph maintenance
    # ------------------------------------------------------------------
    def update(self, delta) -> dict:
        """Apply a :class:`repro.delta.GraphDelta` to the live session.

        The graph is mutated in place and every session substrate is
        brought in line *incrementally* where the representation allows
        it:

        * **dynamic stores** (per-edge substream draws) are surgically
          maintained -- only the columns of updated/inserted edges are
          re-drawn (``columns_redrawn``), and the column diffs report
          exactly which worlds flipped (``worlds_flipped``);
        * **evaluation caches** over dynamic stores are invalidated at
          world granularity: entries are marked stale with their dirty
          world set and re-evaluated lazily on the next hit (only the
          flipped worlds replay);
        * **legacy stores** (continuous-stream draws) cannot be
          maintained column-wise, so they are evicted with their
          evaluations and re-drawn on demand;
        * published shared-memory segments describe pre-update arrays
          and are unlinked (warm fan-outs republish).

        Not safe to run concurrently with in-flight queries on the
        same session -- the serving tier drains admissions first
        (``POST /graphs/<name>/update``).  Returns a summary dict of
        the counters this update moved.
        """
        from .delta import GraphDelta, apply_store_delta

        if not isinstance(delta, GraphDelta):
            raise TypeError(
                f"Session.update expects a GraphDelta, "
                f"got {type(delta).__name__}"
            )
        with self._lock:
            if self._store_flights or self._eval_flights:
                raise RuntimeError(
                    "Session.update cannot run concurrently with "
                    "in-flight queries; drain them first (the serving "
                    "tier's admission gate does exactly that)"
                )
            resolved = delta.apply(self.graph)
            self.stats["graph_updates"] += 1
            summary = {
                "updates": len(resolved.updates),
                "noop_updates": resolved.noop_updates,
                "inserts": len(resolved.inserts),
                "deletes": len(resolved.deletes),
                "columns_redrawn": 0,
                "worlds_flipped": 0,
                "stores_updated": 0,
                "stores_evicted": 0,
                "evals_invalidated": 0,
            }
            if resolved.empty:
                # a no-op delta touches nothing: zero columns redrawn,
                # zero evaluations invalidated (pinned by the property
                # tier)
                return summary
            if self._indexed is None:
                # no query ever indexed the graph, so no store, eval
                # entry or published segment can exist either
                return summary
            from .engine.indexed import IndexedGraph

            new_indexed = IndexedGraph.from_uncertain(self.graph)
            self._indexed = new_indexed
            updated_flips: Dict[Tuple, set] = {}
            evicted = set()
            for key in list(self._stores):
                store = self._stores[key]
                if getattr(store, "dynamic", False):
                    outcome = apply_store_delta(store, resolved, new_indexed)
                    summary["columns_redrawn"] += outcome.columns_redrawn
                    summary["worlds_flipped"] += len(outcome.flipped)
                    summary["stores_updated"] += 1
                    self.stats["columns_redrawn"] += outcome.columns_redrawn
                    self.stats["worlds_flipped"] += len(outcome.flipped)
                    self.stats["stores_updated"] += 1
                    updated_flips[key] = {int(i) for i in outcome.flipped}
                else:
                    del self._stores[key]
                    store.close()
                    evicted.add(key)
                    summary["stores_evicted"] += 1
                    self.stats["stores_evicted"] += 1
            for ekey in list(self._eval_cache):
                skey = ekey[1]
                if skey in evicted:
                    del self._eval_cache[ekey]
                elif skey in updated_flips:
                    flips = updated_flips[skey]
                    if not flips:
                        continue
                    cached = self._eval_cache[ekey]
                    if isinstance(cached, _StaleEval):
                        cached.dirty.update(flips)
                    else:
                        records, replayed = cached
                        if replayed:
                            # replay attribution is not per-world, so a
                            # spliced total would lie; drop the entry
                            del self._eval_cache[ekey]
                        else:
                            self._eval_cache[ekey] = _StaleEval(
                                records, set(flips)
                            )
                else:
                    continue
                summary["evals_invalidated"] += 1
                self.stats["evals_invalidated"] += 1
            # published segments snapshot pre-update arrays; unlink them
            self._graph_segment = None
            self._published.clear()
        _close_published(self._published_segments)
        return summary

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self) -> "Query":
        """Start a chainable query against this session's graph."""
        return Query(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release cached stores and unlink published shared memory.

        Idempotent -- and not terminal: a session stays usable after
        ``close()`` (later queries simply refill the caches and publish
        fresh segments, which a further ``close()`` -- or the GC /
        interpreter-exit finalizer, which drains the same shared list --
        releases again).
        """
        with self._lock:
            # stores own spill files / packed buffers: release them now
            # rather than leaving cleanup to GC timing (update() closes
            # evicted stores for the same reason)
            for store in self._stores.values():
                store.close()
            self._stores.clear()
            self._eval_cache.clear()
            self._graph_segment = None
            self._published.clear()
        _close_published(self._published_segments)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            stores = len(self._stores)
        return (
            f"Session(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, "
            f"stores={stores}, engine={self.engine!r})"
        )


class Query:
    """Chainable query builder; terminal calls are :meth:`mpds` / :meth:`nds`.

    Every setter returns ``self``.  Unset knobs fall back to the
    session's defaults (engine, workers) or the estimators' historical
    defaults (``theta=160`` for MPDS, ``640`` for NDS, ``k=1``,
    ``min_size=2``).
    """

    def __init__(self, session: Session) -> None:
        self._session = session
        self._sampler_kind = "mc"
        self._sampler_params: dict = {}
        self._sampler_instance = None
        self._theta: Optional[int] = None
        self._seed: Optional[int] = None
        self._measure: Optional[DensityMeasure] = None
        self._k = 1
        self._min_size = 2
        self._engine: Optional[str] = None
        self._workers: Optional[Union[int, str]] = None
        self._enumerate_all = True
        self._per_world_limit: Optional[int] = 100_000
        self._packed: Optional[bool] = None
        self._dynamic = False

    # ------------------------------------------------------------------
    # chainable setters
    # ------------------------------------------------------------------
    def sampler(
        self,
        sampler=None,
        *,
        theta: Optional[int] = None,
        seed: Optional[int] = None,
        **params,
    ) -> "Query":
        """Choose the sampler: a spec string, an instance, or ``None``.

        Spec strings come from the :mod:`repro.specs` registry
        (``"mc"``, ``"lp"``, ``"rss:r=4"``); ``theta=``/``seed=`` may
        ride in the spec or as keywords (the spec wins on conflict,
        matching :meth:`Session.world_store` and the CLI flags).
        ``None`` keeps the default Monte Carlo.  A :class:`WorldSampler` *instance*
        streams exactly as the legacy functions did (its mutable RNG
        state cannot be cached).
        """
        if sampler is None:
            self._sampler_instance = None
            self._sampler_kind = "mc"
            self._sampler_params = dict(params)
        elif isinstance(sampler, str):
            kind, spec_params = parse_sampler_spec(sampler)
            spec_params.update(params)
            # spec-carried knobs win over the keywords, the same
            # precedence Session.world_store and the CLI flags use
            context = f"sampler spec {sampler!r}"
            spec_theta = check_int_knob(
                context, "theta", spec_params.pop("theta", None),
                positive=True,
            )
            spec_seed = check_int_knob(
                context, "seed", spec_params.pop("seed", None)
            )
            if spec_theta is not None:
                theta = spec_theta
            if spec_seed is not None:
                seed = spec_seed
            self._sampler_instance = None
            self._sampler_kind = kind
            self._sampler_params = spec_params
        else:
            if params:
                raise ValueError(
                    "cannot pass constructor parameters with a sampler "
                    "instance"
                )
            self._sampler_instance = sampler
        if theta is not None:
            self._theta = check_int_knob(
                "Query.sampler", "theta", theta, positive=True
            )
        if seed is not None:
            self._seed = check_int_knob("Query.sampler", "seed", seed)
        return self

    def measure(self, measure=None, **params) -> "Query":
        """Choose the density measure: spec string, instance, or ``None``
        (edge density).  Spec strings come from :mod:`repro.specs`
        (``"edge"``, ``"clique:h=3"``, ``"pattern:psi=diamond"``,
        ``"surplus:alpha=0.33"``)."""
        if measure is None and not params:
            self._measure = None
        else:
            self._measure = build_measure(measure, **params)
        return self

    def theta(self, theta: int) -> "Query":
        """Set the sampled world count (a positive integer)."""
        self._theta = check_int_knob(
            "Query.theta", "theta", theta, positive=True
        )
        return self

    def seed(self, seed: Optional[int]) -> "Query":
        """Set the sampling seed (seeded draws are cached per session)."""
        self._seed = check_int_knob("Query.seed", "seed", seed)
        return self

    def top_k(self, k: int) -> "Query":
        """Set how many node sets to return (a positive integer).

        Validated here, in the builder, with the spec-registry rules
        (``bool`` rejected, ``k >= 1``) -- a bad ``k`` used to survive
        until deep in finalize.
        """
        if k is None or check_int_knob("Query.top_k", "k", k) is None:
            raise ValueError(
                f"Query.top_k: k must be an integer, got {k!r}"
            )
        if k < 1:
            raise ValueError(f"Query.top_k: k must be >= 1, got {k}")
        self._k = k
        return self

    def min_size(self, min_size: int) -> "Query":
        """Set ``l_m``, the minimum returned node-set size (NDS only;
        a positive integer, validated in the builder)."""
        if min_size is None or check_int_knob(
            "Query.min_size", "min_size", min_size
        ) is None:
            raise ValueError(
                f"Query.min_size: min_size (l_m) must be an integer, "
                f"got {min_size!r}"
            )
        if min_size < 1:
            raise ValueError(
                f"Query.min_size: min_size (l_m) must be >= 1, "
                f"got {min_size}"
            )
        self._min_size = min_size
        return self

    def engine(self, engine: str) -> "Query":
        """Override the session's engine for this query."""
        self._engine = engine
        return self

    def workers(self, workers: Union[int, str]) -> "Query":
        """Override the session's worker count (``1``, N, or ``"auto"``)."""
        self._workers = workers
        return self

    def enumerate_all(self, enumerate_all: bool) -> "Query":
        """Record all densest subgraphs per world (Table IX ablation)."""
        self._enumerate_all = enumerate_all
        return self

    def per_world_limit(self, limit: Optional[int]) -> "Query":
        """Cap the densest subgraphs enumerated per world (a positive
        integer, or ``None`` for unbounded; validated in the builder)."""
        if limit is not None:
            check_int_knob(
                "Query.per_world_limit", "per_world_limit", limit
            )
            if limit < 1:
                raise ValueError(
                    "Query.per_world_limit: per_world_limit must be "
                    f">= 1 or None, got {limit}"
                )
        self._per_world_limit = limit
        return self

    def packed(self, packed: bool) -> "Query":
        """Override the session's mask representation for this query's
        draw (``True`` = bit-packed words, ``False`` = boolean bytes).
        Estimates are byte-identical either way; only memory and the
        store-cache line change."""
        self._packed = packed
        return self

    def dynamic(self, dynamic: bool = True) -> "Query":
        """Draw this query's worlds from per-edge seed-keyed substreams.

        Dynamic draws (:mod:`repro.delta`) survive
        :meth:`Session.update` surgically -- a probability update
        re-draws one mask column instead of evicting the store.  They
        are deterministic and engine/worker-invariant like the legacy
        draws, but **not** byte-identical to the one-shot estimators
        (a continuous RNG stream cannot be maintained column-wise).
        Requires an explicit seed; ``mc``/``lp`` kinds only.
        """
        self._dynamic = bool(dynamic)
        return self

    # ------------------------------------------------------------------
    # terminals
    # ------------------------------------------------------------------
    def mpds(self) -> MPDSResult:
        """Run Algorithm 1 (top-k MPDS) with the configured knobs."""
        return self._execute("mpds")

    def nds(self) -> NDSResult:
        """Run Algorithm 5 (top-k NDS) with the configured knobs."""
        return self._execute("nds")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, mode: str):
        session = self._session
        if self._k < 1:
            raise ValueError(f"k must be >= 1, got {self._k}")
        if mode == "nds" and self._min_size < 1:
            raise ValueError(
                f"min_size (l_m) must be >= 1, got {self._min_size}"
            )
        theta = self._theta
        if theta is None:
            theta = 160 if mode == "mpds" else 640
        engine = self._engine if self._engine is not None else session.engine
        measure = self._measure or EdgeDensity()

        workers_requested = self._workers
        if workers_requested is None and session.workers != 1:
            workers_requested = session.workers
        if workers_requested is not None:
            # parallel-path validations, matching the legacy wrappers
            from .core.parallel import resolve_workers

            if theta <= 0:
                raise ValueError(f"theta must be positive, got {theta}")
            workers = resolve_workers(workers_requested)
            if workers < 1:
                raise ValueError(
                    f"workers must be >= 1, got {workers_requested}"
                )
        else:
            workers = 1

        session._bump("queries")
        if self._dynamic:
            if self._sampler_instance is not None:
                raise ValueError(
                    "dynamic draws cannot use a sampler instance "
                    "(their substreams are derived from the seed)"
                )
            _check_dynamic_draw(
                self._sampler_kind, self._sampler_params, self._seed
            )
        storeable = (
            self._sampler_instance is None
            and self._seed is not None
            and (session.cache_worlds or self._dynamic)
            and theta > 0
            and session.indexed.m > 0
        )

        if workers > 1 and not storeable:
            return self._legacy_parallel(mode, measure, engine, theta,
                                         workers)
        if storeable:
            # theta == 1 parallel requests fall through to the in-process
            # evaluation inside _store_execute (the grid cannot help), the
            # same fallback the one-shot wrappers take before any RNG use
            return self._store_execute(
                mode, measure, engine, theta,
                workers if theta != 1 else 1,
            )
        return self._stream_sequential(mode, measure, engine, theta)

    # -- store-backed path ---------------------------------------------
    def _store_execute(self, mode, measure, engine, theta, workers):
        """Serve a query from the session caches, filling them on miss.

        Layered reuse: an evaluation-cache hit replays the per-world
        records straight through finalize (no sampling, no world
        evaluation); a miss falls back to the world store (no sampling)
        and evaluates in-process or over the published fan-out.

        Cacheable evaluations are **single-flight** like the store
        draws: concurrent identical queries elect one leader to
        evaluate, later arrivals wait and replay its records
        (``stats["eval_waits"]``), so a burst of identical requests
        costs one evaluation, not N.
        """
        from .engine.estimators import resolve_engine

        session = self._session
        packed = (
            session.packed if self._packed is None else bool(self._packed)
        )
        skey = sampler_store_key(
            self._sampler_kind, self._sampler_params, theta, self._seed,
            packed, self._dynamic,
        )
        resolved = resolve_engine(engine, None, measure)
        enumerate_all = self._enumerate_all if mode == "mpds" else True
        per_world_limit = self._per_world_limit if mode == "mpds" else None
        # one-shot sessions (cache_worlds=False, reachable via dynamic
        # queries) must not pin records across calls
        mkey = _measure_key(measure) if session.cache_worlds else None
        ekey = (
            None
            if mkey is None
            else (mode, skey, mkey, resolved, enumerate_all, per_world_limit)
        )
        if ekey is None:
            records, replayed = self._compute_records(
                mode, skey, measure, resolved, enumerate_all,
                per_world_limit, workers, packed, theta,
            )
            session._bump("worlds_evaluated", len(records))
            return self._finalize(mode, records, replayed)
        while True:
            with session._lock:
                cached = session._eval_cache.get(ekey)
                if cached is not None and not isinstance(cached, _StaleEval):
                    session.stats["eval_hits"] += 1
                    records, replayed = cached
                    break
                stale = cached  # None, or a post-update _StaleEval
                flight = session._eval_flights.get(ekey)
                if flight is None:
                    flight = threading.Event()
                    session._eval_flights[ekey] = flight
                    leader = True
                else:
                    leader = False
                    session.stats["eval_waits"] += 1
            if not leader:
                flight.wait()
                continue
            try:
                if stale is not None:
                    records, replayed = self._patch_records(
                        mode, stale, measure, resolved, enumerate_all,
                        per_world_limit, packed, theta,
                    )
                else:
                    records, replayed = self._compute_records(
                        mode, skey, measure, resolved, enumerate_all,
                        per_world_limit, workers, packed, theta,
                    )
                    session._bump("worlds_evaluated", len(records))
                with session._lock:
                    session._eval_cache[ekey] = (records, replayed)
                break
            finally:
                with session._lock:
                    session._eval_flights.pop(ekey, None)
                flight.set()
        return self._finalize(mode, records, replayed)

    def _patch_records(
        self, mode, stale, measure, resolved, enumerate_all,
        per_world_limit, packed, theta,
    ):
        """Re-evaluate a stale entry's dirty worlds and splice them in.

        Per-world records make the splice exact: unflipped worlds keep
        their pre-update records (their edge sets did not change) and
        the dirty subset replays through the very same evaluation seams
        a full pass uses, so the patched list is byte-identical to
        re-evaluating the whole store.  A stale entry always has
        ``replayed == 0`` (truncated ones are dropped on update), so
        the fresh subset's replay count is the new total.
        """
        session = self._session
        store = session._store_for(
            self._sampler_kind, self._sampler_params, theta, self._seed,
            packed, self._dynamic,
        )
        dirty = sorted(stale.dirty)
        worlds, loop_measure, engine_measure = store.world_stream(
            measure, resolved, subset=dirty
        )
        if mode == "mpds":
            fresh = list(
                evaluate_worlds(
                    worlds, loop_measure, enumerate_all, per_world_limit
                )
            )
            replayed = (
                engine_measure.replayed_worlds if engine_measure else 0
            )
        else:
            fresh = list(evaluate_transactions(worlds, loop_measure))
            replayed = 0
        if engine_measure is not None:
            session._absorb_stage_stats(engine_measure.stage_stats())
        records = list(stale.records)
        for index, record in zip(dirty, fresh):
            records[index] = record
        with session._lock:
            session.stats["evals_patched"] += 1
            session.stats["worlds_reevaluated"] += len(dirty)
            session.stats["worlds_evaluated"] += len(dirty)
        return records, replayed

    def _compute_records(
        self, mode, skey, measure, resolved, enumerate_all,
        per_world_limit, workers, packed, theta,
    ):
        """Fetch the draw (coalesced) and evaluate it into records."""
        store = self._session._store_for(
            self._sampler_kind, self._sampler_params, theta, self._seed,
            packed, self._dynamic,
        )
        if workers > 1:
            return self._dispatch_records(
                mode, store, skey, measure, resolved,
                enumerate_all, per_world_limit, workers,
            )
        return self._evaluate_records(
            mode, store, measure, resolved, enumerate_all, per_world_limit
        )

    def _evaluate_records(
        self, mode, store, measure, resolved, enumerate_all, per_world_limit
    ):
        """Evaluate the store's worlds in-process into per-world records,
        through the same :mod:`repro.core` seams ``mpds_from_store`` /
        ``nds_from_store`` run on."""
        stage: dict = {}
        if mode == "mpds":
            out = evaluate_store_mpds(
                store, measure, resolved, enumerate_all, per_world_limit,
                stage_stats=stage,
            )
        else:
            out = (
                evaluate_store_transactions(
                    store, measure, resolved, stage_stats=stage
                ),
                0,
            )
        self._session._absorb_stage_stats(stage)
        return out

    def _dispatch_records(
        self, mode, store, skey, measure, resolved, enumerate_all,
        per_world_limit, workers,
    ):
        """Evaluate the store's worlds over the published fan-out.

        Returns the grid-ordered per-world records -- exactly the
        stream the sequential evaluation produces, so both fill the
        same evaluation cache and finalize identically.
        """
        from .core.parallel import (
            _records_in_grid_order,
            _replay_truncated,
            dispatch_blocks,
            plan_from_store,
        )

        session = self._session
        plan = plan_from_store(store)
        published = session._published_plan(skey, plan)
        try:
            outputs = dispatch_blocks(
                plan, published, workers, mode, measure, resolved,
                enumerate_all, per_world_limit,
            )
        finally:
            if not session.cache_worlds:  # pragma: no cover - defensive
                published.close()
        if mode == "mpds":
            _replay_truncated(plan, outputs, measure, per_world_limit)
        ordered, replayed = _records_in_grid_order(
            plan.blocks, plan.weights, outputs
        )
        return list(ordered), (sum(replayed) if mode == "mpds" else 0)

    def _finalize(self, mode, records, replayed):
        """Rank cached records -- the only per-query work on a warm hit."""
        if mode == "mpds":
            result = finalize_mpds(iter(records), self._k)
            result.replayed_worlds = replayed
            return result
        transactions, weights, total_weight, actual_theta = (
            accumulate_transactions(iter(records))
        )
        return finalize_nds(
            transactions, weights, total_weight, actual_theta,
            self._k, self._min_size,
        )

    # -- streaming paths (the legacy one-shot code) --------------------
    def _build_sampler_instance(self):
        """The sampler the legacy streaming paths should see.

        ``None`` for plain Monte Carlo (the estimators build their own
        from the seed, preserving the unseeded block-seeded parallel
        path); a fresh registry instance for LP/RSS kinds, exactly as
        the CLI always constructed them.
        """
        if self._sampler_instance is not None:
            return self._sampler_instance
        if self._sampler_kind == "mc" and not self._sampler_params:
            return None
        return build_sampler(
            self._sampler_kind,
            self._session.graph,
            self._seed,
            **self._sampler_params,
        )

    def _legacy_parallel(self, mode, measure, engine, theta, workers):
        from .core.parallel import _parallel_mpds_impl, _parallel_nds_impl

        sampler = self._build_sampler_instance()
        if mode == "mpds":
            result = _parallel_mpds_impl(
                self._session.graph, self._k, theta, measure, sampler,
                self._seed, workers, self._enumerate_all,
                self._per_world_limit, engine,
            )
        else:
            result = _parallel_nds_impl(
                self._session.graph, self._k, self._min_size, theta, measure,
                sampler, self._seed, workers, engine,
            )
        # uncached draw: count it so session stats stay truthful
        self._session._bump("worlds_sampled", result.theta)
        return result

    def _stream_sequential(self, mode, measure, engine, theta):
        from .engine.estimators import prepare_world_stream

        sampler = self._build_sampler_instance()
        worlds, loop_measure, engine_measure = prepare_world_stream(
            self._session.graph, theta, measure, sampler, self._seed, engine
        )
        if mode == "mpds":
            result = finalize_mpds(
                evaluate_worlds(
                    worlds, loop_measure, self._enumerate_all,
                    self._per_world_limit,
                ),
                self._k,
            )
            # read after the stream is fully consumed: the engine counts
            # replays as it evaluates
            result.replayed_worlds = (
                engine_measure.replayed_worlds if engine_measure else 0
            )
        else:
            transactions, weights, total_weight, actual_theta = (
                accumulate_transactions(
                    evaluate_transactions(worlds, loop_measure)
                )
            )
            result = finalize_nds(
                transactions, weights, total_weight, actual_theta,
                self._k, self._min_size,
            )
        # uncached draw: count it so session stats stay truthful
        self._session._bump("worlds_sampled", result.theta)
        if engine_measure is not None:
            self._session._absorb_stage_stats(engine_measure.stage_stats())
        return result

    def __repr__(self) -> str:
        sampler = (
            type(self._sampler_instance).__name__
            if self._sampler_instance is not None
            else self._sampler_kind
        )
        return (
            f"Query(sampler={sampler!r}, theta={self._theta}, "
            f"seed={self._seed}, k={self._k})"
        )
