"""Fig. 18: varying the mean of normal edge probabilities on ER7."""

from repro.experiments import format_fig18, run_fig18

from .conftest import emit


def test_fig18(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig18(means=(0.2, 0.5, 0.8), ks=(1, 5, 10), theta=300),
        rounds=1, iterations=1,
    )
    emit("fig18_edge_probabilities", format_fig18(rows))
    # paper shape: runtime grows with the mean (denser sampled worlds)
    assert rows[-1].approx_seconds >= rows[0].approx_seconds * 0.8
    # F1 reasonable for every distribution
    for row in rows:
        assert row.f1_by_k[1] >= 0.5, row.mean
