#!/usr/bin/env python
"""Community detection in an uncertain social network (Karate Club case study).

Reproduces the Section VI-E case study: on Zachary's Karate Club with
communication-derived edge probabilities, the top MPDSs are pure
single-faction communities, while the deterministic densest subgraph (DDS),
the expected densest subgraph (EDS), and the innermost probabilistic
core/truss mix the two factions (the paper's Figs. 6-7 and Table X).

Run:  python examples/community_detection.py
"""

from __future__ import annotations

from repro import top_k_mpds
from repro.baselines import (
    deterministic_densest_subgraph,
    expected_densest_subgraph,
    innermost_eta_core,
    innermost_gamma_truss,
)
from repro.datasets import KARATE_FACTIONS, karate_club_uncertain
from repro.metrics import average_purity, purity


def describe(name: str, nodes, probability=None) -> None:
    factions = sorted({KARATE_FACTIONS[n] for n in nodes})
    note = f"  tau-hat = {probability:.3f}" if probability is not None else ""
    print(f"  {name:<6} size={len(nodes):<3} purity={purity(nodes, KARATE_FACTIONS):.2f} "
          f"factions={factions}{note}")
    print(f"         nodes: {sorted(nodes)}")


def main() -> None:
    graph = karate_club_uncertain(seed=2023)
    print(f"Karate Club: {graph.number_of_nodes()} members, "
          f"{graph.number_of_edges()} uncertain interactions\n")

    print("== Top-5 MPDSs (each should stay inside one faction) ==")
    result = top_k_mpds(graph, k=5, theta=200, seed=7)
    for rank, scored in enumerate(result.top, 1):
        describe(f"#{rank}", scored.nodes, scored.probability)
    top_purity = average_purity(result.top_sets(), KARATE_FACTIONS)
    print(f"  average purity of top-5 MPDSs: {top_purity:.2f}\n")

    print("== Baselines (typically mix the factions) ==")
    _d, dds = deterministic_densest_subgraph(graph)
    describe("DDS", dds)
    eds = expected_densest_subgraph(graph)
    describe("EDS", eds.nodes)
    _k, core = innermost_eta_core(graph, eta=0.1)
    describe("Core", core)
    _k, truss = innermost_gamma_truss(graph, gamma=0.1)
    describe("Truss", truss)

    print("\nReading the result: the MPDS ranks communities by how likely "
          "they are to be the *densest* part of the realised network -- "
          "low-probability (noisy) edges cannot inflate them, unlike the "
          "deterministic or expectation-based notions.")


if __name__ == "__main__":
    main()
