"""Tests for the three possible-world samplers (MC, LP, RSS)."""

from __future__ import annotations

import math
import random

import pytest

from repro.graph.uncertain import UncertainGraph
from repro.sampling import (
    LazyPropagationSampler,
    MonteCarloSampler,
    RecursiveStratifiedSampler,
    SAMPLERS,
)

from .conftest import random_uncertain_graph


def edge_frequency(sampler, theta, edge):
    """Weighted frequency of an edge across sampled worlds."""
    hit = 0.0
    total = 0.0
    for weighted in sampler.worlds(theta):
        total += weighted.weight
        if weighted.graph.has_edge(*edge):
            hit += weighted.weight
    return hit / total if total else 0.0


@pytest.fixture
def two_edge_graph():
    return UncertainGraph.from_weighted_edges([(1, 2, 0.3), (2, 3, 0.8)])


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ["MC", "LP", "RSS"])
    def test_worlds_have_all_nodes(self, name, two_edge_graph):
        sampler = SAMPLERS[name](two_edge_graph, seed=1)
        for weighted in sampler.worlds(10):
            assert set(weighted.graph.nodes()) == {1, 2, 3}

    @pytest.mark.parametrize("name", ["MC", "LP", "RSS"])
    def test_weights_sum_to_one(self, name, two_edge_graph):
        sampler = SAMPLERS[name](two_edge_graph, seed=2)
        total = sum(w.weight for w in sampler.worlds(50))
        assert math.isclose(total, 1.0, rel_tol=0.02)

    @pytest.mark.parametrize("name", ["MC", "LP", "RSS"])
    def test_edge_marginals_unbiased(self, name, two_edge_graph):
        sampler = SAMPLERS[name](two_edge_graph, seed=3)
        theta = 4000
        freq_low = edge_frequency(sampler, theta, (1, 2))
        sampler2 = SAMPLERS[name](two_edge_graph, seed=4)
        freq_high = edge_frequency(sampler2, theta, (2, 3))
        assert abs(freq_low - 0.3) < 0.04, name
        assert abs(freq_high - 0.8) < 0.04, name

    @pytest.mark.parametrize("name", ["MC", "LP", "RSS"])
    def test_invalid_theta(self, name, two_edge_graph):
        sampler = SAMPLERS[name](two_edge_graph, seed=5)
        with pytest.raises(ValueError):
            list(sampler.worlds(0))

    @pytest.mark.parametrize("name", ["MC", "LP", "RSS"])
    def test_deterministic_given_seed(self, name, rng):
        graph = random_uncertain_graph(rng, 8, 0.5)
        a = SAMPLERS[name](graph, seed=42)
        b = SAMPLERS[name](graph, seed=42)
        worlds_a = [w.graph.edge_set() for w in a.worlds(10)]
        worlds_b = [w.graph.edge_set() for w in b.worlds(10)]
        assert worlds_a == worlds_b


class TestMemoryAccounting:
    def test_mc_stateless(self, two_edge_graph):
        sampler = MonteCarloSampler(two_edge_graph, seed=1)
        list(sampler.worlds(10))
        assert sampler.memory_units() == 0

    def test_lp_tracks_per_edge_state(self, two_edge_graph):
        sampler = LazyPropagationSampler(two_edge_graph, seed=1)
        list(sampler.worlds(10))
        assert sampler.memory_units() == two_edge_graph.number_of_edges()

    def test_rss_tracks_fixed_edges(self, rng):
        graph = random_uncertain_graph(rng, 10, 0.5)
        sampler = RecursiveStratifiedSampler(graph, seed=1, r=3)
        list(sampler.worlds(100))
        assert sampler.memory_units() > 0

    def test_memory_ordering_matches_paper(self, rng):
        """MC < LP: the Tables XIII/XIV ordering."""
        graph = random_uncertain_graph(rng, 12, 0.6)
        mc = MonteCarloSampler(graph, seed=1)
        lp = LazyPropagationSampler(graph, seed=1)
        list(mc.worlds(20))
        list(lp.worlds(20))
        assert mc.memory_units() < lp.memory_units()


class TestLPSpecifics:
    @pytest.mark.parametrize("name", ["LP", "RSS"])
    def test_per_edge_inclusion_frequency_converges(self, name, rng):
        """Every edge's weighted inclusion frequency converges to its p."""
        graph = random_uncertain_graph(rng, 8, 0.5, low=0.1, high=0.9)
        sampler = SAMPLERS[name](graph, seed=13)
        hits = {}
        total = 0.0
        for weighted in sampler.worlds(2500):
            total += weighted.weight
            for u, v in weighted.graph.edges():
                key = frozenset((u, v))
                hits[key] = hits.get(key, 0.0) + weighted.weight
        for u, v, p in graph.weighted_edges():
            freq = hits.get(frozenset((u, v)), 0.0) / total
            assert abs(freq - p) < 0.05, (name, u, v, p, freq)

    def test_memory_units_zero_before_sampling(self, two_edge_graph):
        """The docstring contract: state cells appear only once drawn."""
        sampler = LazyPropagationSampler(two_edge_graph, seed=1)
        assert sampler.memory_units() == 0
        list(sampler.worlds(5))
        assert sampler.memory_units() == two_edge_graph.number_of_edges()


class TestRSSSpecifics:
    def test_stratum_probabilities_sum_to_one(self):
        """The r+1 strata of one split partition the world space exactly."""
        graph = UncertainGraph.from_weighted_edges(
            [(1, 2, 0.5), (2, 3, 0.5), (3, 4, 0.5)]
        )
        sampler = RecursiveStratifiedSampler(graph, seed=3, r=2)
        leaves = list(sampler.leaf_strata(64))
        assert sum(probability for *_rest, probability in leaves) == pytest.approx(
            1.0, abs=1e-12
        )
        # allocations account for every requested world
        assert sum(allocation for _f, _fr, allocation, _p in leaves) == 64

    def test_leaf_strata_is_deterministic_and_rng_free(self, rng):
        graph = random_uncertain_graph(rng, 10, 0.5)
        first = RecursiveStratifiedSampler(graph, seed=1)
        second = RecursiveStratifiedSampler(graph, seed=99)
        to_tuples = lambda sampler: [
            (tuple(fixed.items()), tuple(free), allocation, probability)
            for fixed, free, allocation, probability in sampler.leaf_strata(100)
        ]
        # the tree ignores the seed entirely (draws happen only at leaves)
        assert to_tuples(first) == to_tuples(second)

    def test_memory_units_matches_peak_fixed_cells(self):
        """Docstring contract: peak of len(fixed) * (depth + 1) over strata."""
        graph = UncertainGraph.from_weighted_edges(
            [(u, v, 0.5) for u, v in
             [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1)]]
        )
        sampler = RecursiveStratifiedSampler(graph, seed=2, r=3, max_depth=1)
        assert sampler.memory_units() == 0
        list(sampler.worlds(100))
        # one stratification level (all strata allocated): the all-absent
        # stratum fixes r edges at depth 1, so the peak is r * (1 + 1)
        assert sampler.memory_units() == 2 * 3


class TestRSSSampling:
    def test_stratification_covers_certain_edge(self):
        graph = UncertainGraph.from_weighted_edges([(1, 2, 1.0), (2, 3, 0.5)])
        sampler = RecursiveStratifiedSampler(graph, seed=9, r=2)
        for weighted in sampler.worlds(40):
            assert weighted.graph.has_edge(1, 2)

    def test_invalid_r(self, two_edge_graph):
        with pytest.raises(ValueError):
            RecursiveStratifiedSampler(two_edge_graph, r=0)

    def test_rss_variance_not_worse_much(self, rng):
        """RSS estimate of a simple statistic is consistent with MC."""
        graph = random_uncertain_graph(rng, 8, 0.6, low=0.2, high=0.9)
        expected = sum(p for _u, _v, p in graph.weighted_edges())

        def estimate(sampler_cls, seed):
            sampler = sampler_cls(graph, seed=seed)
            total, weight = 0.0, 0.0
            for w in sampler.worlds(800):
                total += w.weight * w.graph.number_of_edges()
                weight += w.weight
            return total / weight

        mc = estimate(MonteCarloSampler, 11)
        rss = estimate(RecursiveStratifiedSampler, 11)
        assert abs(mc - expected) < 0.08 * expected + 0.5
        assert abs(rss - expected) < 0.08 * expected + 0.5
