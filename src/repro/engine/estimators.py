"""Wiring of the vectorised engine into Algorithm 1 / Algorithm 5.

The estimator loops in :mod:`repro.core.mpds` / :mod:`repro.core.nds`
iterate ``(world, weight)`` pairs and query a :class:`DensityMeasure`.
The vectorised path keeps those loops intact and swaps the two
collaborators:

* the sampler becomes the vectorised twin of whichever strategy was
  requested -- :class:`VectorizedMonteCarloSampler`,
  :class:`VectorizedLazyPropagationSampler` or
  :class:`VectorizedStratifiedSampler` -- yielding :class:`MaskWorld`
  views drawn from numpy batches that replay the pure-Python sampler's
  exact MT19937 stream;
* the measure becomes :class:`EngineMeasure`, which answers edge-density
  queries entirely on the CSR/bitmask substrate (peel bound, k-core
  shrink, per-component Dinkelbach flows and residual condensation over
  :class:`SubWorldView` arrays -- zero ``to_graph()`` calls), pre-filters
  clique/pattern worlds to the core that provably contains every densest
  set before materialising them, and falls back to the full materialised
  world (``MaskWorld.to_graph``) only for custom measures and
  tie-breaking-sensitive queries.

Because the batch samplers replay the pure-Python samplers' exact
Bernoulli/geometric streams and the fast measure paths provably return
the same candidate sets, both engines produce identical estimates for the
same seed.  Worlds whose enumeration hits ``per_world_limit`` fall back
to the python path (counted in :attr:`EngineMeasure.replayed_worlds`), so
even the truncated subset matches byte-for-byte.
"""

from __future__ import annotations

from contextlib import nullcontext
from fractions import Fraction
from itertools import islice
from time import perf_counter
from typing import Iterable, Iterator, List, Optional

import numpy as np

from ..core.measures import (
    CliqueDensity,
    DensityMeasure,
    EdgeDensity,
    NodeSet,
    PatternDensity,
)
from ..dense.all_densest import (
    _Prepared,
    enumerate_independent_sets,
    prepare_from_bound_csr,
)
from ..dense.peeling import _peel_arrays
from ..graph.graph import Graph
from ..sampling.lazy_propagation import LazyPropagationSampler
from ..sampling.monte_carlo import MonteCarloSampler
from ..sampling.stratified import RecursiveStratifiedSampler
from .indexed import MaskWorld, SubWorldView
from .jit import HAVE_NUMBA, use_jit
from .kernels import batch_k_core_alive, batch_peel_bounds, k_core_alive
from .lazy import VectorizedLazyPropagationSampler
from .sampler import VectorizedMonteCarloSampler
from .stratified import VectorizedStratifiedSampler

ENGINES = ("auto", "python", "vectorized", "jit")

#: resolved engines that run the mask-native (vectorised) pipeline;
#: ``"jit"`` is the same pipeline with the numba tier active for the
#: two per-world hot loops (:mod:`repro.engine.jit`)
VECTOR_ENGINES = ("vectorized", "jit")

#: how many worlds the batched pre-pass buffers and primes at once
#: (peel bounds and k-cores for the whole chunk in a handful of numpy
#: passes instead of one python loop iteration per world)
PRIME_CHUNK = 64

#: sampler types the vectorised engine can replay byte-for-byte
_VECTORIZABLE_SAMPLERS = (
    MonteCarloSampler,
    VectorizedMonteCarloSampler,
    LazyPropagationSampler,
    VectorizedLazyPropagationSampler,
    RecursiveStratifiedSampler,
    VectorizedStratifiedSampler,
)

#: measure types with a mask-native fast path (exact type match: a
#: subclass may change semantics the fast paths do not know about)
_FAST_MEASURES = (EdgeDensity, CliqueDensity, PatternDensity)

#: vectorised twin constructors by registry kind -- the engine-side
#: column of :data:`repro.specs.SAMPLER_KINDS`.  Each accepts
#: ``(graph_or_indexed, seed, **params)``; a new sampler kind must be
#: registered here as well as there (the session's cached-store path
#: resolves twins through this table)
VECTOR_SAMPLER_KINDS = {
    "mc": VectorizedMonteCarloSampler,
    "lp": VectorizedLazyPropagationSampler,
    "rss": VectorizedStratifiedSampler,
}


def resolve_engine(engine: str, sampler, measure: DensityMeasure) -> str:
    """Decide which engine a ``top_k_mpds`` / ``top_k_nds`` call uses.

    ``auto`` picks the vectorised engine whenever the combination is a
    guaranteed byte-identical drop-in: any of the three paper samplers
    (MC -- the default --, LP, RSS, or their vectorised twins) combined
    with any of the three paper measures (:class:`EdgeDensity`,
    :class:`CliqueDensity`, :class:`PatternDensity`).  Custom sampler or
    measure *types* fall back to the pure-Python path because the engine
    cannot vouch for their replay semantics.  ``vectorized`` forces the
    engine for any measure (unknown measures run through the
    mask->Graph adapter) but still requires one of the replayable
    samplers.  ``python`` always uses the original path.

    ``jit`` is the vectorised engine with the optional numba tier
    (:mod:`repro.engine.jit`) active for the per-world hot loops; it
    resolves to ``"jit"`` only when numba is importable and falls back
    to ``"vectorized"`` otherwise -- same results either way, the tier
    is purely a performance knob.  ``auto`` upgrades to ``"jit"``
    automatically when numba is present.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    replayable = sampler is None or (
        type(sampler) in _VECTORIZABLE_SAMPLERS
    )
    if engine == "python":
        return "python"
    if engine in ("vectorized", "jit"):
        if not replayable:
            raise ValueError(
                f"engine={engine!r} supports MC, LP and RSS sampling only; "
                f"got sampler {type(sampler).__name__}"
            )
        if engine == "jit":
            return "jit" if HAVE_NUMBA else "vectorized"
        return "vectorized"
    if replayable and type(measure) in _FAST_MEASURES:
        return "jit" if HAVE_NUMBA else "vectorized"
    return "python"


def vectorized_sampler(graph, sampler, seed: Optional[int]):
    """Build the batch sampler mirroring what the python path would use.

    With no explicit sampler this replicates ``MonteCarloSampler(graph,
    seed)``; an explicit pure-Python MC/LP/RSS sampler is adopted
    mid-stream (same worlds it would have produced next, with its RNG and
    ``memory_units`` bookkeeping kept in sync); a vectorised sampler is
    used as-is.
    """
    if sampler is None:
        return VectorizedMonteCarloSampler(graph, seed)
    if isinstance(
        sampler,
        (
            VectorizedMonteCarloSampler,
            VectorizedLazyPropagationSampler,
            VectorizedStratifiedSampler,
        ),
    ):
        return sampler
    if isinstance(sampler, MonteCarloSampler):
        return VectorizedMonteCarloSampler.from_monte_carlo(sampler)
    if isinstance(sampler, LazyPropagationSampler):
        return VectorizedLazyPropagationSampler.from_lazy_propagation(sampler)
    if isinstance(sampler, RecursiveStratifiedSampler):
        return VectorizedStratifiedSampler.from_stratified(sampler)
    raise ValueError(
        f"no vectorised twin for sampler {type(sampler).__name__}"
    )


def primed_world_stream(
    worlds: Iterable,
    engine_measure: "EngineMeasure",
    chunk: int = PRIME_CHUNK,
) -> Iterator:
    """Batch-prime a weighted :class:`MaskWorld` stream, chunk by chunk.

    Pulls up to ``chunk`` worlds at a time and runs the cheap filtering
    stages for the whole chunk in a few numpy passes
    (:meth:`EngineMeasure.prime_batch`: batched degree counts, lockstep
    bucketed peel bounds, per-world-k k-cores), attaching the results to
    each world's ``prepped`` slot -- the estimator loop downstream then
    skips its per-world python bound/core stages and goes straight to
    the exact solver on the pre-shrunk core.  Worlds are still yielded
    in order (buffering never reorders or drops), so estimates are
    byte-identical to the unprimed stream.

    Also the seam where the per-stage wall-clock split is measured:
    time spent pulling from upstream is the **sampling** stage, the
    batch kernels are the **bound** stage
    (:attr:`EngineMeasure.stage_seconds`).
    """
    worlds = iter(worlds)
    while True:
        started = perf_counter()
        buffered = list(islice(worlds, chunk))
        engine_measure.stage_seconds["sampling"] += perf_counter() - started
        if not buffered:
            return
        started = perf_counter()
        engine_measure.prime_batch(
            [w.graph for w in buffered if isinstance(w.graph, MaskWorld)]
        )
        engine_measure.stage_seconds["bound"] += perf_counter() - started
        yield from buffered


def prepare_world_stream(
    graph,
    theta: int,
    measure: DensityMeasure,
    sampler,
    seed: Optional[int],
    engine: str,
):
    """Resolve the engine and build one estimator run's collaborators.

    The single entry point the sampling estimators (Algorithms 1 and 5 in
    :mod:`repro.core.mpds` / :mod:`repro.core.nds`) use to set up their
    ``(world, weight)`` loop.  Returns ``(worlds, loop_measure,
    engine_measure)``: on the vectorised path ``worlds`` yields
    :class:`MaskWorld` views (batch-primed chunk by chunk through
    :func:`primed_world_stream`) and ``loop_measure`` is an
    :class:`EngineMeasure` (also returned as ``engine_measure`` for
    bookkeeping access); on the python path ``worlds`` yields
    materialised :class:`Graph` worlds, ``loop_measure`` is the plain
    measure and ``engine_measure`` is ``None``.
    """
    resolved = resolve_engine(engine, sampler, measure)
    if resolved in VECTOR_ENGINES:
        worlds = vectorized_sampler(graph, sampler, seed).mask_worlds(theta)
        engine_measure = EngineMeasure(measure, tier=resolved)
        return (
            primed_world_stream(worlds, engine_measure),
            engine_measure,
            engine_measure,
        )
    sampler = sampler or MonteCarloSampler(graph, seed)
    return sampler.worlds(theta), measure, None


def measure_core_k(measure: DensityMeasure) -> Optional[int]:
    """Return the k-core order that provably contains every densest set.

    * ``CliqueDensity(h)``: every h-clique (and hence every clique-densest
      set, whose nodes each sit in an h-clique *within the set*) survives
      (h-1)-core peeling;
    * ``PatternDensity(psi)``: every instance induces minimum degree
      >= delta_min(psi) on its own nodes, so it survives
      delta_min(psi)-core peeling;
    * anything else: ``None`` (no safe pre-filter known).

    Densities of subsets of the core are unchanged (the core is induced),
    so enumerating densest subgraphs over the filtered world returns
    exactly the full world's family.
    """
    if type(measure) is CliqueDensity:
        return measure.h - 1
    if type(measure) is PatternDensity:
        pattern_graph = measure.pattern.graph()
        return min(pattern_graph.degree(node) for node in pattern_graph)
    return None


class EngineMeasure(DensityMeasure):
    """Adapter measure answering :class:`MaskWorld` queries.

    Edge-density queries run array-native end to end: a bucketed
    Charikar peel bounds the density, a mask k-core shrink drops the
    sparse periphery, and :func:`prepare_from_bound_csr` finishes
    exactly on the CSR substrate (per-component Dinkelbach flows, tree
    components in closed form) -- the sampled world is never
    materialised.  Clique/pattern-density queries pre-filter the mask to
    the core guaranteed to contain every densest set
    (:func:`measure_core_k`) before materialising only that shrunken
    world for the exact per-world machinery.  All other measures (and
    the tie-breaking-sensitive ``one_densest``) delegate to the wrapped
    measure on the fully materialised world, which is byte-identical to
    the world the python engine would have sampled.

    ``replayed_worlds`` counts the worlds whose (possibly) truncated
    enumeration was replayed through the pure-Python path to keep the
    ``per_world_limit`` subset byte-identical across engines.

    ``tier`` selects the implementation of the two per-world hot loops:
    ``"numpy"`` (always available) or ``"jit"`` (numba-compiled when
    installed; see :mod:`repro.engine.jit` -- activated per call via a
    context variable, so concurrent queries can run different tiers).
    ``stage_seconds`` splits the evaluation wall clock into the
    *sampling* (upstream world production), *bound* (peel bounds +
    k-core shrink, batched or per world) and *exact* (Dinkelbach flows,
    residual condensation, enumeration) stages; ``worlds_primed`` /
    ``worlds_filtered`` count worlds served by the batched pre-pass and
    worlds dismissed as edgeless before any exact work.
    """

    def __init__(self, inner: DensityMeasure, tier: str = "numpy") -> None:
        if tier not in ("numpy", "vectorized", "jit"):
            raise ValueError(f"unknown engine tier {tier!r}")
        self.inner = inner
        self.name = inner.name
        self._fast = type(inner) is EdgeDensity
        self._core_k = measure_core_k(inner)
        self._jit = tier == "jit"
        self.replayed_worlds = 0
        self.worlds_primed = 0
        self.worlds_filtered = 0
        self.stage_seconds = {"sampling": 0.0, "bound": 0.0, "exact": 0.0}

    def _tier(self):
        """Context manager activating this measure's hot-loop tier."""
        return use_jit(True) if self._jit else nullcontext()

    def stage_stats(self) -> dict:
        """Per-stage evaluation split for session/serve bookkeeping.

        ``sampling`` / ``bound`` / ``exact`` are wall-clock seconds
        (world production, cheap filtering stages, exact solve);
        ``primed`` / ``filtered`` count worlds served by the batched
        pre-pass and worlds dismissed as edgeless.
        """
        return {
            "sampling": self.stage_seconds["sampling"],
            "bound": self.stage_seconds["bound"],
            "exact": self.stage_seconds["exact"],
            "primed": self.worlds_primed,
            "filtered": self.worlds_filtered,
        }

    # ------------------------------------------------------------------
    # batched pre-pass (chunk-at-a-time cheap stages)
    # ------------------------------------------------------------------
    def prime_batch(self, worlds: List[MaskWorld]) -> None:
        """Run the cheap filtering stages for a chunk of worlds at once.

        Edge-density measures get their bucketed peel bound and
        ceil(bound)-core masks (lockstep across the chunk:
        :func:`repro.engine.kernels.batch_peel_bounds` +
        :func:`repro.engine.kernels.batch_k_core_alive` with per-world
        ``k``); clique/pattern measures get their fixed
        :func:`measure_core_k` core masks.  Results land in each world's
        ``prepped`` slot, which :meth:`_prepared` / ``_filtered_world``
        consume instead of re-deriving them one world at a time.  The
        batched peel removes whole minimum-degree buckets per round, so
        its bound can differ from the sequential peel's -- both are
        achieved densities, and :func:`prepare_from_bound_csr` results
        are bound-independent, so every estimate stays byte-identical.
        """
        if not worlds:
            return
        indexed = worlds[0].indexed
        worlds = [w for w in worlds if w.indexed is indexed]
        masks = np.stack([w.mask for w in worlds])
        if self._fast:
            nums, dens = batch_peel_bounds(indexed, masks)
            cores = -(-nums // dens)  # ceil; edgeless rows give k = 0
            node_alive, edge_alive = batch_k_core_alive(
                indexed, masks, cores
            )
            for i, world in enumerate(worlds):
                if nums[i] <= 0:
                    world.prepped = (0, 1, None, None)
                elif edge_alive[i].any():
                    world.prepped = (
                        int(nums[i]), int(dens[i]),
                        node_alive[i], edge_alive[i],
                    )
                else:  # pragma: no cover - see prepare_from_bound
                    world.prepped = (
                        int(nums[i]), int(dens[i]),
                        np.ones(indexed.n, dtype=bool), world.mask,
                    )
        elif self._core_k is not None:
            node_alive, edge_alive = batch_k_core_alive(
                indexed, masks, self._core_k
            )
            for i, world in enumerate(worlds):
                world.prepped = (node_alive[i], edge_alive[i])
        else:
            return
        self.worlds_primed += len(worlds)

    # ------------------------------------------------------------------
    # mask-native edge-density pipeline
    # ------------------------------------------------------------------
    def _prepared(self, world: MaskWorld) -> Optional[_Prepared]:
        """Exact residual structure of a mask world, or None if edgeless.

        Fully array-native: the world never leaves the CSR/bitmask
        substrate (no :class:`Graph`, no object flow network) -- the
        bucketed Charikar peel bound, the k-core shrink, the Dinkelbach
        flows and the residual condensation all run on index arrays, and
        node labels only reappear in the returned structure's frozensets.

        A world primed by the batched pre-pass (``world.prepped`` set by
        :meth:`prime_batch`) skips straight to the exact stage on its
        precomputed bound and core masks; only unprimed worlds pay the
        per-world bound stage here.
        """
        indexed = world.indexed
        primed = world.prepped if self._fast else None
        if primed is not None:
            num, den, node_alive, edge_alive = primed
            if num <= 0:
                self.worlds_filtered += 1
                return None
        else:
            if not world.mask.any():
                self.worlds_filtered += 1
                return None
            started = perf_counter()
            view = world.view()
            indptr, neighbors = view.csr()
            with self._tier():
                _order, _edges, num, den, _size, _degen = _peel_arrays(
                    view.n, indptr, neighbors
                )
            if num <= 0:  # pragma: no cover - edges imply a positive bound
                self.stage_seconds["bound"] += perf_counter() - started
                self.worlds_filtered += 1
                return None
            k = -(-num // den)
            node_alive, edge_alive = k_core_alive(indexed, world.mask, k)
            if not edge_alive.any():  # pragma: no cover - see
                # prepare_from_bound
                node_alive = np.ones(indexed.n, dtype=bool)
                edge_alive = world.mask
            self.stage_seconds["bound"] += perf_counter() - started
        started = perf_counter()
        core = SubWorldView(indexed, edge_alive, node_alive)
        with self._tier():
            prepared = prepare_from_bound_csr(core, Fraction(num, den))
        self.stage_seconds["exact"] += perf_counter() - started
        return prepared

    # ------------------------------------------------------------------
    # clique/pattern pre-filtering
    # ------------------------------------------------------------------
    def _filtered_world(self, world: MaskWorld) -> Graph:
        """Materialise only the core that can contain densest sets."""
        primed = world.prepped
        if primed is not None and len(primed) == 2:
            node_alive, edge_alive = primed
        else:
            started = perf_counter()
            node_alive, edge_alive = k_core_alive(
                world.indexed, world.mask, self._core_k
            )
            self.stage_seconds["bound"] += perf_counter() - started
        return SubWorldView(world.indexed, edge_alive, node_alive).materialize()

    def all_densest(
        self, world: MaskWorld, limit: Optional[int] = None
    ) -> List[NodeSet]:
        if self._fast:
            prepared = self._prepared(world)
            if prepared is None or prepared.structure is None:
                return []
            densest = list(
                enumerate_independent_sets(prepared.structure, limit)
            )
        elif self._core_k is not None:
            densest = self.inner.all_densest(self._filtered_world(world), limit)
        else:
            return self.inner.all_densest(world.to_graph(), limit)
        if limit is not None and len(densest) >= limit:
            # enumeration (possibly) truncated: within-world order is not
            # part of the fast paths' contract, so replay the python path
            # on the identical materialised world to keep the *truncated
            # subset* byte-identical across engines
            self.replayed_worlds += 1
            return self.inner.all_densest(world.to_graph(), limit)
        return densest

    def one_densest(self, world: MaskWorld) -> Optional[NodeSet]:
        # tie-breaking must match the python engine's binary search, so
        # this always runs on the materialised (identical) world
        return self.inner.one_densest(world.to_graph())

    def maximum_sized_densest(self, world: MaskWorld) -> Optional[NodeSet]:
        if self._fast:
            prepared = self._prepared(world)
            if prepared is None or prepared.density <= 0:
                return None
            return prepared.maximal_nodes
        if self._core_k is not None:
            # the maximal densest set (a maximal min-cut side) is unique,
            # and the filtered core preserves the whole densest family
            return self.inner.maximum_sized_densest(self._filtered_world(world))
        return self.inner.maximum_sized_densest(world.to_graph())

    def density(self, world: MaskWorld, nodes) -> Fraction:
        if self._fast:
            # induced edge density straight off the mask: count alive
            # edges with both endpoints in `nodes` (exact, label-free)
            indexed = world.indexed
            node_list = [
                n for n in dict.fromkeys(nodes) if n in indexed.node_index
            ]
            if not node_list:
                return Fraction(0)
            member = np.zeros(indexed.n, dtype=bool)
            member[[indexed.node_index[node] for node in node_list]] = True
            inside = (
                world.mask
                & member[indexed.edge_u]
                & member[indexed.edge_v]
            )
            return Fraction(int(inside.sum()), len(node_list))
        return self.inner.density(world.to_graph(), nodes)

    def __repr__(self) -> str:
        return f"EngineMeasure({self.inner!r})"
