"""Enumerating *all* edge-densest subgraphs (Chang & Qiao [46]).

Line 5 of Algorithm 1 needs every node set inducing a densest subgraph in a
sampled possible world.  The pipeline (Example 4):

1. shrink to the ceil(rho~)-core (rho~ from Charikar peeling);
2. compute the exact optimum rho*_e with Goldberg's algorithm;
3. rebuild the flow network at exactly ``alpha = rho*_e`` (capacities scaled
   to integers) and compute a maximum flow -- its value is exactly ``2 m q``;
4. condense the residual graph into SCCs, drop the source/sink components,
   and enumerate independent component sets (Algorithm 3).

The maximum-sized densest subgraph (Algorithm 5, line 4) is the maximal
min-cut source side: the graph nodes that cannot reach the sink in the
residual graph; by [59] it equals the union of all densest subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Iterator, List, Optional, Tuple

from ..flow.maxflow import (
    max_flow,
    min_cut_maximal_source_side,
    min_cut_source_side,
)
from ..flow.network import FlowNetwork
from ..graph.graph import Graph, Node
from .component_enum import (
    ComponentStructure,
    build_component_structure,
    count_independent_sets,
    enumerate_independent_sets,
)
from .goldberg import SINK, SOURCE, build_edge_density_network, densest_subgraph
from .kcore import k_core


@dataclass
class _Prepared:
    """Residual structure of the edge-density network at alpha = rho*."""

    density: Fraction
    structure: Optional[ComponentStructure]
    maximal_nodes: FrozenSet[Node]


def _finalise(
    core: Graph, density: Fraction, network: Optional[FlowNetwork] = None
) -> _Prepared:
    """Residual component structure + maximal min-cut side at alpha = rho*.

    ``core`` must contain every densest subgraph and ``density`` must be
    the exact optimum.  ``network`` may carry an already max-flowed
    Goldberg network at that alpha (its flow is reused); otherwise the
    flow is computed here and checked against ``2 m q``.
    """
    if network is None:
        network = build_edge_density_network(core, density)
        value = max_flow(network, SOURCE, SINK)
        expected = 2 * core.number_of_edges() * density.denominator
        if value != expected:  # pragma: no cover - guarded by exact rho*
            raise AssertionError(
                f"max flow {value} != 2 m q = {expected}; rho* not exact?"
            )
    structure = build_component_structure(
        network, SOURCE, SINK, is_graph_node=lambda label: label in core
    )
    maximal = frozenset(
        label
        for label in min_cut_maximal_source_side(network, SINK)
        if label in core
    )
    return _Prepared(density, structure, maximal)


def _prepare(graph: Graph) -> _Prepared:
    if graph.number_of_edges() == 0:
        return _Prepared(Fraction(0), None, frozenset())
    exact = densest_subgraph(graph)
    ceil_density = -(-exact.density.numerator // exact.density.denominator)
    core = k_core(graph, ceil_density)
    if core.number_of_edges() == 0:
        core = graph
    return _finalise(core, exact.density)


def prepare_from_bound(core: Graph, lower_bound: Fraction) -> _Prepared:
    """Residual structure of a world given a pre-shrunk core and a bound.

    Fast-path twin of :func:`_prepare` used by the vectorised engine
    (:mod:`repro.engine`).  ``core`` must be the ``ceil(lower_bound)``-core
    of some possible world ``W`` and ``lower_bound`` an edge density
    *achieved* by an induced subgraph of ``W`` (so ``core`` contains every
    densest subgraph of ``W``).  Returns exactly what ``_prepare(W)``
    would, but replaces Goldberg's ~``log(n^3)``-step binary search with
    Dinkelbach iteration: run one max flow at the currently achieved
    density; either it certifies optimality, or its min cut is a strictly
    denser subgraph to iterate from.  Achieved densities form a finite
    increasing chain, so this terminates -- in practice within 2-4 flows.

    The candidate sets, the exact density, and the maximum-sized densest
    subgraph are identical to the reference pipeline's; only the *order*
    in which :func:`enumerate_all_densest_subgraphs` emits candidates may
    differ, which is observable solely under a truncating ``limit``.
    """
    if core.number_of_edges() == 0:
        return _Prepared(Fraction(0), None, frozenset())
    alpha = Fraction(lower_bound)
    while True:
        network = build_edge_density_network(core, alpha)
        target = 2 * core.number_of_edges() * alpha.denominator
        value = max_flow(network, SOURCE, SINK)
        if value >= target:
            break
        side = set(min_cut_source_side(network, SOURCE))
        witness = frozenset(node for node in core if node in side)
        alpha = Fraction(
            core.subgraph(witness).number_of_edges(), len(witness)
        )
    # alpha is now the exact rho*; rebuild on the tighter ceil(rho*)-core
    # when it differs from `core` (mirroring _prepare), otherwise reuse
    # the certifying network -- it is already max-flowed at alpha.
    ceil_density = -(-alpha.numerator // alpha.denominator)
    shrunken = k_core(core, ceil_density)
    if shrunken.number_of_edges() == 0:  # pragma: no cover - see _prepare
        shrunken = core
    if shrunken.number_of_nodes() != core.number_of_nodes():
        return _finalise(shrunken, alpha)
    return _finalise(core, alpha, network=network)


def enumerate_all_densest_subgraphs(
    graph: Graph, limit: Optional[int] = None
) -> Iterator[FrozenSet[Node]]:
    """Yield the node set of every edge-densest subgraph of ``graph``.

    Each is yielded exactly once (Corollary 2 / [46]).  On an edgeless
    graph nothing is yielded (the paper's convention for empty worlds).
    ``limit`` truncates the enumeration.
    """
    prepared = _prepare(graph)
    if prepared.structure is None:
        return
    yield from enumerate_independent_sets(prepared.structure, limit)


def all_densest_subgraphs(
    graph: Graph, limit: Optional[int] = None
) -> List[FrozenSet[Node]]:
    """Return the list of all edge-densest subgraphs (see enumerate version)."""
    return list(enumerate_all_densest_subgraphs(graph, limit))


def count_densest_subgraphs(graph: Graph) -> int:
    """Return the number of edge-densest subgraphs (Table VIII statistic)."""
    prepared = _prepare(graph)
    if prepared.structure is None:
        return 0
    return count_independent_sets(prepared.structure)


def maximum_sized_densest_subgraph(
    graph: Graph,
) -> Tuple[Fraction, FrozenSet[Node]]:
    """Return ``(rho*_e, nodes)`` of the maximum-sized densest subgraph.

    Equals the union of the node sets of all densest subgraphs ([59]);
    computed directly from the maximal min-cut source side without
    enumerating (Algorithm 5 line 4 for edge density).
    """
    prepared = _prepare(graph)
    return prepared.density, prepared.maximal_nodes
