"""Differential gate for the optional JIT tier (:mod:`repro.engine.jit`).

The tier ports the two irreducible per-world hot loops -- the bucketed
Charikar peel and the FIFO push-relabel phase-1 discharge -- to flat
``int64`` arrays in nopython-compatible style.  numba is optional: when
absent the ports run interpreted, and these tests force the tier on via
:func:`use_jit` to pin the ports against the classic list-based
implementations regardless -- correctness never depends on having numba
installed.
"""

from __future__ import annotations

import random
from fractions import Fraction

import numpy as np
import pytest

from repro.core.measures import EdgeDensity
from repro.core.mpds import top_k_mpds
from repro.core.nds import top_k_nds
from repro.dense.peeling import _peel_arrays
from repro.engine import jit
from repro.engine.estimators import resolve_engine
from repro.engine.indexed import IndexedGraph, MaskWorld
from repro.flow.csr import build_edge_density_network_csr
from repro.flow.push_relabel import csr_max_preflow_min_cut
from repro.graph.uncertain import UncertainGraph

from .conftest import random_uncertain_graph


def random_world(rng: random.Random, n: int, p: float, keep: float):
    graph = random_uncertain_graph(rng, n, p, low=0.2, high=0.95)
    indexed = IndexedGraph.from_uncertain(graph)
    mask = np.array(
        [rng.random() < keep for _ in range(indexed.m)], dtype=bool
    )
    return MaskWorld(indexed, mask)


class TestTierActivation:
    def test_default_off(self):
        assert not jit.jit_active()

    def test_context_manager_scopes_and_resets(self):
        with jit.use_jit(True):
            assert jit.jit_active()
            with jit.use_jit(False):
                assert not jit.jit_active()
            assert jit.jit_active()
        assert not jit.jit_active()

    def test_resolve_engine_jit_fallback(self):
        resolved = resolve_engine("jit", None, EdgeDensity())
        assert resolved == ("jit" if jit.HAVE_NUMBA else "vectorized")

    def test_resolve_engine_auto_upgrade_tracks_numba(self):
        resolved = resolve_engine("auto", None, EdgeDensity())
        assert resolved == ("jit" if jit.HAVE_NUMBA else "vectorized")

    def test_resolve_engine_jit_requires_replayable_sampler(self):
        class CustomSampler:
            pass

        with pytest.raises(ValueError, match="MC, LP and RSS"):
            resolve_engine("jit", CustomSampler(), EdgeDensity())

    def test_vectorized_never_upgrades(self):
        assert resolve_engine("vectorized", None, EdgeDensity()) == (
            "vectorized"
        )


class TestPeelPort:
    """peel_csr must reproduce _peel_arrays' exact removal order."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("density", [0.15, 0.4, 0.7])
    def test_identical_on_random_views(self, seed, density):
        rng = random.Random(seed)
        for _ in range(8):
            world = random_world(rng, rng.randint(2, 14), density, 0.75)
            if not world.mask.any():
                continue
            view = world.view()
            indptr, neighbors = view.csr()
            expected = _peel_arrays(view.n, indptr, neighbors)
            order, edges_after, num, den, size, degen = jit.peel_csr(
                view.n,
                np.ascontiguousarray(indptr, dtype=np.int64),
                np.ascontiguousarray(neighbors, dtype=np.int64),
            )
            assert list(order) == expected[0]
            assert list(edges_after) == expected[1]
            assert (num, den, size, degen) == expected[2:]

    def test_dispatch_through_tier(self):
        rng = random.Random(3)
        world = random_world(rng, 10, 0.5, 0.9)
        view = world.view()
        indptr, neighbors = view.csr()
        plain = _peel_arrays(view.n, indptr, neighbors)
        with jit.use_jit(True):
            tiered = _peel_arrays(view.n, indptr, neighbors)
        assert tiered == plain

    def test_singleton(self):
        order, edges_after, num, den, size, degen = jit.peel_csr(
            1, np.array([0, 0], dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert list(order) == [0]
        assert list(edges_after) == []
        assert (num, den, size, degen) == (0, 1, 1, 0)


class TestPreflowPort:
    """phase-1 discharge port vs the classic list-based implementation."""

    def networks_for(self, view, alpha):
        build = lambda: build_edge_density_network_csr(  # noqa: E731
            view.n, view.edge_lu, view.edge_lv, view.degrees(), alpha
        )
        return build(), build()

    @pytest.mark.parametrize("seed", [0, 5, 23])
    def test_value_and_cut_certificate(self, seed):
        rng = random.Random(seed)
        for _ in range(6):
            world = random_world(rng, rng.randint(3, 12), 0.5, 0.85)
            if not world.mask.any():
                continue
            view = world.view()
            alpha = Fraction(view.m, view.n)
            classic_net, jit_net = self.networks_for(view, alpha)
            value, _cut = csr_max_preflow_min_cut(classic_net)
            result = jit.preflow_phase1(jit_net)
            assert result is not None
            jit_value, jit_cut = result
            assert jit_value == value
            # the height cut must be a genuine min cut: no residual arc
            # may cross from the source side to the sink side
            for node in range(jit_net.num_nodes):
                if not jit_cut[node]:
                    continue
                lo, hi = jit_net.indptr[node], jit_net.indptr[node + 1]
                for e in range(lo, hi):
                    if not jit_cut[jit_net.to[e]]:
                        assert jit_net.cap[e] == 0

    def test_dispatch_through_tier_matches_value(self):
        rng = random.Random(11)
        world = random_world(rng, 10, 0.55, 0.9)
        view = world.view()
        alpha = Fraction(view.m, view.n)
        classic_net, tier_net = self.networks_for(view, alpha)
        value, _ = csr_max_preflow_min_cut(classic_net)
        with jit.use_jit(True):
            tier_value, _ = csr_max_preflow_min_cut(tier_net)
        assert tier_value == value

    def test_overflow_falls_back_to_python(self):
        rng = random.Random(2)
        world = random_world(rng, 6, 0.6, 1.0)
        view = world.view()
        alpha = Fraction(view.m, view.n)
        classic_net, huge_net = self.networks_for(view, alpha)
        huge_net.cap[0] = 1 << 70  # beyond int64: port must decline
        assert jit.preflow_phase1(huge_net) is None
        classic_net.cap[0] = 1 << 70
        with jit.use_jit(True):
            tiered = csr_max_preflow_min_cut(classic_net)
        fresh_a, fresh_b = self.networks_for(view, alpha)
        fresh_a.cap[0] = 1 << 70
        plain = csr_max_preflow_min_cut(fresh_a)
        assert tiered == plain


class TestEndToEndUnderJit:
    """Whole estimates with the tier forced on must be byte-identical."""

    def graph(self):
        return random_uncertain_graph(
            random.Random(20230613), 9, 0.45, low=0.2, high=0.95
        )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_mpds_identical(self, seed):
        graph = self.graph()
        python = top_k_mpds(graph, k=3, theta=30, seed=seed, engine="python")
        with jit.use_jit(True):
            tiered = top_k_mpds(
                graph, k=3, theta=30, seed=seed, engine="vectorized"
            )
        assert python.candidates == tiered.candidates
        assert python.top == tiered.top
        assert python.densest_counts == tiered.densest_counts

    def test_nds_identical(self):
        graph = self.graph()
        python = top_k_nds(graph, k=3, theta=30, seed=5, engine="python")
        with jit.use_jit(True):
            tiered = top_k_nds(
                graph, k=3, theta=30, seed=5, engine="vectorized"
            )
        assert python.top == tiered.top
        assert python.transactions == tiered.transactions

    def test_truncation_replay_identical(self):
        graph = UncertainGraph.from_weighted_edges(
            [("a", "b", 1.0), ("c", "d", 1.0), ("a", "c", 0.5)]
        )
        python = top_k_mpds(
            graph, k=5, theta=16, seed=1, per_world_limit=2, engine="python"
        )
        with jit.use_jit(True):
            tiered = top_k_mpds(
                graph, k=5, theta=16, seed=1, per_world_limit=2,
                engine="vectorized",
            )
        assert python.candidates == tiered.candidates
        assert python.densest_counts == tiered.densest_counts
        assert tiered.replayed_worlds > 0

    def test_parametric_chain_under_jit(self):
        from repro.flow.parametric import parametric_dinkelbach

        rng = random.Random(17)
        for _ in range(5):
            world = random_world(rng, rng.randint(3, 10), 0.6, 1.0)
            view = world.view()
            if view.m == 0:
                continue
            # the per-component solver requires a connected view; skip
            # the rare disconnected draw instead of decomposing here
            try:
                plain = parametric_dinkelbach(view, Fraction(view.m, view.n))
            except AssertionError:
                continue  # disconnected: whole-graph density not achieved
            with jit.use_jit(True):
                tiered = parametric_dinkelbach(
                    view, Fraction(view.m, view.n)
                )
            assert tiered[0] == plain[0]
            assert frozenset(tiered[2].labels()) == frozenset(
                plain[2].labels()
            )


class TestEngineJitName:
    """engine='jit' must flow end to end even without numba."""

    def test_top_k_accepts_jit(self):
        graph = random_uncertain_graph(
            random.Random(1), 8, 0.5, low=0.3, high=0.9
        )
        python = top_k_mpds(graph, k=2, theta=16, seed=2, engine="python")
        via_jit = top_k_mpds(graph, k=2, theta=16, seed=2, engine="jit")
        assert python.candidates == via_jit.candidates
        assert python.top == via_jit.top

    def test_session_accepts_jit(self):
        from repro.session import Session

        graph = random_uncertain_graph(
            random.Random(2), 8, 0.5, low=0.3, high=0.9
        )
        session = Session(graph, engine="jit")
        result = session.query().sampler(theta=12, seed=4).top_k(2).mpds()
        control = top_k_mpds(graph, k=2, theta=12, seed=4, engine="python")
        assert result.candidates == control.candidates

    def test_workers_accept_jit(self):
        from repro.session import Session

        graph = random_uncertain_graph(
            random.Random(3), 9, 0.5, low=0.3, high=0.9
        )
        session = Session(graph, engine="jit", workers=2)
        result = session.query().sampler(theta=16, seed=6).top_k(2).mpds()
        control = top_k_mpds(graph, k=2, theta=16, seed=6, engine="python")
        assert result.candidates == control.candidates
        assert result.top == control.top
