"""Flow networks with exact capacities and full residual access.

The densest-subgraph machinery (Goldberg's algorithm [1], the all-densest
enumeration of Chang & Qiao [46], and the paper's Algorithms 2/4) needs more
than a max-flow *value*: it inspects the residual graph under a maximum flow
(saturated arcs, reachability, strongly connected components).  This module
therefore stores arcs explicitly and exposes the residual structure.

Capacities may be ``int`` or ``fractions.Fraction`` -- the algorithms only
use comparison, addition and subtraction, so exact rational arithmetic works
throughout.  Exactness matters: "zero residual capacity" must be decided
exactly for the SCC enumeration to be correct (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Tuple, Union

Capacity = Union[int, "Fraction"]  # noqa: F821 - Fraction accepted duck-typed
NetNode = Hashable


class Arc:
    """A directed arc with a capacity, current flow, and its reverse twin."""

    __slots__ = ("tail", "head", "capacity", "flow", "reverse")

    def __init__(self, tail: int, head: int, capacity: Capacity) -> None:
        self.tail = tail
        self.head = head
        self.capacity = capacity
        self.flow: Capacity = 0
        self.reverse: "Arc" = None  # type: ignore[assignment]

    def residual(self) -> Capacity:
        """Return the residual capacity ``capacity - flow``."""
        return self.capacity - self.flow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Arc({self.tail}->{self.head}, cap={self.capacity}, flow={self.flow})"


class FlowNetwork:
    """A directed flow network over arbitrary hashable node labels.

    ``add_arc(u, v, cap)`` creates the arc and its zero-capacity residual
    twin.  ``add_arc_pair`` creates two opposite arcs with independent
    capacities (the paper's constructions, e.g. Algorithm 6 lines 3-4, list
    both directions explicitly; a reverse capacity of 0 is exactly the
    residual twin).
    """

    def __init__(self) -> None:
        self._index: Dict[NetNode, int] = {}
        self._labels: List[NetNode] = []
        self._adjacency: List[List[Arc]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: NetNode) -> int:
        """Register ``label`` (idempotent); return its internal index."""
        if label in self._index:
            return self._index[label]
        index = len(self._labels)
        self._index[label] = index
        self._labels.append(label)
        self._adjacency.append([])
        return index

    def add_arc(self, tail: NetNode, head: NetNode, capacity: Capacity) -> Arc:
        """Add a directed arc ``tail -> head`` (reverse twin capacity 0)."""
        return self.add_arc_pair(tail, head, capacity, 0)

    def add_arc_pair(
        self,
        tail: NetNode,
        head: NetNode,
        capacity: Capacity,
        reverse_capacity: Capacity,
    ) -> Arc:
        """Add opposite arcs ``tail -> head`` / ``head -> tail``.

        Returns the forward arc; its ``reverse`` attribute is the other one.
        """
        if capacity < 0 or reverse_capacity < 0:
            raise ValueError("capacities must be non-negative")
        t = self.add_node(tail)
        h = self.add_node(head)
        forward = Arc(t, h, capacity)
        backward = Arc(h, t, reverse_capacity)
        forward.reverse = backward
        backward.reverse = forward
        self._adjacency[t].append(forward)
        self._adjacency[h].append(backward)
        return forward

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, label: NetNode) -> bool:
        return label in self._index

    def number_of_nodes(self) -> int:
        """Return the number of registered nodes."""
        return len(self._labels)

    def number_of_arcs(self) -> int:
        """Return the number of arcs (including residual twins)."""
        return sum(len(arcs) for arcs in self._adjacency)

    def index_of(self, label: NetNode) -> int:
        """Return the internal index of ``label``."""
        return self._index[label]

    def label_of(self, index: int) -> NetNode:
        """Return the label at internal ``index``."""
        return self._labels[index]

    def labels(self) -> List[NetNode]:
        """Return all node labels in index order."""
        return list(self._labels)

    def arcs_from(self, index: int) -> List[Arc]:
        """Return the (mutable) arc list out of internal node ``index``."""
        return self._adjacency[index]

    def arcs(self) -> Iterator[Arc]:
        """Iterate over every arc (forward and residual twins)."""
        for arc_list in self._adjacency:
            yield from arc_list

    def reset_flow(self) -> None:
        """Zero out all flows."""
        for arc in self.arcs():
            arc.flow = 0

    # ------------------------------------------------------------------
    # residual structure (valid after a max-flow computation)
    # ------------------------------------------------------------------
    def residual_successors(self, index: int) -> Iterator[int]:
        """Yield nodes reachable by one positive-residual arc from ``index``."""
        for arc in self._adjacency[index]:
            if arc.residual() > 0:
                yield arc.head

    def residual_edges(self) -> Iterator[Tuple[NetNode, NetNode, Capacity]]:
        """Yield ``(tail, head, residual)`` for arcs with positive residual."""
        for arc in self.arcs():
            residual = arc.residual()
            if residual > 0:
                yield self._labels[arc.tail], self._labels[arc.head], residual

    def residual_reachable_from(self, source: NetNode) -> List[NetNode]:
        """Return labels reachable from ``source`` in the residual graph."""
        start = self._index[source]
        seen = [False] * len(self._labels)
        seen[start] = True
        stack = [start]
        while stack:
            node = stack.pop()
            for arc in self._adjacency[node]:
                if arc.residual() > 0 and not seen[arc.head]:
                    seen[arc.head] = True
                    stack.append(arc.head)
        return [self._labels[i] for i, flag in enumerate(seen) if flag]

    def residual_coreachable_to(self, sink: NetNode) -> List[NetNode]:
        """Return labels that can reach ``sink`` in the residual graph.

        Uses the reverse residual relation: ``u`` can reach ``v`` through an
        arc iff that arc has positive residual; we walk arcs backwards via
        the stored twins.
        """
        target = self._index[sink]
        seen = [False] * len(self._labels)
        seen[target] = True
        stack = [target]
        while stack:
            node = stack.pop()
            # arc.reverse runs node -> arc.head's tail? walk incoming arcs:
            # incoming arcs of `node` are exactly the reverses of arcs in
            # adjacency[node]; arc t->node has positive residual iff
            # arc.reverse (stored at node) has residual() > 0 on its twin.
            for arc in self._adjacency[node]:
                twin = arc.reverse
                if twin.residual() > 0 and not seen[twin.tail]:
                    seen[twin.tail] = True
                    stack.append(twin.tail)
        return [self._labels[i] for i, flag in enumerate(seen) if flag]
