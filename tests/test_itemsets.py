"""Tests for TFP-style top-k closed frequent itemset mining."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itemsets.tfp import (
    all_closed_itemsets,
    naive_closed_itemsets,
    top_k_closed_itemsets,
)


class TestBasics:
    def test_empty_database(self):
        assert top_k_closed_itemsets([], 3) == []

    def test_single_transaction(self):
        result = top_k_closed_itemsets([["a", "b"]], 5)
        assert len(result) == 1
        assert result[0].items == frozenset({"a", "b"})
        assert result[0].support == 1.0

    def test_textbook_example(self):
        transactions = [
            ["a", "b", "c"],
            ["a", "b"],
            ["a", "c"],
            ["a"],
        ]
        closed = {c.items: c.support for c in all_closed_itemsets(transactions)}
        assert closed == {
            frozenset({"a"}): 4.0,
            frozenset({"a", "b"}): 2.0,
            frozenset({"a", "c"}): 2.0,
            frozenset({"a", "b", "c"}): 1.0,
        }

    def test_min_length_filter(self):
        transactions = [["a", "b", "c"], ["a", "b"], ["a"]]
        result = all_closed_itemsets(transactions, min_length=2)
        assert all(len(c.items) >= 2 for c in result)
        assert frozenset({"a", "b"}) in {c.items for c in result}

    def test_top_k_ordering(self):
        transactions = [["a"], ["a"], ["a", "b"], ["b", "c"]]
        result = top_k_closed_itemsets(transactions, 2)
        supports = [c.support for c in result]
        assert supports == sorted(supports, reverse=True)
        assert result[0].items == frozenset({"a"})

    def test_weighted_supports(self):
        transactions = [["a", "b"], ["a"]]
        weights = [0.25, 0.5]
        result = all_closed_itemsets(transactions, weights=weights)
        by_items = {c.items: c.support for c in result}
        assert by_items[frozenset({"a"})] == pytest.approx(0.75)
        assert by_items[frozenset({"a", "b"})] == pytest.approx(0.25)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            top_k_closed_itemsets([["a"]], 0)
        with pytest.raises(ValueError):
            top_k_closed_itemsets([["a"]], 1, min_length=0)


class TestAgainstOracle:
    def test_random_databases(self, rng):
        for trial in range(60):
            n_items = rng.randint(2, 7)
            transactions = [
                rng.sample(range(n_items), rng.randint(1, n_items))
                for _ in range(rng.randint(1, 10))
            ]
            for min_length in (1, 2):
                oracle = {
                    (c.items, c.support)
                    for c in naive_closed_itemsets(transactions, min_length)
                }
                mined = {
                    (c.items, c.support)
                    for c in all_closed_itemsets(transactions, min_length)
                }
                assert mined == oracle, trial

    def test_top_k_supports_match_oracle(self, rng):
        for trial in range(30):
            n_items = rng.randint(2, 6)
            transactions = [
                rng.sample(range(n_items), rng.randint(1, n_items))
                for _ in range(rng.randint(2, 9))
            ]
            oracle = naive_closed_itemsets(transactions, 1)
            for k in (1, 2, 4):
                mined = top_k_closed_itemsets(transactions, k, 1)
                want = sorted((c.support for c in oracle), reverse=True)[:k]
                assert [c.support for c in mined] == want


class TestClosednessInvariants:
    @given(
        st.lists(
            st.lists(st.integers(0, 5), min_size=1, max_size=5),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_results_are_closed(self, transactions):
        """No returned itemset has a superset with equal support."""
        mined = all_closed_itemsets(transactions)
        by_items = {c.items: c.support for c in mined}
        counts: dict = {}
        for t in transactions:
            if t:
                key = frozenset(t)
                counts[key] = counts.get(key, 0) + 1
        all_items = {i for t in counts for i in t}
        for items, sup in by_items.items():
            for extra in all_items - items:
                superset_support = sum(
                    c for t, c in counts.items() if items | {extra} <= t
                )
                assert superset_support < sup

    @given(
        st.lists(
            st.lists(st.integers(0, 4), min_size=1, max_size=4),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_transaction_is_covered(self, transactions):
        """Each distinct transaction itself is a closed itemset."""
        mined = {c.items for c in all_closed_itemsets(transactions)}
        for transaction in transactions:
            if transaction:
                closure_members = [
                    c for c in mined if frozenset(transaction) <= c
                ]
                assert closure_members, transaction
