"""Serve-tier load bench: mixed warm/cold queries against a live daemon.

Boots a real :class:`repro.serve.ReproServer` (sockets, not stubs),
registers the G(n, p) bench graph of ``bench_engine.py``, and drives a
mixed workload from concurrent HTTP clients:

* **warm repeats** -- identical seeded sampler, varying ``k``, plus NDS
  and clique-measure variants over the *same* world store (the serving
  pattern the session caches exist for);
* **cold draws** -- distinct seeds, each sampled exactly once no matter
  how many clients race for it (single-flight admission).

Three things are **asserted**, not just reported:

* every response is byte-identical to the one-shot ``top_k_mpds`` /
  ``top_k_nds`` twin of its query (the serialization round-trips
  through real HTTP/JSON);
* the session draw counter equals the number of *distinct* seeded
  draws in the workload -- concurrent identical requests coalesced
  instead of resampling;
* every request returned HTTP 200.

The table (client-side p50/p99 latency split warm vs cold, the
server's own ``/stats`` histogram, and the session cache hit ledger)
is archived as ``benchmarks/results/bench_serve_load.txt`` on every
run (``python -m benchmarks.bench_serve_load [--tiny]``); CI boots the
daemon fresh and uploads the ``--tiny`` artifact on every push.
"""

from __future__ import annotations

import argparse
import json
import random
import threading
import time
import urllib.request

from repro.core.mpds import top_k_mpds
from repro.core.nds import top_k_nds
from repro.experiments.common import format_table
from repro.serve import ReproServer
from repro.specs import build_measure

from .bench_engine import _bench_graph
from .conftest import emit

#: full-scale workload (the committed artifact); the graph matches
#: ``bench_session.py`` -- the 500-node G(n, p) serving-bench topology
BENCH_N = 500
BENCH_EDGE_PROB = 0.01
BENCH_THETA = 96
BENCH_QUERIES = 240
BENCH_COLD_SEEDS = 12
BENCH_CLIENTS = 8

#: --tiny smoke scale (CI-friendly; seconds, not minutes)
TINY_N = 100
TINY_EDGE_PROB = 0.04
TINY_THETA = 24
TINY_QUERIES = 48
TINY_COLD_SEEDS = 4
TINY_CLIENTS = 4

WARM_SEED = 7
WARM_KS = (1, 2, 3, 5)


def _build_workload(theta: int, total: int, cold_seeds: int):
    """The mixed query list: ~90% warm traffic over one seeded store,
    plus ``cold_seeds`` distinct draws racing through admission."""
    bodies = []
    for seed in range(101, 101 + cold_seeds):
        bodies.append({
            "graph": "bench", "run": "mpds", "k": 2,
            "sampler": f"mc:theta={theta},seed={seed}",
        })
    warm_total = total - len(bodies)
    for i in range(warm_total):
        body = {
            "graph": "bench",
            "sampler": f"mc:theta={theta},seed={WARM_SEED}",
        }
        slot = i % 10
        if slot < 7:  # warm mpds k-variants
            body["run"] = "mpds"
            body["k"] = WARM_KS[i % len(WARM_KS)]
        elif slot < 9:  # warm nds over the same store
            body["run"] = "nds"
            body["k"] = 1 + (i % 2)
            body["min_size"] = 2
        else:  # warm clique measure, same store, re-evaluates once
            body["run"] = "mpds"
            body["k"] = 3
            body["measure"] = "clique:h=3"
        bodies.append(body)
    # deterministic interleave so clients race warm and cold together
    random.Random(2023).shuffle(bodies)
    return bodies


def _twin_key(body):
    return (
        body["run"], body["k"], body["sampler"],
        body.get("measure"), body.get("min_size"),
    )


def _one_shot_twin(graph, body, theta):
    """The legacy one-shot call this daemon response must equal."""
    seed = int(body["sampler"].rsplit("seed=", 1)[1])
    measure = build_measure(body.get("measure"))
    if body["run"] == "mpds":
        result = top_k_mpds(
            graph, k=body["k"], theta=theta, measure=measure, seed=seed
        )
    else:
        result = top_k_nds(
            graph, k=body["k"], min_size=body["min_size"], theta=theta,
            measure=measure, seed=seed,
        )
    return json.dumps(result.to_dict(), sort_keys=True)


def _post_query(url, body):
    request = urllib.request.Request(
        url + "/query", data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=300) as response:
        payload = json.loads(response.read())
        status = response.status
    return status, payload, (time.perf_counter() - start) * 1000.0


def _percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return ordered[rank]


def run_serve_load_benchmark(
    n: int = BENCH_N,
    edge_prob: float = BENCH_EDGE_PROB,
    theta: int = BENCH_THETA,
    total: int = BENCH_QUERIES,
    cold_seeds: int = BENCH_COLD_SEEDS,
    clients: int = BENCH_CLIENTS,
) -> dict:
    graph = _bench_graph(seed=2023, n=n, edge_prob=edge_prob)
    bodies = _build_workload(theta, total, cold_seeds)

    observations = []
    failures = []
    cursor = {"next": 0}
    lock = threading.Lock()

    with ReproServer(port=0) as server:
        server.register_graph("bench", graph=graph)
        url = server.url

        def client():
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(bodies):
                        return
                    cursor["next"] = index + 1
                body = bodies[index]
                try:
                    status, payload, elapsed_ms = _post_query(url, body)
                except Exception as exc:  # pragma: no cover - hard fail
                    with lock:
                        failures.append((body, repr(exc)))
                    return
                with lock:
                    observations.append(
                        (body, status, payload, elapsed_ms)
                    )

        started = time.perf_counter()
        threads = [
            threading.Thread(target=client, name=f"client-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started
        stats = server.stats_payload()

    assert not failures, f"client failures: {failures[:3]}"
    assert len(observations) == len(bodies)
    assert all(status == 200 for _, status, _, _ in observations)

    # -- byte-identity of every response against its one-shot twin ----
    twins = {}
    mismatches = 0
    for body, _status, payload, _elapsed in observations:
        key = _twin_key(body)
        if key not in twins:
            twins[key] = _one_shot_twin(graph, body, theta)
        wire = json.dumps(payload["result"], sort_keys=True)
        if wire != twins[key]:  # pragma: no cover - identity holds
            mismatches += 1
    assert mismatches == 0, f"{mismatches} responses diverged"

    # -- single-flight: distinct seeded draws, not distinct requests --
    session = stats["sessions"]["bench"]
    distinct_draws = 1 + cold_seeds  # the warm store + each cold seed
    assert session["stores_built"] == distinct_draws, (
        f"expected {distinct_draws} draws, sampled "
        f"{session['stores_built']} -- coalescing failed"
    )

    warm_ms = [
        elapsed for body, _s, payload, elapsed in observations
        if not payload["cold_draw"]
    ]
    cold_ms = [
        elapsed for body, _s, payload, elapsed in observations
        if payload["cold_draw"]
    ]
    server_hist = stats["latency_ms"]["POST /query"]
    seeded = session["stores_built"] + session["store_hits"] + \
        session["store_waits"]
    store_hit_rate = (
        (session["store_hits"] + session["store_waits"]) / seeded
    )
    eval_seen = session["eval_hits"] + session["eval_waits"]
    eval_hit_rate = eval_seen / max(session["queries"], 1)

    rows = [
        ["queries served", str(len(observations)), ""],
        ["clients", str(clients), "concurrent HTTP clients"],
        ["wall clock", f"{wall_s:.2f} s",
         f"{len(observations) / wall_s:.1f} qps"],
        ["warm p50 / p99",
         f"{_percentile(warm_ms, 0.50):.2f} / "
         f"{_percentile(warm_ms, 0.99):.2f} ms",
         f"{len(warm_ms)} responses"],
        ["cold p50 / p99",
         f"{_percentile(cold_ms, 0.50):.2f} / "
         f"{_percentile(cold_ms, 0.99):.2f} ms",
         f"{len(cold_ms)} responses"],
        ["server-side p50 / p99",
         f"{server_hist['p50_ms']:.2f} / {server_hist['p99_ms']:.2f} ms",
         "POST /query histogram"],
        ["world-store draws", str(session["stores_built"]),
         f"for {seeded} store lookups (single-flight)"],
        ["store cache hit rate", f"{store_hit_rate:.1%}",
         f"{session['store_hits']} hits + "
         f"{session['store_waits']} coalesced waits"],
        ["evaluation reuse rate", f"{eval_hit_rate:.1%}",
         f"{session['eval_hits']} hits + "
         f"{session['eval_waits']} coalesced waits"],
        ["byte-identity", "100%",
         f"{len(observations)} responses vs one-shot twins"],
    ]
    table = format_table(["Metric", "Value", "Detail"], rows)
    note = (
        f"n={n} p={edge_prob} theta={theta}; workload: "
        f"{len(warm_ms)} warm + {len(cold_ms)} cold queries over "
        f"{clients} clients against a live repro-serve daemon.\n"
        "asserted: every response byte-identical to its one-shot twin; "
        f"exactly {distinct_draws} draws for {seeded} store lookups\n"
        "(warm repeats that hit the evaluation cache never reach the\n"
        "store layer at all)."
    )
    return {
        "table": table + "\n" + note,
        "queries": len(observations),
        "store_hit_rate": store_hit_rate,
        "draws": session["stores_built"],
    }


def test_serve_load(benchmark):
    result = benchmark.pedantic(
        lambda: run_serve_load_benchmark(
            n=TINY_N, edge_prob=TINY_EDGE_PROB, theta=TINY_THETA,
            total=TINY_QUERIES, cold_seeds=TINY_COLD_SEEDS,
            clients=TINY_CLIENTS,
        ),
        rounds=1,
        iterations=1,
    )
    emit("bench_serve_load", result["table"])
    assert result["queries"] == TINY_QUERIES


def main(argv=None) -> int:
    """Standalone entry: ``python -m benchmarks.bench_serve_load``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-scale run (CI-friendly; seconds, not minutes)",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        result = run_serve_load_benchmark(
            n=TINY_N, edge_prob=TINY_EDGE_PROB, theta=TINY_THETA,
            total=TINY_QUERIES, cold_seeds=TINY_COLD_SEEDS,
            clients=TINY_CLIENTS,
        )
    else:
        result = run_serve_load_benchmark()
    emit("bench_serve_load", result["table"])
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
