"""Tests for the DensityMeasure abstraction and result containers."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.measures import CliqueDensity, EdgeDensity, PatternDensity
from repro.core.results import MPDSResult, NDSResult, ScoredNodeSet
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern

from .conftest import random_graph


class TestEdgeDensityMeasure:
    def test_density(self, triangle_graph):
        measure = EdgeDensity()
        assert measure.density(triangle_graph, [1, 2, 3]) == Fraction(1)
        assert measure.density(triangle_graph, []) == 0

    def test_one_densest_in_all(self, rng):
        measure = EdgeDensity()
        for _ in range(8):
            world = random_graph(rng, 8, 0.45)
            one = measure.one_densest(world)
            everything = measure.all_densest(world)
            if one is None:
                assert everything == []
            else:
                assert one in set(everything)

    def test_maximum_sized_contains_all(self, rng):
        measure = EdgeDensity()
        for _ in range(8):
            world = random_graph(rng, 8, 0.45)
            maximal = measure.maximum_sized_densest(world)
            for nodes in measure.all_densest(world):
                assert nodes <= maximal

    def test_empty_world(self):
        measure = EdgeDensity()
        world = Graph(nodes=[1, 2])
        assert measure.one_densest(world) is None
        assert measure.maximum_sized_densest(world) is None
        assert measure.all_densest(world) == []


class TestCliqueAndPatternMeasures:
    def test_clique_validation(self):
        with pytest.raises(ValueError):
            CliqueDensity(1)

    def test_names(self):
        assert EdgeDensity().name == "edge"
        assert CliqueDensity(4).name == "4-clique"
        assert PatternDensity(Pattern.diamond()).name == "diamond"

    def test_clique_measure_consistency(self, rng):
        measure = CliqueDensity(3)
        world = random_graph(rng, 8, 0.55)
        maximal = measure.maximum_sized_densest(world)
        all_sets = measure.all_densest(world)
        if maximal is None:
            assert all_sets == []
        else:
            union = frozenset().union(*all_sets)
            assert maximal == union

    def test_pattern_measure_density(self, triangle_graph):
        measure = PatternDensity(Pattern.two_star())
        assert measure.density(triangle_graph, [1, 2, 3]) == Fraction(1)

    def test_all_densest_limit(self, rng):
        measure = EdgeDensity()
        world = random_graph(rng, 9, 0.5)
        full = measure.all_densest(world)
        if len(full) > 1:
            assert len(measure.all_densest(world, limit=1)) == 1


class TestResultContainers:
    def test_mpds_result_accessors(self):
        top = [
            ScoredNodeSet(frozenset({1, 2}), 0.5),
            ScoredNodeSet(frozenset({3}), 0.25),
        ]
        result = MPDSResult(
            top=top, candidates={}, theta=10, worlds_with_densest=8,
        )
        assert result.best().probability == 0.5
        assert result.top_sets() == [frozenset({1, 2}), frozenset({3})]

    def test_empty_mpds_best_raises(self):
        result = MPDSResult(top=[], candidates={}, theta=0,
                            worlds_with_densest=0)
        with pytest.raises(ValueError):
            result.best()

    def test_empty_nds_best_raises(self):
        result = NDSResult(top=[], theta=0, transactions=0)
        with pytest.raises(ValueError):
            result.best()
