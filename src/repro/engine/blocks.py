"""Fixed chunk grid + block-level sampling entry points for the fan-out.

The parallel substrate shards the ``theta`` sampled worlds over a *chunk
grid*: contiguous fixed-size blocks whose boundaries depend only on the
world count (:func:`plan_blocks`), never on the worker count.  Workers
claim whole blocks and the parent merges per-block results in block
order, which is what makes estimates invariant to ``workers``.

Two ways of producing a block's worlds are supported:

* **Stream pre-partitioning** (seeded runs): the parent drives one of
  the vectorised samplers through its *continuous* RNG stream exactly as
  the sequential estimator would (:func:`drain_mask_stream`) and slices
  the resulting mask / insertion-order / weight arrays along the grid.
  Every block then holds the byte-identical worlds the sequential run
  evaluates, for Monte Carlo as well as Lazy Propagation (whose
  geometric-jump stream cannot be split mid-flight) and Recursive
  Stratified Sampling (whose stratum trial streams span blocks).
* **Block-seeded sampling** (unseeded Monte Carlo runs): each block gets
  its own decorrelated seed from :func:`derive_block_seeds`
  (``numpy.random.SeedSequence.spawn``) and the worker draws the block's
  trial matrix itself (:func:`mc_block_masks`), so the parent does no
  sampling work at all.  Block seeds are fixed per call, so results are
  still invariant to the worker count within that call.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .lazy import VectorizedLazyPropagationSampler
from .sampler import VectorizedMonteCarloSampler
from .stratified import VectorizedStratifiedSampler

#: the chunk grid has at most this many blocks (a multiple of every
#: plausible worker count, small enough that per-block overhead is noise
#: and large enough that dynamic block claiming load-balances well)
DEFAULT_BLOCKS = 64


def plan_blocks(
    total: int, max_blocks: int = DEFAULT_BLOCKS
) -> List[Tuple[int, int]]:
    """Partition ``range(total)`` into the fixed chunk grid.

    Returns ``[(start, stop), ...]`` -- at most ``max_blocks`` contiguous
    blocks of equal size (the last may be shorter).  The grid is a pure
    function of ``total``: the same world count always yields the same
    block boundaries, regardless of how many workers later claim them.
    """
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    if max_blocks < 1:
        raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
    size = -(-total // max_blocks)
    return [
        (start, min(start + size, total)) for start in range(0, total, size)
    ]


def derive_block_seeds(seed: Optional[int], count: int) -> List[int]:
    """Derive ``count`` decorrelated per-block seeds from one root seed.

    Uses ``numpy.random.SeedSequence(seed).spawn(count)``: every child
    sequence carries a distinct spawn key hashed into its state, so the
    derived streams are independent by construction and two *different*
    root seeds (e.g. adjacent integers) never map onto each other's
    block seeds -- unlike the previous ad-hoc splitmix-style affine
    derivation, whose lanes for seed ``s`` could collide with the lanes
    of nearby seeds.  ``seed=None`` draws fresh OS entropy for the root.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = np.random.SeedSequence(seed)
    return [
        int(child.generate_state(1, np.uint64)[0]) for child in root.spawn(count)
    ]


def mc_block_masks(indexed, block_seed: int, size: int) -> np.ndarray:
    """Draw one block's Monte Carlo worlds from its derived seed.

    The block-seeded batch entry point used by workers in unseeded runs:
    ``size`` worlds as a ``(size, m)`` boolean matrix, drawn by a
    :class:`VectorizedMonteCarloSampler` seeded with ``block_seed`` over
    the (typically shared-memory attached) ``indexed`` graph.
    """
    return VectorizedMonteCarloSampler(indexed, block_seed).edge_masks(size)


def drain_mask_stream(
    sampler, theta: int
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
    """Run a vectorised sampler's whole stream into flat arrays.

    Returns ``(masks, weights, order_data, order_indptr)``:

    * ``masks`` -- ``(T, m)`` boolean world matrix, in stream order;
    * ``weights`` -- ``(T,)`` float64 estimator weights;
    * ``order_data`` / ``order_indptr`` -- the per-world edge insertion
      sequences (LP schedule order, RSS fixed-then-free order) as one
      flat int64 array sliced by ``order_indptr[i]:order_indptr[i+1]``,
      or ``(None, None)`` for Monte Carlo, whose insertion order is edge
      index order and needs no sidecar.

    ``T`` is the *actual* world count (RSS may emit slightly more or
    fewer than ``theta``); the chunk grid must be planned over ``T``.
    Draining advances the sampler's RNG exactly as the sequential
    estimator's world loop would, so the arrays are byte-identical to
    what that loop evaluates.
    """
    if isinstance(sampler, VectorizedMonteCarloSampler):
        masks = sampler.edge_masks(theta)
        weights = np.full(theta, 1.0 / theta, dtype=np.float64)
        return masks, weights, None, None
    if not isinstance(
        sampler, (VectorizedLazyPropagationSampler, VectorizedStratifiedSampler)
    ):
        raise ValueError(
            "drain_mask_stream supports the vectorised MC/LP/RSS samplers; "
            f"got {type(sampler).__name__}"
        )
    mask_rows: List[np.ndarray] = []
    weights_list: List[float] = []
    orders: List[np.ndarray] = []
    for weighted in sampler.mask_worlds(theta):
        world = weighted.graph
        mask_rows.append(world.mask)
        weights_list.append(weighted.weight)
        orders.append(
            world.order
            if world.order is not None
            else np.flatnonzero(world.mask)
        )
    masks = (
        np.stack(mask_rows)
        if mask_rows
        else np.zeros((0, sampler.indexed.m), dtype=bool)
    )
    weights = np.asarray(weights_list, dtype=np.float64)
    order_indptr = np.zeros(len(orders) + 1, dtype=np.int64)
    np.cumsum([len(order) for order in orders], out=order_indptr[1:])
    order_data = (
        np.concatenate(orders)
        if orders
        else np.zeros(0, dtype=np.int64)
    ).astype(np.int64, copy=False)
    return masks, weights, order_data, order_indptr
