"""The paper's primary contribution: MPDS and NDS estimation."""

from .measures import CliqueDensity, DensityMeasure, EdgeDensity, PatternDensity
from .extensions import EdgeSurplus
from .results import (
    MPDSResult,
    NDSResult,
    ScoredNodeSet,
    SerializableResult,
    result_from_dict,
    result_from_json,
)
from .mpds import estimate_tau, mpds_from_store, top_k_mpds
from .nds import estimate_gamma, nds_from_store, top_k_nds
from .exact_bitmask import (
    bitmask_candidate_probabilities,
    bitmask_gamma,
    bitmask_top_k_mpds,
    bitmask_top_k_nds,
    bitmask_union_distribution,
)
from .exact import (
    exact_candidate_probabilities,
    exact_expected_densities,
    exact_gamma,
    exact_tau,
    exact_top_k_mpds,
    exact_top_k_nds,
)
from .heuristics import HeuristicMeasure, heuristic_dense_sets
from .parallel import parallel_top_k_mpds, parallel_top_k_nds, resolve_workers
from .adaptive import AdaptiveResult, adaptive_top_k_mpds, adaptive_top_k_nds
from .whatif import EdgeInfluence, exact_edge_influence, sampled_edge_influence
from .guarantees import (
    convergence_theta,
    hoeffding_separation_bound,
    plan_theta_for_inclusion,
    plan_theta_for_separation,
    theorem2_candidate_inclusion_bound,
    theorem3_return_bound,
    theorem5_closedness_bound,
    theorem6_return_bound,
)

__all__ = [
    "CliqueDensity",
    "DensityMeasure",
    "EdgeDensity",
    "EdgeSurplus",
    "PatternDensity",
    "MPDSResult",
    "NDSResult",
    "ScoredNodeSet",
    "SerializableResult",
    "result_from_dict",
    "result_from_json",
    "estimate_tau",
    "mpds_from_store",
    "top_k_mpds",
    "estimate_gamma",
    "nds_from_store",
    "top_k_nds",
    "resolve_workers",
    "bitmask_candidate_probabilities",
    "bitmask_gamma",
    "bitmask_top_k_mpds",
    "bitmask_top_k_nds",
    "bitmask_union_distribution",
    "exact_candidate_probabilities",
    "exact_expected_densities",
    "exact_gamma",
    "exact_tau",
    "exact_top_k_mpds",
    "exact_top_k_nds",
    "HeuristicMeasure",
    "heuristic_dense_sets",
    "parallel_top_k_mpds",
    "parallel_top_k_nds",
    "AdaptiveResult",
    "EdgeInfluence",
    "exact_edge_influence",
    "sampled_edge_influence",
    "adaptive_top_k_mpds",
    "adaptive_top_k_nds",
    "convergence_theta",
    "hoeffding_separation_bound",
    "plan_theta_for_inclusion",
    "plan_theta_for_separation",
    "theorem2_candidate_inclusion_bound",
    "theorem3_return_bound",
    "theorem5_closedness_bound",
    "theorem6_return_bound",
]
