"""Dynamic uncertain graphs: deltas, per-edge substreams, store surgery.

Production uncertain graphs churn -- edge probabilities drift, edges
appear and disappear -- but the sampling estimators assume a static
graph: any change used to force a full resample and a cold
:class:`~repro.session.Session`.  This module makes a session
*maintainable* under churn:

* :class:`GraphDelta` describes one batch of probability updates, edge
  insertions and edge deletions (validated, canonicalised, invertible);
* **dynamic world stores** (:func:`draw_dynamic_store`) draw each
  edge's mask column from its own seed-keyed RNG substream, so a
  probability update re-draws exactly one column in place
  (:func:`apply_store_delta`) instead of resampling ``theta * m``
  Bernoulli outcomes;
* the column diff reports exactly which worlds flipped, which is what
  lets :meth:`repro.session.Session.update` invalidate only the
  evaluation-cache records of flipped worlds.

Column-substream determinism contract
-------------------------------------
A dynamic store's column for edge ``(u, v)`` is a pure function of
``(root seed, canonical edge labels, theta, p)`` -- never of the edge's
*position* or of any other edge.  The substream is derived with the
same ``SeedSequence``-spawn idiom the parallel substrate uses for block
seeds (:func:`repro.engine.blocks.derive_block_seeds`), applied per
edge: the spawn key is a 64-bit BLAKE2b digest of the canonical label
pair (stable across processes and across insertions/deletions that
shift edge *indices*; ``hash()`` would vary with ``PYTHONHASHSEED``).
Consequences, which the step-wise differential tier
(``tests/test_delta_differential.py``) pins after every step of a
randomized update schedule:

* an incrementally maintained store is **byte-identical** to a
  from-scratch dynamic store drawn on the mutated graph;
* under ``mc``, a probability update re-thresholds the *same* uniforms
  (monotone coupling), so exactly the worlds whose uniform lies between
  the old and new probability flip;
* disjoint-edge deltas commute, and update-then-inverse-update restores
  the masks bit for bit (a deleted edge re-inserts at the *end* of the
  edge order, so delete round-trips restore columns up to position).

Dynamic draws are a distinct sampling scheme: they are deterministic
and engine-invariant like the legacy draws, but **not** byte-identical
to the continuous-stream one-shot estimators (whose single RNG stream
makes single-column surgery impossible by construction).  ``mc`` and
``lp`` are delta-capable; ``rss`` stratifies on the global edge set and
is not -- legacy (non-dynamic) stores of any kind are evicted on
update and re-drawn on demand.

Insertion-order contract: a dynamic ``lp`` store's per-world insertion
order is ascending edge id -- a pure function of the mask row -- and
the order sidecar is rebuilt from the masks after surgery, so replay
order survives maintenance byte-identically too.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .graph.graph import Node, canonical_edge
from .graph.uncertain import UncertainGraph

#: sampler kinds whose dynamic (per-edge substream) twin exists
DYNAMIC_KINDS = ("mc", "lp")

_SEED_MASK = (1 << 64) - 1


# ----------------------------------------------------------------------
# per-edge substreams
# ----------------------------------------------------------------------
def edge_substream_key(u: Node, v: Node) -> int:
    """Stable 64-bit substream key for an undirected edge.

    A BLAKE2b digest of the canonical label pair's ``repr`` -- stable
    across processes, interpreter runs and edge reindexing, which is
    exactly what lets a column be re-drawn (or verified) years after
    the store was built.
    """
    a, b = canonical_edge(u, v)
    digest = hashlib.blake2b(
        repr((a, b)).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def _column_generator(seed: int, u: Node, v: Node) -> np.random.Generator:
    """The edge's decorrelated generator (SeedSequence spawn-key idiom)."""
    sequence = np.random.SeedSequence(
        entropy=int(seed) & _SEED_MASK,
        spawn_key=(edge_substream_key(u, v),),
    )
    return np.random.Generator(np.random.PCG64(sequence))


def edge_column(
    kind: str, seed: int, u: Node, v: Node, probability: float, theta: int
) -> np.ndarray:
    """One edge's ``(theta,)`` boolean mask column from its substream.

    ``mc`` draws ``theta`` uniforms and thresholds them (``u < p``) --
    the monotone coupling that makes probability updates flip only the
    worlds between the old and new threshold.  ``lp`` runs the edge's
    geometric renewal process (gap ``1 + floor(log(1-u) / log(1-p))``,
    the Lazy Propagation jump) marking each occurrence round.
    """
    if kind not in DYNAMIC_KINDS:
        raise ValueError(
            f"sampler kind {kind!r} is not delta-capable; dynamic draws "
            f"support {list(DYNAMIC_KINDS)}"
        )
    if theta < 0:
        raise ValueError(f"theta must be >= 0, got {theta}")
    probability = float(probability)
    rng = _column_generator(seed, u, v)
    if kind == "mc":
        return rng.random(theta) < probability
    column = np.zeros(theta, dtype=bool)
    if probability >= 1.0:
        column[:] = True
        return column
    if probability <= 0.0:  # pragma: no cover - p in (0, 1] is validated
        return column
    log_one_minus_p = math.log(1.0 - probability)
    position = -1
    while True:
        position += 1 + int(
            math.log(1.0 - rng.random()) / log_one_minus_p
        )
        if position >= theta:
            return column
        column[position] = True


def _orders_from_rows(
    rows: Iterator[np.ndarray], count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Ascending-edge-id order sidecar (data, indptr) from mask rows."""
    data: List[np.ndarray] = []
    indptr = np.zeros(count + 1, dtype=np.int64)
    total = 0
    for i, row in enumerate(rows):
        alive = np.flatnonzero(row).astype(np.int64)
        data.append(alive)
        total += len(alive)
        indptr[i + 1] = total
    order_data = (
        np.concatenate(data) if data else np.zeros(0, dtype=np.int64)
    )
    return order_data, indptr


def draw_dynamic_store(
    graph,
    kind: str = "mc",
    theta: int = 160,
    seed: Optional[int] = None,
    packed: bool = True,
    memory_budget: Optional[int] = None,
):
    """Draw a from-scratch *dynamic* world store, column by column.

    ``graph`` is an :class:`~repro.graph.uncertain.UncertainGraph` or a
    prepared :class:`~repro.engine.indexed.IndexedGraph`.  Every column
    comes from its edge's substream, so the result is byte-identical to
    any incrementally maintained store that went through the same net
    deltas -- the from-scratch twin the differential tier compares
    against.
    """
    from .engine.indexed import IndexedGraph
    from .engine.worldstore import WorldStore

    if kind not in DYNAMIC_KINDS:
        raise ValueError(
            f"sampler kind {kind!r} is not delta-capable; dynamic draws "
            f"support {list(DYNAMIC_KINDS)}"
        )
    if seed is None:
        raise ValueError("dynamic draws require an explicit seed")
    if theta < 1:
        raise ValueError(f"theta must be positive, got {theta}")
    indexed = (
        graph
        if isinstance(graph, IndexedGraph)
        else IndexedGraph.from_uncertain(graph)
    )
    nodes = indexed.nodes
    masks = np.zeros((theta, indexed.m), dtype=bool)
    for j in range(indexed.m):
        u = nodes[indexed.edge_u[j]]
        v = nodes[indexed.edge_v[j]]
        masks[:, j] = edge_column(
            kind, seed, u, v, float(indexed.probs[j]), theta
        )
    weights = np.full(theta, 1.0 / theta, dtype=np.float64)
    order_data = order_indptr = None
    if kind == "lp":
        order_data, order_indptr = _orders_from_rows(iter(masks), theta)
    return WorldStore(
        indexed, masks, weights, order_data, order_indptr,
        kind=kind, theta=theta, seed=seed, packed=packed,
        memory_budget=memory_budget, dynamic=True,
    )


# ----------------------------------------------------------------------
# deltas
# ----------------------------------------------------------------------
class GraphDelta:
    """One batch of uncertain-graph mutations, validated and invertible.

    ``updates`` are ``(u, v, p)`` triples re-weighting existing edges,
    ``inserts`` are ``(u, v, p)`` triples adding new edges (endpoints
    may be new nodes), ``deletes`` are ``(u, v)`` pairs removing edges
    (the endpoints stay, matching
    :meth:`UncertainGraph.condition(present=False) <repro.graph.uncertain.UncertainGraph.condition>`).
    Probabilities must lie in ``(0, 1]``; an edge may appear in at most
    one group.  Edges are canonicalised on construction, so
    ``GraphDelta(updates=[("B", "A", 0.5)])`` and the ``("A", "B")``
    spelling are the same delta.
    """

    __slots__ = ("updates", "inserts", "deletes")

    def __init__(
        self,
        updates: Iterable[Sequence] = (),
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[Sequence] = (),
    ) -> None:
        self.updates = self._weighted_rows("updates", updates)
        self.inserts = self._weighted_rows("inserts", inserts)
        self.deletes = self._bare_rows("deletes", deletes)
        seen = {}
        for group, rows in (
            ("updates", self.updates),
            ("inserts", self.inserts),
            ("deletes", self.deletes),
        ):
            for row in rows:
                edge = (row[0], row[1])
                if edge in seen:
                    raise ValueError(
                        f"edge {edge!r} appears in both {seen[edge]!r} "
                        f"and {group!r} of one delta"
                    )
                seen[edge] = group

    @staticmethod
    def _weighted_rows(group, rows) -> Tuple[Tuple[Node, Node, float], ...]:
        out = []
        for row in rows:
            row = tuple(row)
            if len(row) != 3:
                raise ValueError(
                    f"malformed {group} row {row!r} (expected (u, v, p))"
                )
            u, v, p = row
            if u == v:
                raise ValueError(f"self-loops are not supported: {u!r}")
            p = float(p)
            if not 0.0 < p <= 1.0:
                raise ValueError(
                    f"edge probability must be in (0, 1], got {p!r} "
                    f"in {group} row for {(u, v)!r}"
                )
            a, b = canonical_edge(u, v)
            out.append((a, b, p))
        return tuple(out)

    @staticmethod
    def _bare_rows(group, rows) -> Tuple[Tuple[Node, Node], ...]:
        out = []
        for row in rows:
            row = tuple(row)
            if len(row) != 2:
                raise ValueError(
                    f"malformed {group} row {row!r} (expected (u, v))"
                )
            out.append(canonical_edge(row[0], row[1]))
        return tuple(out)

    @property
    def empty(self) -> bool:
        """Whether this delta names no edges at all."""
        return not (self.updates or self.inserts or self.deletes)

    def resolve(self, graph: UncertainGraph) -> "ResolvedDelta":
        """Validate against ``graph`` without mutating it.

        Updates of missing edges, inserts of existing edges and deletes
        of missing edges all raise; updates that leave the probability
        unchanged are filtered out (counted as ``noop_updates`` -- a
        no-op delta redraws zero columns).
        """
        updates = []
        noops = 0
        for u, v, p in self.updates:
            if not graph.has_edge(u, v):
                raise ValueError(f"cannot update missing edge {(u, v)!r}")
            if graph.probability(u, v) == p:
                noops += 1
            else:
                updates.append((u, v, p))
        for u, v, _p in self.inserts:
            if graph.has_edge(u, v):
                raise ValueError(
                    f"cannot insert existing edge {(u, v)!r} "
                    "(use updates to change its probability)"
                )
        deletes = []
        for u, v in self.deletes:
            if not graph.has_edge(u, v):
                raise ValueError(f"cannot delete missing edge {(u, v)!r}")
            deletes.append((u, v, graph.probability(u, v)))
        return ResolvedDelta(
            tuple(updates), self.inserts, tuple(deletes), noops
        )

    def apply(self, graph: UncertainGraph) -> "ResolvedDelta":
        """Resolve against ``graph`` and mutate it in place.

        Inserted edges land at the *end* of the insertion order (the
        edge-id order the engine indexes), deletions close ranks, and
        probability updates keep their edge's position.
        """
        resolved = self.resolve(graph)
        for u, v, p in resolved.updates:
            graph.set_probability(u, v, p)
        for u, v, _old in resolved.deletes:
            graph.remove_edge(u, v)
        for u, v, p in resolved.inserts:
            graph.add_edge(u, v, p)
        return resolved

    def inverse(self, graph: UncertainGraph) -> "GraphDelta":
        """The delta that undoes this one on ``graph``.

        Must be computed **before** :meth:`apply` (it captures the
        current probabilities).  Probability updates and inserts
        round-trip the mask matrix bit for bit; a delete's inverse
        re-inserts at the end of the edge order, so its column returns
        byte-identical but at a new position.
        """
        resolved = self.resolve(graph)
        return GraphDelta(
            updates=tuple(
                (u, v, graph.probability(u, v))
                for u, v, _p in resolved.updates
            ),
            inserts=resolved.deletes,
            deletes=tuple((u, v) for u, v, _p in self.inserts),
        )

    def __repr__(self) -> str:
        return (
            f"GraphDelta(updates={len(self.updates)}, "
            f"inserts={len(self.inserts)}, deletes={len(self.deletes)})"
        )


class ResolvedDelta:
    """A :class:`GraphDelta` validated against one concrete graph.

    ``updates`` carry only *effective* probability changes
    (``noop_updates`` counts the filtered ones), and ``deletes`` carry
    the pre-deletion probability -- everything surgery and inversion
    need, captured before the graph mutates.
    """

    __slots__ = ("updates", "inserts", "deletes", "noop_updates")

    def __init__(self, updates, inserts, deletes, noop_updates) -> None:
        self.updates = updates
        self.inserts = inserts
        self.deletes = deletes
        self.noop_updates = noop_updates

    @property
    def empty(self) -> bool:
        """No effective mutation at all (possibly only no-op updates)."""
        return not (self.updates or self.inserts or self.deletes)


# ----------------------------------------------------------------------
# store surgery
# ----------------------------------------------------------------------
class DeltaOutcome:
    """What one store's surgery did: columns redrawn + flipped worlds."""

    __slots__ = ("columns_redrawn", "flipped")

    def __init__(self, columns_redrawn: int, flipped: np.ndarray) -> None:
        self.columns_redrawn = columns_redrawn
        self.flipped = flipped

    def __repr__(self) -> str:
        return (
            f"DeltaOutcome(columns_redrawn={self.columns_redrawn}, "
            f"worlds_flipped={len(self.flipped)})"
        )


def _edge_ids(indexed) -> dict:
    """Canonical edge labels -> edge id, for one IndexedGraph."""
    nodes = indexed.nodes
    return {
        canonical_edge(nodes[indexed.edge_u[j]], nodes[indexed.edge_v[j]]): j
        for j in range(indexed.m)
    }


def apply_store_delta(store, resolved: ResolvedDelta, new_indexed):
    """Surgically bring one dynamic store in line with an applied delta.

    ``store.indexed`` must still describe the *pre*-delta graph and
    ``new_indexed`` the post-delta one.  Pure probability updates take
    the in-place fast path -- each affected column is re-drawn from its
    substream and written into the packed words (budgeted stores stream
    block by block through the pager, staying under their budget).
    Structural deltas rebuild the column layout: surviving columns are
    carried over byte-for-byte, updated/inserted ones drawn fresh,
    deleted ones dropped.  Returns a :class:`DeltaOutcome` whose
    ``flipped`` indices are exactly the worlds whose edge sets changed
    (the evaluation-cache invalidation granularity).
    """
    if not getattr(store, "dynamic", False):
        raise ValueError(
            "apply_store_delta requires a dynamic store (legacy "
            "continuous-stream draws cannot be incrementally maintained)"
        )
    theta = store.count
    old_ids = _edge_ids(store.indexed)
    flipped = np.zeros(theta, dtype=bool)
    redrawn = 0
    if not (resolved.inserts or resolved.deletes):
        for u, v, p in resolved.updates:
            column = edge_column(store.kind, store.seed, u, v, p, theta)
            flips = store.set_column(old_ids[(u, v)], column)
            flipped[flips] = True
            redrawn += 1
        if store.kind == "lp" and flipped.any():
            store.rebuild_orders()
        store.indexed = new_indexed
        return DeltaOutcome(redrawn, np.flatnonzero(flipped))

    # structural path: rebuild the column layout (documented as a full
    # transient materialisation -- insert/delete change the mask width,
    # which in-place word surgery cannot express)
    old_masks = store.masks
    updated = {(u, v): p for u, v, p in resolved.updates}
    inserted = {(u, v) for u, v, _p in resolved.inserts}
    new_nodes = new_indexed.nodes
    new_masks = np.zeros((theta, new_indexed.m), dtype=bool)
    for j in range(new_indexed.m):
        u = new_nodes[new_indexed.edge_u[j]]
        v = new_nodes[new_indexed.edge_v[j]]
        edge = canonical_edge(u, v)
        if edge in inserted or edge in updated:
            column = edge_column(
                store.kind, store.seed, u, v,
                float(new_indexed.probs[j]), theta,
            )
            redrawn += 1
            if edge in inserted:
                flipped |= column
            else:
                flipped |= column != old_masks[:, old_ids[edge]]
        else:
            column = old_masks[:, old_ids[edge]]
        new_masks[:, j] = column
    for u, v, _old in resolved.deletes:
        flipped |= old_masks[:, old_ids[(u, v)]]
    order_data = order_indptr = None
    if store.kind == "lp":
        order_data, order_indptr = _orders_from_rows(
            iter(new_masks), theta
        )
    store.replace_contents(new_masks, order_data, order_indptr, new_indexed)
    return DeltaOutcome(redrawn, np.flatnonzero(flipped))
