"""Adaptive stopping vs the fixed-theta Fig. 19 protocol.

The paper selects theta by doubling until the top-k stabilises (Fig. 19);
``repro.core.adaptive`` automates that and adds a plug-in Theorem 3
confidence certificate.  This bench runs the adaptive MPDS on two
workloads and records where it stopped, why, and the confidence trace.
"""

import time

from repro.core.adaptive import adaptive_top_k_mpds
from repro.experiments.common import format_table

from .conftest import BENCH_SMALL, emit


def test_adaptive_stopping(benchmark):
    graphs = {
        name: loader() for name, loader in BENCH_SMALL.items()
        if name in ("KarateClub", "IntelLab")
    }

    def run():
        rows = []
        for name, graph in graphs.items():
            start = time.perf_counter()
            adaptive = adaptive_top_k_mpds(
                graph, k=1, confidence=0.9, start_theta=20,
                max_theta=320, seed=2023,
            )
            elapsed = time.perf_counter() - start
            final_bound = adaptive.trace[-1][1]
            rows.append([
                name, adaptive.theta, adaptive.stopped_because,
                final_bound, len(adaptive.trace), elapsed,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("adaptive_stopping", format_table(
        ["Dataset", "theta", "StoppedBecause", "PlugInBound", "Steps", "Time(s)"],
        rows,
    ))
    for row in rows:
        assert row[2] in {"confidence", "stable", "budget"}
        assert 20 <= row[1] <= 320
