"""Shared-memory parallel sampling substrate (Algorithms 1 and 5).

The sampled worlds of Algorithm 1 / Algorithm 5 are independent, so the
per-world densest-subgraph work parallelises embarrassingly.  Earlier
revisions forked a fresh pool per call, pickled the whole
:class:`UncertainGraph` into every chunk, rebuilt the CSR index in every
worker, and let the chunking follow the worker count -- so changing
``workers`` changed the estimates.  This module replaces that with a
substrate built around three invariants:

1. **A persistent, spawn-safe worker pool.**  One pool is created
   lazily, kept across calls (grown if a later call asks for more
   workers) and shut down at interpreter exit.  A call requesting
   *fewer* workers than the pool holds reuses it but keeps at most
   ``workers`` blocks in flight, so the requested concurrency cap is
   honoured either way.  Workers never inherit parent state; everything
   they need arrives by shared memory or tiny picklable task tuples.
2. **Shared-memory graph and world arrays.**  The parent publishes the
   graph's endpoint / probability / CSR arrays (plus the sampled world
   masks and LP/RSS insertion orders) as :mod:`multiprocessing`
   shared-memory segments (:mod:`repro.engine.shm`); a task ships only
   segment names and a byte layout, and workers attach zero-copy
   (cached per segment, so a 64-block run attaches twice, not 64
   times).
3. **A worker-count-invariant chunk grid.**  The ``theta`` worlds are
   sharded over fixed contiguous blocks (:func:`repro.engine.blocks.
   plan_blocks` -- a pure function of the world count).  Workers claim
   whole blocks dynamically; the parent reassembles per-block records
   in grid order and feeds them through the *same* accumulation code
   the sequential estimators use (:func:`repro.core.mpds.finalize_mpds`
   / :func:`repro.core.nds.accumulate_transactions`).  Every float is
   therefore added in the same sequence as a sequential run.

Determinism contract
--------------------
* **Seeded runs** (``seed`` given or a seeded MC/LP/RSS ``sampler``
  passed): the parent replays the sampler's *continuous* RNG stream via
  its vectorised twin and pre-partitions the resulting mask / insertion
  -order / weight arrays along the grid.  The worlds each block
  evaluates are byte-identical to the worlds the sequential estimator
  would evaluate, so ``parallel_top_k_mpds(..., seed=s, workers=w)``
  returns **byte-identical** results for every ``w`` -- including
  ``workers=1``, which short-circuits to the sequential estimator --
  and matches ``top_k_mpds(..., seed=s)`` exactly.  This covers Monte
  Carlo, Lazy Propagation (geometric-jump stream) and Recursive
  Stratified Sampling (stratum trial streams).
* **Unseeded Monte Carlo runs** (``seed=None``, no sampler): sampling
  itself is sharded.  Each block draws its own trial matrix from a
  per-block seed derived once per call via
  :func:`repro.engine.blocks.derive_block_seeds`
  (``SeedSequence.spawn``), so the parent does no sampling work and the
  result is still invariant to ``workers`` within the call (the block
  seeds, not the workers, determine the worlds).

Merging preserves unbiasedness (Lemma 1 applies per world) -- but the
stronger property above makes that moot: the parallel estimate *is* the
sequential estimate.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..graph.uncertain import UncertainGraph
from .measures import DensityMeasure, EdgeDensity
from .mpds import finalize_mpds, top_k_mpds
from .nds import accumulate_transactions, finalize_nds, top_k_nds
from .results import MPDSResult, NDSResult

#: (start, stop) world-index ranges of the chunk grid
BlockPlan = List[Tuple[int, int]]

#: one finished block: (block index, per-world records, replayed count)
BlockOutput = Tuple[int, list, int]


def resolve_workers(workers: Union[int, str]) -> int:
    """Resolve a ``workers`` request to a concrete process count.

    ``"auto"`` asks the host: the scheduler affinity mask when the
    platform exposes one (containers and taskset-restricted jobs report
    their real allowance, not the machine's), else ``os.cpu_count()``,
    never below 1 -- so a 1-core host gets a sequential run instead of
    two processes thrashing one core.  Integers pass through unchanged
    (including invalid ones: the caller owns the ``>= 1`` validation and
    its error message).
    """
    if workers == "auto":
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux hosts
            return max(1, os.cpu_count() or 1)
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ValueError(
            f"workers must be an integer or 'auto', got {workers!r}"
        )
    return workers


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_PROCS = 0


def _ensure_pool(workers: int) -> multiprocessing.pool.Pool:
    """Return the persistent spawn pool, growing it if needed.

    The pool is created once and reused across calls (spawned workers
    pay their interpreter start-up a single time); asking for more
    workers than the current pool has replaces it with a larger one.
    """
    global _POOL, _POOL_PROCS
    if _POOL is None or _POOL_PROCS < workers:
        shutdown_pool()
        context = multiprocessing.get_context("spawn")
        _POOL = context.Pool(processes=workers)
        _POOL_PROCS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (no-op when none is running).

    Called automatically at interpreter exit; useful in tests or after
    a worker crash left the pool unusable.
    """
    global _POOL, _POOL_PROCS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_PROCS = 0


atexit.register(shutdown_pool)


# ----------------------------------------------------------------------
# worker-side segment cache
# ----------------------------------------------------------------------
#: segment name -> (shm, attached arrays, IndexedGraph or None); small
#: LRU so long-lived workers do not accumulate mappings across calls
_SEGMENTS: Dict[str, tuple] = {}
_SEGMENT_CAP = 4


def _attached_entry(name: str, layout, want_graph: bool):
    """Attach (or reuse) a published segment inside a worker."""
    from ..engine.indexed import IndexedGraph
    from ..engine.shm import attach_arrays, close_attachment

    entry = _SEGMENTS.get(name)
    if entry is None:
        shm, arrays = attach_arrays(name, layout)
        graph = IndexedGraph.from_shared_payload(arrays) if want_graph else None
        _SEGMENTS[name] = entry = (shm, arrays, graph)
        stale = [key for key in _SEGMENTS if key != name]
        while len(_SEGMENTS) > _SEGMENT_CAP and stale:
            old_shm, old_arrays, old_graph = _SEGMENTS.pop(stale.pop(0))
            del old_arrays, old_graph
            close_attachment(old_shm)
    elif want_graph and entry[2] is None:  # pragma: no cover - defensive
        shm, arrays, _ = entry
        _SEGMENTS[name] = entry = (
            shm, arrays, IndexedGraph.from_shared_payload(arrays)
        )
    return entry


# ----------------------------------------------------------------------
# per-block evaluation (runs in workers; also used in-process by tests)
# ----------------------------------------------------------------------
def _block_records(
    indexed,
    masks: np.ndarray,
    order_data: Optional[np.ndarray],
    order_indptr: Optional[np.ndarray],
    lo: int,
    hi: int,
    measure: DensityMeasure,
    engine: str,
    enumerate_all: bool,
    per_world_limit: Optional[int],
    mode: str,
) -> Tuple[list, int]:
    """Evaluate world rows ``lo:hi`` of ``masks`` into per-world records.

    ``engine`` must already be resolved to ``"vectorized"``, ``"jit"``
    or ``"python"``.  The vector tiers evaluate :class:`MaskWorld`
    views through an :class:`EngineMeasure` (batched cheap stages via
    :func:`primed_world_stream`); the python path replays
    each world's exact insertion sequence into a :class:`Graph` and
    queries the plain measure -- both byte-identical to what the
    sequential estimator computes for the same worlds, with one
    exception: a world whose densest-family enumeration (possibly) hit
    ``per_world_limit`` is recorded as the sentinel ``None``.  The
    truncated *window* of an enumeration is order-sensitive, and
    enumeration order over string-labelled worlds depends on the
    process's hash seed -- so those few worlds must be re-evaluated in
    the parent process (:func:`_replay_truncated`), where the hash seed
    matches the sequential run by construction.  Returns ``(records,
    replayed_worlds)``.
    """
    from ..engine.estimators import (
        VECTOR_ENGINES,
        EngineMeasure,
        primed_world_stream,
    )
    from ..engine.indexed import MaskWorld
    from ..sampling.base import WeightedWorld
    from .mpds import evaluate_worlds
    from .nds import evaluate_transactions

    vector = engine in VECTOR_ENGINES
    loop_measure = (
        EngineMeasure(measure, tier=engine) if vector else measure
    )

    def block_worlds() -> Iterator[WeightedWorld]:
        for i in range(lo, hi):
            order = (
                order_data[order_indptr[i]:order_indptr[i + 1]]
                if order_data is not None
                else None
            )
            if vector:
                world = MaskWorld(indexed, masks[i], order=order)
            else:
                world = indexed.world_graph(masks[i], order)
            # weights are merged in the parent; per-block weight is unused
            yield WeightedWorld(world, 0.0)

    worlds = (
        primed_world_stream(block_worlds(), loop_measure)
        if vector
        else block_worlds()
    )
    if mode == "nds":
        records = [
            maximal
            for maximal, _ in evaluate_transactions(worlds, loop_measure)
        ]
        return records, 0
    records: list = []
    for densest_sets, _ in evaluate_worlds(
        worlds, loop_measure, enumerate_all, per_world_limit
    ):
        if (
            enumerate_all
            and per_world_limit is not None
            and len(densest_sets) >= per_world_limit
        ):
            # (possibly) truncated enumeration: defer the order-sensitive
            # window to the parent.  The engine's own replay counter (if
            # any) already ticked, exactly as in a sequential run.
            records.append(None)
        else:
            records.append(densest_sets)
    replayed = (
        loop_measure.replayed_worlds if vector else 0
    )
    return records, replayed


def _evaluate_block(task) -> BlockOutput:
    """Worker entry point: evaluate one chunk-grid block.

    ``task`` is a small picklable tuple; all heavy inputs arrive by
    shared memory.  ``block_seed`` is set only on the unseeded Monte
    Carlo path, where the worker draws the block's trial matrix itself.
    """
    (
        block_index,
        start,
        stop,
        graph_name,
        graph_layout,
        job_name,
        job_layout,
        block_seed,
        mode,
        measure,
        engine,
        enumerate_all,
        per_world_limit,
    ) = task
    _shm, _arrays, indexed = _attached_entry(
        graph_name, graph_layout, want_graph=True
    )
    if block_seed is not None:
        from ..engine.blocks import mc_block_masks

        masks = mc_block_masks(indexed, block_seed, stop - start)
        records, replayed = _block_records(
            indexed, masks, None, None, 0, stop - start,
            measure, engine, enumerate_all, per_world_limit, mode,
        )
    else:
        from ..engine.shm import masks_from_payload

        _job_shm, job_arrays, _ = _attached_entry(
            job_name, job_layout, want_graph=False
        )
        records, replayed = _block_records(
            indexed,
            masks_from_payload(job_arrays),
            job_arrays.get("order_data"),
            job_arrays.get("order_indptr"),
            start,
            stop,
            measure, engine, enumerate_all, per_world_limit, mode,
        )
    return block_index, records, replayed


def _replay_truncated(
    plan: "_RunPlan",
    outputs: List[BlockOutput],
    measure: DensityMeasure,
    per_world_limit: Optional[int],
) -> None:
    """Re-evaluate sentinel (truncation-hit) worlds in the parent.

    A truncated densest-family enumeration returns an order-sensitive
    *window*, and enumeration order over hash-containers follows the
    per-process hash seed -- so workers flag such worlds instead of
    answering (see :func:`_block_records`) and the parent, whose hash
    seed is the one a sequential run would have used, replays them
    through the same materialised-world python path the sequential
    engines use.  Mutates ``outputs`` in place.  Worlds are rebuilt from
    the plan's mask rows, or by re-deriving the block's trial matrix
    from its seed on the unseeded path (cheap: only blocks that
    actually truncated are redrawn).
    """
    for block_index, records, _replayed in outputs:
        if all(record is not None for record in records):
            continue
        start, stop = plan.blocks[block_index]
        if plan.masks is not None:
            masks, base = plan.masks, start
        else:
            from ..engine.blocks import mc_block_masks

            masks, base = (
                mc_block_masks(
                    plan.indexed, plan.block_seeds[block_index], stop - start
                ),
                0,
            )
        for offset, record in enumerate(records):
            if record is not None:
                continue
            i = start + offset
            order = (
                plan.order_data[plan.order_indptr[i]:plan.order_indptr[i + 1]]
                if plan.order_data is not None
                else None
            )
            world = plan.indexed.world_graph(masks[base + offset], order)
            records[offset] = measure.all_densest(world, per_world_limit)


# ----------------------------------------------------------------------
# deterministic merge (block order, sequential accumulation code)
# ----------------------------------------------------------------------
def _records_in_grid_order(
    blocks: BlockPlan,
    weights: np.ndarray,
    outputs: Iterable[BlockOutput],
) -> Tuple[Iterator[Tuple[object, float]], List[int]]:
    """Reassemble per-block outputs into the sequential record stream.

    ``outputs`` may arrive in *any* order (workers race) and are sorted
    back onto the grid; each world record is re-paired with its global
    estimator weight.  Returns the ordered record iterator plus the
    per-block replay counts.  Raises ``ValueError`` on missing,
    duplicated or mis-sized blocks -- the merge refuses to fabricate an
    estimate from a partial grid.
    """
    by_index: Dict[int, list] = {}
    replayed: List[int] = [0] * len(blocks)
    for block_index, records, block_replayed in outputs:
        if block_index in by_index:
            raise ValueError(f"duplicate block {block_index} in merge")
        if not 0 <= block_index < len(blocks):
            raise ValueError(f"unknown block {block_index} in merge")
        start, stop = blocks[block_index]
        if len(records) != stop - start:
            raise ValueError(
                f"block {block_index} returned {len(records)} records, "
                f"expected {stop - start}"
            )
        by_index[block_index] = records
        replayed[block_index] = block_replayed
    if len(by_index) != len(blocks):
        missing = sorted(set(range(len(blocks))) - set(by_index))
        raise ValueError(f"merge is missing blocks {missing}")

    def ordered() -> Iterator[Tuple[object, float]]:
        for block_index, (start, _stop) in enumerate(blocks):
            for offset, record in enumerate(by_index[block_index]):
                yield record, float(weights[start + offset])

    return ordered(), replayed


def merge_mpds_blocks(
    blocks: BlockPlan,
    weights: np.ndarray,
    outputs: Iterable[BlockOutput],
    k: int,
) -> MPDSResult:
    """Merge per-block MPDS records into the final Algorithm 1 result.

    Invariant under any permutation of ``outputs`` and any partition of
    the grid into blocks: records are replayed in grid order through
    :func:`repro.core.mpds.finalize_mpds`, the exact accumulation the
    sequential estimator runs.
    """
    records, replayed = _records_in_grid_order(blocks, weights, outputs)
    result = finalize_mpds(records, k)
    result.replayed_worlds = sum(replayed)
    return result


def merge_nds_blocks(
    blocks: BlockPlan,
    weights: np.ndarray,
    outputs: Iterable[BlockOutput],
    k: int,
    min_size: int,
) -> NDSResult:
    """Merge per-block NDS transactions into the final Algorithm 5 result.

    Same invariance as :func:`merge_mpds_blocks`: the parent re-runs the
    sequential transaction accumulation over the grid-ordered stream and
    mines the merged database once.
    """
    records, _replayed = _records_in_grid_order(blocks, weights, outputs)
    transactions, tx_weights, total_weight, actual_theta = (
        accumulate_transactions(records)
    )
    return finalize_nds(
        transactions, tx_weights, total_weight, actual_theta, k, min_size
    )


# ----------------------------------------------------------------------
# run planning + dispatch
# ----------------------------------------------------------------------
class _RunPlan:
    """Everything one fan-out needs: graph, grid, and world arrays."""

    __slots__ = (
        "indexed", "blocks", "weights", "masks",
        "order_data", "order_indptr", "block_seeds",
    )

    def __init__(self, indexed, blocks, weights, masks,
                 order_data, order_indptr, block_seeds):
        self.indexed = indexed
        self.blocks = blocks
        self.weights = weights
        self.masks = masks
        self.order_data = order_data
        self.order_indptr = order_indptr
        self.block_seeds = block_seeds


def plan_from_store(store) -> _RunPlan:
    """Build a fan-out plan over a pre-sampled world store.

    The session layer's entry point: a
    :class:`repro.engine.worldstore.WorldStore` already holds exactly
    the arrays a seeded plan needs (masks, weights, insertion orders in
    stream order), so fanning a warm query out is just laying the fixed
    chunk grid over the stored world count -- zero sampling work.
    Packed stores hand over their word matrix as-is
    (:class:`repro.engine.bitset.PackedMasks`), so the published
    segments stay 8x smaller than the boolean equivalent.
    """
    from ..engine.blocks import plan_blocks

    return _RunPlan(
        store.indexed,
        plan_blocks(store.count),
        store.weights,
        store.mask_matrix(),
        store.order_data,
        store.order_indptr,
        None,
    )


def _plan_run(graph: UncertainGraph, theta: int, sampler,
              seed: Optional[int]) -> Optional[_RunPlan]:
    """Sample (or schedule sampling for) one fan-out's worlds.

    Returns ``None`` when the fan-out cannot help (edgeless graph or a
    single-world grid) and the caller should fall back to the
    sequential estimator *before* any RNG is consumed.
    """
    from ..engine.blocks import (
        derive_block_seeds,
        drain_mask_stream,
        plan_blocks,
    )
    from ..engine.estimators import vectorized_sampler
    from ..engine.indexed import IndexedGraph

    if theta == 1:
        return None
    if sampler is None and seed is None:
        # unseeded Monte Carlo: shard the sampling itself over the grid
        indexed = IndexedGraph.from_uncertain(graph)
        if indexed.m == 0:
            return None
        blocks = plan_blocks(theta)
        return _RunPlan(
            indexed,
            blocks,
            np.full(theta, 1.0 / theta, dtype=np.float64),
            None, None, None,
            derive_block_seeds(None, len(blocks)),
        )
    try:
        vec = vectorized_sampler(graph, sampler, seed)
    except ValueError as exc:
        raise ValueError(
            "the parallel substrate shards the MC, LP and RSS sampling "
            f"streams only; {exc}"
        ) from exc
    if vec.indexed.m == 0:
        return None
    masks, weights, order_data, order_indptr = drain_mask_stream(vec, theta)
    blocks = plan_blocks(len(weights))
    # pack the drained matrix: the fan-out then publishes uint64 words
    # (8x less shared memory) and workers unpack rows lazily -- replay
    # is byte-identical either way (pack/unpack is lossless)
    from ..engine.bitset import PackedMasks

    return _RunPlan(
        vec.indexed, blocks, weights, PackedMasks.from_bool(masks),
        order_data, order_indptr, None,
    )


def _close_segments(segments: List) -> None:
    """Close and unlink raw shared-memory segments, ignoring races."""
    for shm in segments:
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class PublishedGraph:
    """One graph payload published to shared memory.

    The graph segment is store-independent: a
    :class:`repro.session.Session` publishes it **once** and shares it
    across every world store's fan-outs (workers cache attachments per
    segment name, so warm queries re-attach nothing); the one-shot
    wrappers own a private one per call.
    """

    __slots__ = ("name", "layout", "_segments")

    def __init__(self, shm, layout) -> None:
        self.name = shm.name
        self.layout = layout
        self._segments = [shm]

    @classmethod
    def publish(cls, indexed) -> "PublishedGraph":
        """Pack an :class:`IndexedGraph`'s payload into shared memory."""
        from ..engine.shm import pack_arrays

        return cls(*pack_arrays(indexed.shared_payload()))

    def close(self) -> None:
        """Close and unlink the graph segment (idempotent)."""
        segments, self._segments = self._segments, []
        _close_segments(segments)


class PublishedPlan:
    """A plan's shared-memory segments, reusable across dispatches.

    Publishing (packing the graph payload and the sampled world arrays
    into :mod:`multiprocessing` shared memory) is the per-call setup
    cost of a fan-out.  The one-shot wrappers publish and unlink around
    a single dispatch; a :class:`repro.session.Session` keeps the
    published segments alive so every warm query reuses them.  Passing
    an externally owned ``graph`` shares its segment (only the
    per-store job arrays are packed); :meth:`close` then unlinks only
    what this plan owns.
    """

    __slots__ = ("graph_name", "graph_layout", "job_name", "job_layout",
                 "_segments")

    def __init__(self, graph: PublishedGraph, job_shm, job_layout,
                 owns_graph: bool) -> None:
        self.graph_name = graph.name
        self.graph_layout = graph.layout
        self.job_name = None if job_shm is None else job_shm.name
        self.job_layout = job_layout
        self._segments = [shm for shm in (job_shm,) if shm is not None]
        if owns_graph:
            self._segments.append(graph)

    @classmethod
    def publish(
        cls, plan: _RunPlan, graph: Optional[PublishedGraph] = None
    ) -> "PublishedPlan":
        """Pack the plan's world arrays (and, unless ``graph`` is given,
        its graph payload) into shared memory."""
        from ..engine.shm import pack_arrays

        owns_graph = graph is None
        if owns_graph:
            graph = PublishedGraph.publish(plan.indexed)
        job_shm = job_layout = None
        if plan.masks is not None:
            from ..engine.shm import mask_payload

            # packed plans ship uint64 words -- 8x less shared memory
            # than the boolean byte matrix, unpacked lazily per world
            # inside the workers (same bytes either way)
            job_arrays = mask_payload(plan.masks)
            if plan.order_data is not None:
                job_arrays["order_data"] = plan.order_data
                job_arrays["order_indptr"] = plan.order_indptr
            try:
                job_shm, job_layout = pack_arrays(job_arrays)
            except BaseException:
                if owns_graph:
                    graph.close()
                raise
        return cls(graph, job_shm, job_layout, owns_graph)

    def close(self) -> None:
        """Close and unlink the owned segments (idempotent).

        A shared (session-owned) graph segment is left alone -- its
        owner closes it.
        """
        segments, self._segments = self._segments, []
        for shm in segments:
            if isinstance(shm, PublishedGraph):
                shm.close()
            else:
                _close_segments([shm])


def dispatch_blocks(
    plan: _RunPlan,
    published: PublishedPlan,
    workers: int,
    mode: str,
    measure: DensityMeasure,
    engine: str,
    enumerate_all: bool,
    per_world_limit: Optional[int],
) -> List[BlockOutput]:
    """Fan the plan's chunk grid out over the persistent pool.

    ``published`` must hold the plan's segments (see
    :class:`PublishedPlan`); ``engine`` must already be resolved.  At
    most ``workers`` blocks are kept in flight.
    """
    tasks = [
        (
            block_index,
            start,
            stop,
            published.graph_name,
            published.graph_layout,
            published.job_name,
            published.job_layout,
            None
            if plan.block_seeds is None
            else plan.block_seeds[block_index],
            mode,
            measure,
            engine,
            enumerate_all,
            per_world_limit,
        )
        for block_index, (start, stop) in enumerate(plan.blocks)
    ]
    window = min(workers, len(tasks))
    pool = _ensure_pool(window)
    # bounded dispatch: the persistent pool may be larger than this
    # call's `workers` (it grows but never shrinks), so cap the
    # number of outstanding tasks at `workers` instead of flooding
    # every pool process with work
    outputs: List[BlockOutput] = []
    pending: List = []
    for task in tasks:
        pending.append(pool.apply_async(_evaluate_block, (task,)))
        if len(pending) >= window:
            outputs.append(pending.pop(0).get())
    while pending:
        outputs.append(pending.pop(0).get())
    return outputs


def _run_blocks(
    plan: _RunPlan,
    workers: int,
    mode: str,
    measure: DensityMeasure,
    engine: str,
    enumerate_all: bool,
    per_world_limit: Optional[int],
) -> List[BlockOutput]:
    """Publish, dispatch once, and unlink (the one-shot fan-out)."""
    published = PublishedPlan.publish(plan)
    try:
        return dispatch_blocks(
            plan, published, workers, mode, measure, engine,
            enumerate_all, per_world_limit,
        )
    finally:
        published.close()


def _resolve_eval_engine(engine: str, sampler, measure: DensityMeasure) -> str:
    """Resolve ``auto`` exactly as the sequential estimators do."""
    from ..engine.estimators import resolve_engine

    return resolve_engine(engine, sampler, measure)


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def parallel_top_k_mpds(
    graph: UncertainGraph,
    k: int = 1,
    theta: int = 160,
    measure: Optional[DensityMeasure] = None,
    sampler=None,
    seed: Optional[int] = None,
    workers: Union[int, str] = "auto",
    enumerate_all: bool = True,
    per_world_limit: Optional[int] = 100_000,
    engine: str = "auto",
) -> MPDSResult:
    """Algorithm 1 fanned out over the shared-memory substrate.

    Thin shim over a one-shot :class:`repro.session.Session` query (use
    a session directly to reuse sampled worlds and published substrates
    across queries).  For a fixed ``seed`` (or seeded MC/LP/RSS
    ``sampler``) the result is **byte-identical** for every ``workers``
    value and equal to :func:`repro.core.mpds.top_k_mpds` with the same
    arguments -- the parent pre-partitions the sampler's continuous
    stream over the fixed chunk grid and merges per-block records
    through the sequential accumulation code (see the module docstring
    for the full determinism contract).  ``workers="auto"`` (default)
    sizes the fan-out to the host's usable cores
    (:func:`resolve_workers`) -- a 1-core host runs sequentially;
    ``workers=1`` short-circuits to the sequential estimator.
    """
    from ..session import Session

    return (
        Session(graph, engine=engine, cache_worlds=False)
        .query()
        .sampler(sampler, theta=theta, seed=seed)
        .measure(measure)
        .top_k(k)
        .workers(workers)
        .enumerate_all(enumerate_all)
        .per_world_limit(per_world_limit)
        .mpds()
    )


def _parallel_mpds_impl(
    graph: UncertainGraph,
    k: int,
    theta: int,
    measure: Optional[DensityMeasure],
    sampler,
    seed: Optional[int],
    workers: int,
    enumerate_all: bool,
    per_world_limit: Optional[int],
    engine: str,
) -> MPDSResult:
    """One-shot fan-out: plan, publish, dispatch, merge, unlink."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    measure = measure or EdgeDensity()
    plan = None
    if workers > 1:
        plan = _plan_run(graph, theta, sampler, seed)
    if plan is None:
        return top_k_mpds(
            graph,
            k=k,
            theta=theta,
            measure=measure,
            sampler=sampler,
            seed=seed,
            enumerate_all=enumerate_all,
            per_world_limit=per_world_limit,
            engine=engine,
        )
    outputs = _run_blocks(
        plan,
        workers,
        "mpds",
        measure,
        _resolve_eval_engine(engine, sampler, measure),
        enumerate_all,
        per_world_limit,
    )
    _replay_truncated(plan, outputs, measure, per_world_limit)
    return merge_mpds_blocks(plan.blocks, plan.weights, outputs, k)


def parallel_top_k_nds(
    graph: UncertainGraph,
    k: int = 1,
    min_size: int = 2,
    theta: int = 640,
    measure: Optional[DensityMeasure] = None,
    sampler=None,
    seed: Optional[int] = None,
    workers: Union[int, str] = "auto",
    engine: str = "auto",
) -> NDSResult:
    """Algorithm 5 fanned out over the shared-memory substrate.

    Thin shim over a one-shot :class:`repro.session.Session` query.
    Workers return their blocks' per-world maximum-sized densest
    subgraphs; the parent reassembles the transaction stream in grid
    order, re-runs the sequential accumulation and mines the merged
    database once -- byte-identical to
    :func:`repro.core.nds.top_k_nds` for a fixed seed, for every
    ``workers`` value.  ``workers="auto"`` (default) sizes the fan-out
    to the host's usable cores (:func:`resolve_workers`);
    ``workers=1`` short-circuits to the sequential estimator.
    """
    from ..session import Session

    return (
        Session(graph, engine=engine, cache_worlds=False)
        .query()
        .sampler(sampler, theta=theta, seed=seed)
        .measure(measure)
        .top_k(k)
        .min_size(min_size)
        .workers(workers)
        .nds()
    )


def _parallel_nds_impl(
    graph: UncertainGraph,
    k: int,
    min_size: int,
    theta: int,
    measure: Optional[DensityMeasure],
    sampler,
    seed: Optional[int],
    workers: int,
    engine: str,
) -> NDSResult:
    """One-shot fan-out: plan, publish, dispatch, merge, unlink."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if min_size < 1:
        raise ValueError(f"min_size (l_m) must be >= 1, got {min_size}")
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    measure = measure or EdgeDensity()
    plan = None
    if workers > 1:
        plan = _plan_run(graph, theta, sampler, seed)
    if plan is None:
        return top_k_nds(
            graph,
            k=k,
            min_size=min_size,
            theta=theta,
            measure=measure,
            sampler=sampler,
            seed=seed,
            engine=engine,
        )
    outputs = _run_blocks(
        plan,
        workers,
        "nds",
        measure,
        _resolve_eval_engine(engine, sampler, measure),
        True,
        None,
    )
    return merge_nds_blocks(plan.blocks, plan.weights, outputs, k, min_size)
