"""The ``repro-lint`` analyzer: per-checker fixtures, baseline, self-run.

Three layers of coverage:

* true-positive / true-negative fixture snippets per checker family
  (each hazard idiom is caught; each sanctioned idiom is not);
* machinery: fingerprint line-drift stability, baseline suppression
  round-trip, CLI exit codes;
* the live repo: ``src/repro`` is clean modulo the committed baseline,
  the baseline holds no stale entries, and deliberately re-introducing
  the PR 5 repr-cache-key bug in ``session.py`` is caught.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    DeterminismChecker,
    LockDisciplineChecker,
    ResourceLifecycleChecker,
    SpecConsistencyChecker,
    all_checkers,
    load_baseline,
    partition,
    run_analysis,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.core import SourceFile, run_checkers
from repro.analysis.locks import Ownership

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "analysis" / "baseline.json"


def _run(code, checker, label="pkg/fixture.py"):
    src = SourceFile(Path(label), label, text=code)
    return checker.run(src)


def _ids(findings):
    return [f.checker for f in findings]


# ----------------------------------------------------------------------
# determinism (DET1xx)
# ----------------------------------------------------------------------
class TestDeterminismChecker:
    def test_unseeded_module_rng_flagged(self):
        code = (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        )
        assert _ids(_run(code, DeterminismChecker())) == ["DET101"]

    def test_unseeded_random_constructor_flagged(self):
        code = "import random\nrng = random.Random()\n"
        assert _ids(_run(code, DeterminismChecker())) == ["DET101"]

    def test_seeded_rng_clean(self):
        code = (
            "import random\n"
            "def draw(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"
        )
        assert _run(code, DeterminismChecker()) == []

    def test_module_rng_as_value_flagged(self):
        code = (
            "import random\n"
            "def sample(rng=None):\n"
            "    rng = rng or random\n"
            "    return rng.random()\n"
        )
        assert "DET101" in _ids(_run(code, DeterminismChecker()))

    def test_sanctioned_seam_exempt(self):
        code = "import random\nrng = random.Random()\n"
        label = "src/repro/graph/generators.py"
        assert _run(code, DeterminismChecker(), label=label) == []

    def test_numpy_legacy_global_rng_flagged(self):
        code = (
            "import numpy as np\n"
            "def draw(n):\n"
            "    return np.random.rand(n)\n"
        )
        assert _ids(_run(code, DeterminismChecker())) == ["DET101"]

    def test_seeded_default_rng_clean(self):
        code = (
            "import numpy as np\n"
            "def draw(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert _run(code, DeterminismChecker()) == []

    def test_set_iteration_flagged(self):
        code = (
            "def merge(items):\n"
            "    out = []\n"
            "    for item in set(items):\n"
            "        out.append(item)\n"
            "    return out\n"
        )
        assert _ids(_run(code, DeterminismChecker())) == ["DET102"]

    def test_list_of_set_flagged(self):
        code = "def dedup(items):\n    return list(set(items))\n"
        assert _ids(_run(code, DeterminismChecker())) == ["DET102"]

    def test_sorted_set_and_membership_clean(self):
        code = (
            "def merge(items, probe):\n"
            "    ordered = sorted(set(items))\n"
            "    hit = probe in set(items)\n"
            "    deduped = list(dict.fromkeys(items))\n"
            "    return ordered, hit, deduped\n"
        )
        assert _run(code, DeterminismChecker()) == []

    def test_hash_call_flagged(self):
        code = "def seed_for(label):\n    return hash(label) & 0xFFFF\n"
        assert _ids(_run(code, DeterminismChecker())) == ["DET103"]

    def test_dunder_hash_call_flagged(self):
        code = "def seed_for(pair):\n    return pair.__hash__()\n"
        assert _ids(_run(code, DeterminismChecker())) == ["DET103"]

    def test_hash_inside_dunder_hash_clean(self):
        code = (
            "class Edge:\n"
            "    def __hash__(self):\n"
            "        return hash((self.u, self.v))\n"
        )
        assert _run(code, DeterminismChecker()) == []

    def test_repr_in_key_function_without_guard_flagged(self):
        code = (
            "def _cache_key(measure):\n"
            "    return (type(measure).__qualname__, repr(measure))\n"
        )
        findings = _run(code, DeterminismChecker())
        assert _ids(findings) == ["DET103"]
        assert "object.__repr__" in findings[0].message

    def test_repr_in_key_function_with_guard_clean(self):
        code = (
            "def _cache_key(measure):\n"
            "    cls = type(measure)\n"
            "    if cls.__repr__ is object.__repr__:\n"
            "        return None\n"
            "    return (cls.__qualname__, repr(measure))\n"
        )
        assert _run(code, DeterminismChecker()) == []

    def test_repr_tiebreak_outside_key_function_clean(self):
        code = (
            "def pick(remaining, degrees):\n"
            "    return min(remaining, key=lambda v: (degrees[v], repr(v)))\n"
        )
        assert _run(code, DeterminismChecker()) == []

    def test_clock_branching_flagged(self):
        code = (
            "import time\n"
            "def refine(deadline):\n"
            "    while time.monotonic() < deadline:\n"
            "        pass\n"
        )
        assert _ids(_run(code, DeterminismChecker())) == ["DET104"]

    def test_clock_telemetry_clean(self):
        code = (
            "import time\n"
            "def timed(fn, stats):\n"
            "    t0 = time.perf_counter()\n"
            "    out = fn()\n"
            "    stats['seconds'] += time.perf_counter() - t0\n"
            "    return out\n"
        )
        assert _run(code, DeterminismChecker()) == []


# ----------------------------------------------------------------------
# lock discipline (LOCK2xx)
# ----------------------------------------------------------------------
FIXTURE_LOCK_REGISTRY = {
    "fixture_locks.py": (
        Ownership(cls="Box", lock_attr="_lock", attrs=frozenset({"stats"})),
    ),
}


def _lock_run(code):
    checker = LockDisciplineChecker(registry=FIXTURE_LOCK_REGISTRY)
    return _run(code, checker, label="pkg/fixture_locks.py")


class TestLockDisciplineChecker:
    def test_unlocked_access_flagged(self):
        code = (
            "class Box:\n"
            "    def bump(self):\n"
            "        self.stats['x'] += 1\n"
        )
        findings = _lock_run(code)
        assert _ids(findings) == ["LOCK201"]
        assert "self.stats" in findings[0].message

    def test_locked_access_clean(self):
        code = (
            "class Box:\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.stats['x'] += 1\n"
        )
        assert _lock_run(code) == []

    def test_wrong_receiver_lock_flagged(self):
        """Holding *my* lock does not license touching *another*
        object's owned attribute -- the PR 10 serve.py finding."""
        code = (
            "class Box:\n"
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self.inner.stats\n"
        )
        findings = _lock_run(code)
        assert _ids(findings) == ["LOCK201"]
        assert "self.inner.stats" in findings[0].message

    def test_matching_foreign_receiver_clean(self):
        code = (
            "def drain(box):\n"
            "    with box._lock:\n"
            "        return dict(box.stats)\n"
        )
        assert _lock_run(code) == []

    def test_init_exempt(self):
        code = (
            "class Box:\n"
            "    def __init__(self):\n"
            "        self.stats = {}\n"
        )
        assert _lock_run(code) == []

    def test_unregistered_file_ignored(self):
        code = "class Box:\n    def bump(self):\n        self.stats = 1\n"
        checker = LockDisciplineChecker(registry=FIXTURE_LOCK_REGISTRY)
        assert _run(code, checker, label="pkg/other.py") == []


# ----------------------------------------------------------------------
# resource lifecycle (RES3xx)
# ----------------------------------------------------------------------
FIXTURE_CONTAINERS = {"fixture_res.py": frozenset({"_stores"})}


class TestResourceLifecycleChecker:
    def test_shm_leak_flagged(self):
        code = (
            "from multiprocessing import shared_memory\n"
            "def pack(size):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
            "    return size\n"
        )
        assert _ids(_run(code, ResourceLifecycleChecker())) == ["RES301"]

    def test_shm_returned_is_ownership_transfer(self):
        code = (
            "from multiprocessing import shared_memory\n"
            "def pack(size):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
            "    return shm, size\n"
        )
        assert _run(code, ResourceLifecycleChecker()) == []

    def test_shm_closed_in_finally_clean(self):
        code = (
            "from multiprocessing import shared_memory\n"
            "def probe(size):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
            "    try:\n"
            "        return bytes(shm.buf[:1])\n"
            "    finally:\n"
            "        shm.close()\n"
            "        shm.unlink()\n"
        )
        assert _run(code, ResourceLifecycleChecker()) == []

    def test_tempfile_leak_flagged(self):
        code = (
            "import tempfile\n"
            "def spill(data):\n"
            "    f = tempfile.NamedTemporaryFile(delete=False)\n"
            "    f.write(data)\n"
        )
        findings = _run(code, ResourceLifecycleChecker())
        assert _ids(findings) == ["RES302"]

    def test_tempfile_with_block_clean(self):
        code = (
            "import tempfile\n"
            "def spill(data):\n"
            "    with tempfile.NamedTemporaryFile() as f:\n"
            "        f.write(data)\n"
        )
        assert _run(code, ResourceLifecycleChecker()) == []

    def test_tempfile_on_self_is_owned(self):
        """The `_MaskPager` idiom: the holder object exposes close()."""
        code = (
            "import tempfile\n"
            "class Pager:\n"
            "    def __init__(self):\n"
            "        self._file = tempfile.NamedTemporaryFile()\n"
            "    def close(self):\n"
            "        self._file.close()\n"
        )
        assert _run(code, ResourceLifecycleChecker()) == []

    def test_mkstemp_atomic_replace_clean(self):
        """The `datasets/real.py` idiom: fdopen + replace/unlink."""
        code = (
            "import os, tempfile\n"
            "def atomic_write(payload, dest):\n"
            "    handle, temp_name = tempfile.mkstemp(dir='.')\n"
            "    try:\n"
            "        with os.fdopen(handle, 'wb') as fh:\n"
            "            fh.write(payload)\n"
            "        os.replace(temp_name, dest)\n"
            "    except BaseException:\n"
            "        os.unlink(temp_name)\n"
            "        raise\n"
        )
        assert _run(code, ResourceLifecycleChecker()) == []

    def test_container_cleared_without_close_flagged(self):
        code = (
            "class S:\n"
            "    def close(self):\n"
            "        self._stores.clear()\n"
        )
        checker = ResourceLifecycleChecker(containers=FIXTURE_CONTAINERS)
        findings = _run(code, checker, label="pkg/fixture_res.py")
        assert _ids(findings) == ["RES303"]

    def test_container_values_closed_then_cleared_clean(self):
        code = (
            "class S:\n"
            "    def close(self):\n"
            "        for store in self._stores.values():\n"
            "            store.close()\n"
            "        self._stores.clear()\n"
        )
        checker = ResourceLifecycleChecker(containers=FIXTURE_CONTAINERS)
        assert _run(code, checker, label="pkg/fixture_res.py") == []

    def test_captured_pop_with_close_clean(self):
        """The serve.py close_graph idiom: pop, then close the entry."""
        code = (
            "class S:\n"
            "    def evict(self, key):\n"
            "        entry = self._stores.pop(key, None)\n"
            "        if entry is not None:\n"
            "            entry.session.close()\n"
        )
        checker = ResourceLifecycleChecker(containers=FIXTURE_CONTAINERS)
        assert _run(code, checker, label="pkg/fixture_res.py") == []


# ----------------------------------------------------------------------
# spec-registry consistency (SPEC4xx)
# ----------------------------------------------------------------------
class TestSpecConsistencyChecker:
    def test_invalid_knob_value_flagged(self):
        code = 'DEFAULT = "mc:theta=0"\n'
        findings = _run(code, SpecConsistencyChecker())
        assert _ids(findings) == ["SPEC401"]

    def test_unknown_constructor_param_flagged(self):
        code = 'DEFAULT = "rss:depth=2"\n'
        findings = _run(code, SpecConsistencyChecker())
        assert _ids(findings) == ["SPEC402"]
        assert "max_depth" in findings[0].message

    def test_valid_specs_clean(self):
        code = (
            'A = "mc:theta=160,seed=7"\n'
            'B = "rss:r=4,max_depth=2"\n'
            'C = "pattern:psi=diamond"\n'
            'D = "clique:h=3"\n'
        )
        assert _run(code, SpecConsistencyChecker()) == []

    def test_fstring_fragments_skipped(self):
        code = (
            "def spec_for(seed):\n"
            '    return f"mc:theta=64,seed={seed}"\n'
        )
        assert _run(code, SpecConsistencyChecker()) == []

    def test_pytest_raises_block_skipped(self):
        code = (
            "import pytest\n"
            "def test_rejects():\n"
            "    with pytest.raises(ValueError):\n"
            '        parse("mc:theta=0")\n'
        )
        assert _run(code, SpecConsistencyChecker()) == []

    def test_stale_engine_vocabulary_in_docstring_flagged(self):
        code = (
            '"""Run the bench.\n\n'
            "``--engine {auto,python,vectorized}`` picks the engine\n"
            "used for the run; see the engine docs for details on the\n"
            'auto-detection order and its fallbacks.\n"""\n'
        )
        findings = _run(code, SpecConsistencyChecker())
        assert _ids(findings) == ["SPEC403"]

    def test_markdown_code_spans_checked(self):
        md = (
            "# usage\n\n"
            "Query with `mc:theta=0,seed=7` for a quick look.\n"
        )
        findings = _run(md, SpecConsistencyChecker(), label="pkg/USAGE.md")
        assert _ids(findings) == ["SPEC401"]

    def test_markdown_valid_spec_clean(self):
        md = "Sample with `mc:theta=160,seed=7`.\n\n```\nrss:r=4\n```\n"
        assert _run(md, SpecConsistencyChecker(), label="pkg/USAGE.md") == []


# ----------------------------------------------------------------------
# machinery: fingerprints, baseline round-trip, CLI
# ----------------------------------------------------------------------
HAZARD = "def merge(items):\n    return list(set(items))\n"


class TestBaselineAndCli:
    def _write_pkg(self, tmp_path, body=HAZARD):
        pkg = tmp_path / "pkg"
        pkg.mkdir(exist_ok=True)
        (pkg / "mod.py").write_text(body, encoding="utf-8")
        return pkg

    def test_fingerprints_survive_line_drift(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        before = run_analysis([pkg], root=tmp_path)
        self._write_pkg(tmp_path, "import os\n\n\n" + HAZARD)
        after = run_analysis([pkg], root=tmp_path)
        assert [f.fingerprint for f in before] == [
            f.fingerprint for f in after
        ]
        assert before[0].line != after[0].line

    def test_baseline_round_trip(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        findings = run_analysis([pkg], root=tmp_path)
        assert findings
        baseline_path = tmp_path / "analysis" / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        new, suppressed, stale = partition(
            run_analysis([pkg], root=tmp_path), baseline
        )
        assert new == [] and len(suppressed) == len(findings) and stale == []

    def test_new_hazard_not_suppressed(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        baseline_path = tmp_path / "analysis" / "baseline.json"
        write_baseline(baseline_path, run_analysis([pkg], root=tmp_path))
        self._write_pkg(
            tmp_path, HAZARD + "def merge2(items):\n    return list(set(items))\n"
        )
        new, suppressed, stale = partition(
            run_analysis([pkg], root=tmp_path),
            load_baseline(baseline_path),
        )
        assert len(new) == 1 and len(suppressed) == 1

    def test_stale_entries_reported(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        baseline_path = tmp_path / "analysis" / "baseline.json"
        write_baseline(baseline_path, run_analysis([pkg], root=tmp_path))
        self._write_pkg(tmp_path, "def merge(items):\n    return sorted(set(items))\n")
        new, suppressed, stale = partition(
            run_analysis([pkg], root=tmp_path),
            load_baseline(baseline_path),
        )
        assert new == [] and suppressed == [] and len(stale) == 1

    def test_cli_gate_and_write_baseline(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        args = ["--root", str(tmp_path), str(pkg)]
        assert lint_main(args) == 1  # hazard, no baseline yet
        assert lint_main(["--write-baseline"] + args) == 0
        assert lint_main(args) == 0  # suppressed now
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out

    def test_cli_json_output(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        code = lint_main(
            ["--root", str(tmp_path), "--no-baseline", "--json", str(pkg)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] and payload["new"][0]["checker"] == "DET102"

    def test_cli_select_filters_families(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        args = ["--root", str(tmp_path), "--no-baseline", str(pkg)]
        assert lint_main(["--select", "RES"] + args) == 0
        assert lint_main(["--select", "DET"] + args) == 1

    def test_cli_missing_path_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2


# ----------------------------------------------------------------------
# the live repo
# ----------------------------------------------------------------------
class TestSelfRun:
    def test_repro_package_clean_modulo_baseline(self):
        findings = run_analysis([REPO / "src" / "repro"], root=REPO)
        baseline = load_baseline(BASELINE)
        new, _suppressed, stale = partition(findings, baseline)
        assert new == [], "\n".join(f.render() for f in new)
        assert stale == [], "baseline holds entries for already-fixed code"

    def test_docs_clean(self):
        paths = [REPO / "README.md", REPO / "docs"]
        findings = run_analysis(paths, root=REPO)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_reintroducing_pr5_repr_cache_key_bug_is_caught(self):
        """Strip the default-repr guard from ``session._measure_key`` and
        the determinism checker must flag the ``repr(measure)`` key."""
        source = (REPO / "src" / "repro" / "session.py").read_text(
            encoding="utf-8"
        )
        guard = "if cls.__repr__ is object.__repr__:"
        assert guard in source, "PR 5 guard is gone from session.py?"
        clean = _run(source, DeterminismChecker(), label="pkg/session.py")
        assert [f for f in clean if f.checker == "DET103"] == []
        broken = source.replace(guard, "if False:")
        findings = _run(broken, DeterminismChecker(), label="pkg/session.py")
        det = [f for f in findings if f.checker == "DET103"]
        assert len(det) == 1
        assert "repr() of parameter 'measure'" in det[0].message

    def test_console_entry_points_registered(self):
        setup_text = (REPO / "setup.py").read_text(encoding="utf-8")
        assert "repro-lint = repro.analysis.cli:main" in setup_text

    def test_all_checkers_cover_four_families(self):
        families = {c.family for c in all_checkers()}
        assert families == {"DET", "LOCK", "RES", "SPEC"}
