"""Tests for networkx interoperability (repro.graph.convert)."""

from __future__ import annotations

import pytest

nx = pytest.importorskip("networkx")

from repro.graph.convert import (
    from_networkx,
    to_networkx,
    uncertain_from_networkx,
    uncertain_to_networkx,
)
from repro.graph.graph import Graph
from repro.graph.uncertain import UncertainGraph


class TestDeterministicRoundTrip:
    def test_to_networkx(self, triangle_graph):
        nxg = to_networkx(triangle_graph)
        assert set(nxg.nodes()) == {1, 2, 3}
        assert nxg.number_of_edges() == 3

    def test_round_trip_preserves_structure(self, triangle_graph):
        back = from_networkx(to_networkx(triangle_graph))
        assert back == triangle_graph

    def test_isolated_nodes_survive(self):
        graph = Graph(nodes=[1, 2, 3], edges=[(1, 2)])
        back = from_networkx(to_networkx(graph))
        assert back.node_set() == frozenset({1, 2, 3})
        assert back.number_of_edges() == 1

    def test_directed_rejected(self):
        with pytest.raises(ValueError):
            from_networkx(nx.DiGraph([(1, 2)]))

    def test_multigraph_rejected(self):
        with pytest.raises(ValueError):
            from_networkx(nx.MultiGraph([(1, 2), (1, 2)]))

    def test_from_arbitrary_networkx_graph(self):
        nxg = nx.karate_club_graph()
        graph = from_networkx(nxg)
        assert graph.number_of_nodes() == nxg.number_of_nodes()
        assert graph.number_of_edges() == nxg.number_of_edges()


class TestUncertainRoundTrip:
    def _sample(self) -> UncertainGraph:
        return UncertainGraph.from_weighted_edges(
            [("A", "B", 0.4), ("B", "C", 0.9), ("A", "C", 1.0)]
        )

    def test_probabilities_stored_as_attributes(self):
        nxg = uncertain_to_networkx(self._sample())
        assert nxg["A"]["B"]["probability"] == pytest.approx(0.4)

    def test_round_trip_preserves_probabilities(self):
        original = self._sample()
        back = uncertain_from_networkx(uncertain_to_networkx(original))
        assert back.number_of_edges() == original.number_of_edges()
        for u, v, p in original.weighted_edges():
            assert back.probability(u, v) == pytest.approx(p)

    def test_custom_probability_key(self):
        original = self._sample()
        nxg = uncertain_to_networkx(original, probability_key="w")
        back = uncertain_from_networkx(nxg, probability_key="w")
        assert back.probability("A", "B") == pytest.approx(0.4)

    def test_missing_probability_raises(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 2)
        with pytest.raises(ValueError):
            uncertain_from_networkx(nxg)

    def test_missing_probability_uses_default(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 2)
        back = uncertain_from_networkx(nxg, default_probability=0.5)
        assert back.probability(1, 2) == pytest.approx(0.5)

    def test_invalid_probability_rejected_on_conversion(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 2, probability=1.5)
        with pytest.raises(ValueError):
            uncertain_from_networkx(nxg)

    def test_isolated_nodes_survive(self):
        graph = UncertainGraph()
        graph.add_node("lonely")
        graph.add_edge("A", "B", 0.3)
        back = uncertain_from_networkx(uncertain_to_networkx(graph))
        assert "lonely" in back.nodes()
