"""Algorithm 3: enumerate all densest subgraphs via independent component sets.

After a maximum flow at ``alpha = rho*``, the SCC condensation of the
residual graph encodes every densest subgraph: by Corollary 2 of the paper,
densest subgraphs are in bijection with *independent component sets* --
sets of non-trivial SCCs (no source, no sink) that each contain at least one
graph node and are pairwise non-reachable in the SCC DAG.  The densest
subgraph of an independent set ``C`` is the union of graph nodes over
``C`` and all its descendants.

This module is shared by the edge-density enumeration ([46]), Algorithm 2
(cliques), and Algorithm 4 (patterns); the flow-network node universes
differ but the condensation logic is identical.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from ..flow.network import FlowNetwork, NetNode
from ..flow.scc import (
    condensation_successors,
    strongly_connected_components_indexed,
)

NodeSet = FrozenSet[Hashable]


class ComponentStructure:
    """The SCC condensation of a residual graph, minus source and sink SCCs.

    Attributes
    ----------
    components:
        Node sets (network labels) of the non-trivial components.
    graph_nodes:
        Per component, its members that are *graph* nodes (in ``V``).
    descendants / ancestors:
        Per component, the indices reachable from / reaching it in the DAG.
    """

    def __init__(
        self,
        components: List[FrozenSet[NetNode]],
        graph_nodes: List[FrozenSet[NetNode]],
        descendants: List[Set[int]],
        ancestors: List[Set[int]],
    ) -> None:
        self.components = components
        self.graph_nodes = graph_nodes
        self.descendants = descendants
        self.ancestors = ancestors
        # closure_nodes[i]: graph nodes of component i plus all descendants
        self.closure_nodes: List[FrozenSet[NetNode]] = []
        for i in range(len(components)):
            closure: Set[NetNode] = set(graph_nodes[i])
            for j in descendants[i]:
                closure |= graph_nodes[j]
            self.closure_nodes.append(frozenset(closure))

    def __len__(self) -> int:
        return len(self.components)


def build_component_structure_indexed(
    num_nodes: int,
    successors: Callable[[int], Iterable[int]],
    source_index: int,
    sink_index: int,
    to_label: Callable[[int], NetNode],
    is_graph_node: Callable[[NetNode], bool],
    vertices: Optional[Iterable[int]] = None,
) -> ComponentStructure:
    """Condense an integer-indexed residual graph (shared condensation core).

    ``successors`` yields the positive-residual successors of a node
    index; ``to_label`` translates a kept node index back to its network
    label.  Used directly by the CSR flow pipeline (where node indices
    *are* the representation) and via :func:`build_component_structure`
    for object :class:`FlowNetwork` residual graphs.

    ``vertices`` restricts the condensation to a subset of node indices;
    the subset must be closed under ``successors``.  (The CSR pipeline
    passes the non-coreachable-to-sink set: it is successor-closed and
    provably contains every kept component, so the condensation of the
    restriction equals the restriction of the condensation.)
    """
    raw_components = strongly_connected_components_indexed(
        num_nodes,
        range(num_nodes) if vertices is None else vertices,
        successors,
    )
    dag = condensation_successors(raw_components, successors)

    keep: List[int] = []
    for position, component in enumerate(raw_components):
        if source_index in component or sink_index in component:
            continue
        keep.append(position)
    renumber = {old: new for new, old in enumerate(keep)}

    components: List[FrozenSet[NetNode]] = []
    graph_nodes: List[FrozenSet[NetNode]] = []
    for old in keep:
        labels = frozenset(to_label(i) for i in raw_components[old])
        components.append(labels)
        graph_nodes.append(frozenset(l for l in labels if is_graph_node(l)))

    # restrict the DAG to kept components and compute reachability closures
    restricted: List[List[int]] = [[] for _ in keep]
    for old in keep:
        new = renumber[old]
        for child in dag[old]:
            if child in renumber:
                restricted[new].append(renumber[child])

    descendants: List[Set[int]] = [set() for _ in keep]
    # Tarjan emits components in reverse topological order: every DAG edge
    # goes from a later-emitted component to an earlier one, so iterating in
    # emission order processes children before parents.
    for new in range(len(keep)):
        acc: Set[int] = set()
        for child in restricted[new]:
            acc.add(child)
            acc |= descendants[child]
        descendants[new] = acc
    ancestors: List[Set[int]] = [set() for _ in keep]
    for new, desc in enumerate(descendants):
        for child in desc:
            ancestors[child].add(new)
    return ComponentStructure(components, graph_nodes, descendants, ancestors)


def build_component_structure(
    network: FlowNetwork,
    source: NetNode,
    sink: NetNode,
    is_graph_node: Callable[[NetNode], bool],
) -> ComponentStructure:
    """Condense the residual graph of ``network`` under its current flow.

    Residual arcs are those with positive residual capacity (line 7 of
    Algorithms 2/4: "excluding the SCCs of s and t").
    """
    return build_component_structure_indexed(
        network.number_of_nodes(),
        network.residual_successors,
        network.index_of(source),
        network.index_of(sink),
        network.label_of,
        is_graph_node,
    )


def enumerate_independent_sets(
    structure: ComponentStructure,
    limit: Optional[int] = None,
) -> Iterator[FrozenSet[NetNode]]:
    """Yield the graph-node set of every densest subgraph (Algorithm 3).

    Follows the recursion of Algorithm 3: grow an independent component set
    one component at a time; each chosen component must contain a graph
    node; after choosing ``C``, its descendants and ancestors (and ``C``
    itself) leave the candidate pool, and components already iterated over
    in the current call never return -- guaranteeing each independent set,
    hence each densest subgraph, is produced exactly once.

    ``limit`` truncates the enumeration (the number of densest subgraphs
    can be exponential; see Table VIII).
    """
    produced = 0
    eligible = [
        i for i in range(len(structure)) if structure.graph_nodes[i]
    ]

    def recurse(
        chosen_nodes: Set[NetNode], candidates: Sequence[int]
    ) -> Iterator[FrozenSet[NetNode]]:
        nonlocal produced
        for position, component in enumerate(candidates):
            if limit is not None and produced >= limit:
                return
            union = set(chosen_nodes)
            union |= structure.closure_nodes[component]
            produced += 1
            yield frozenset(union)
            blocked = structure.descendants[component] | structure.ancestors[component]
            remaining = [
                other
                for other in candidates[position + 1 :]
                if other not in blocked
            ]
            if remaining:
                yield from recurse(union, remaining)

    yield from recurse(set(), eligible)


def count_independent_sets(structure: ComponentStructure) -> int:
    """Count densest subgraphs without materialising their node sets."""
    eligible = [i for i in range(len(structure)) if structure.graph_nodes[i]]

    def recurse(candidates: Sequence[int]) -> int:
        total = 0
        for position, component in enumerate(candidates):
            total += 1
            blocked = structure.descendants[component] | structure.ancestors[component]
            remaining = [
                other
                for other in candidates[position + 1 :]
                if other not in blocked
            ]
            total += recurse(remaining)
        return total
    return recurse(eligible)
