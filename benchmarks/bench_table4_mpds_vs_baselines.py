"""Table IV: MPDS vs EDS / core / truss densest subgraph probabilities."""

from repro.experiments import format_table3_or_4, run_table4

from .conftest import BENCH_SMALL, BENCH_THETA_SMALL, emit


def test_table4(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table4(datasets=BENCH_SMALL, theta=BENCH_THETA_SMALL),
        rounds=1, iterations=1,
    )
    emit("table4_mpds_vs_baselines", format_table3_or_4(rows, "MPDS"))
    for row in rows:
        # paper shape: MPDS wins its own objective on every dataset and
        # EDS wins expected density (with the MPDS close behind)
        assert row.ours >= max(row.eds, row.core, row.truss) - 1e-9
        assert row.eds_expected_density >= row.ours_expected_density - 1e-9
