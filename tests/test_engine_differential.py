"""Cross-engine differential harness (the gate for widening the engine).

Sweeps random uncertain graphs across sampler x measure x seed x engine
and asserts the vectorised engine reproduces the pure-Python engine
byte-for-byte: identical candidate estimates, top-k rankings, per-world
densest counts, world counts, and sampler ``memory_units`` bookkeeping.
Every combination ``auto`` now routes to the vectorised path is covered,
so any future engine change that breaks replay fidelity fails here first.
"""

from __future__ import annotations

import random

import pytest

from repro.core.measures import CliqueDensity, EdgeDensity, PatternDensity
from repro.core.mpds import top_k_mpds
from repro.core.nds import top_k_nds
from repro.engine import (
    HAVE_NUMBA,
    VECTOR_ENGINES,
    VectorizedLazyPropagationSampler,
    VectorizedMonteCarloSampler,
    VectorizedStratifiedSampler,
    resolve_engine,
    use_jit,
)
from repro.graph.uncertain import UncertainGraph
from repro.patterns.pattern import Pattern
from repro.sampling import (
    LazyPropagationSampler,
    MonteCarloSampler,
    RecursiveStratifiedSampler,
)

from .conftest import random_uncertain_graph

SAMPLER_NAMES = ["default", "MC", "LP", "RSS"]
MPDS_MEASURES = ["edge", "3-clique", "2-star"]
NDS_MEASURES = ["edge", "3-clique", "2-star"]
SEEDS = [3, 11]

_SAMPLERS = {
    "MC": MonteCarloSampler,
    "LP": LazyPropagationSampler,
    "RSS": RecursiveStratifiedSampler,
}


def make_sampler(name: str, graph, seed: int):
    """An explicit pure-Python sampler, or None for the MC default."""
    if name == "default":
        return None
    return _SAMPLERS[name](graph, seed)


def make_measure(name: str):
    if name == "edge":
        return EdgeDensity()
    if name == "3-clique":
        return CliqueDensity(3)
    if name == "2-star":
        return PatternDensity(Pattern.two_star())
    raise ValueError(name)


def differential_graph() -> UncertainGraph:
    """A fixed small G(n, p) graph with mixed edge probabilities."""
    return random_uncertain_graph(
        random.Random(20230613), 9, 0.45, low=0.2, high=0.95
    )


class TestAutoCoversEverything:
    """``auto`` must route every sampler x measure combination fast."""

    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    @pytest.mark.parametrize("measure_name", MPDS_MEASURES)
    def test_auto_resolves_vectorized(self, sampler_name, measure_name):
        graph = differential_graph()
        sampler = make_sampler(sampler_name, graph, 1)
        measure = make_measure(measure_name)
        resolved = resolve_engine("auto", sampler, measure)
        assert resolved in VECTOR_ENGINES
        assert resolved == ("jit" if HAVE_NUMBA else "vectorized")

    @pytest.mark.parametrize(
        "vectorized_cls",
        [
            VectorizedMonteCarloSampler,
            VectorizedLazyPropagationSampler,
            VectorizedStratifiedSampler,
        ],
    )
    def test_auto_accepts_vectorized_twins(self, vectorized_cls):
        graph = differential_graph()
        sampler = vectorized_cls(graph, 1)
        assert resolve_engine("auto", sampler, EdgeDensity()) in (
            VECTOR_ENGINES
        )


class TestMPDSDifferential:
    """tau-hat must match byte-for-byte across engines, per combination."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("measure_name", MPDS_MEASURES)
    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_identical_estimates(self, sampler_name, measure_name, seed):
        graph = differential_graph()
        theta = 24 if measure_name == "2-star" else 36
        results = {}
        memory = {}
        for engine in ("python", "vectorized"):
            sampler = make_sampler(sampler_name, graph, seed)
            results[engine] = top_k_mpds(
                graph,
                k=3,
                theta=theta,
                measure=make_measure(measure_name),
                sampler=sampler,
                seed=seed,
                engine=engine,
            )
            memory[engine] = sampler.memory_units() if sampler else 0
        python, vector = results["python"], results["vectorized"]
        assert python.candidates == vector.candidates
        assert python.top == vector.top
        assert python.densest_counts == vector.densest_counts
        assert python.theta == vector.theta
        assert python.worlds_with_densest == vector.worlds_with_densest
        # the vectorised engine must leave the sampler's bookkeeping in
        # the exact state the pure-Python run would have
        assert memory["python"] == memory["vectorized"]
        assert python.replayed_worlds == 0


class TestJitTierDifferential:
    """Same sweep with the JIT tier forced on (interpreted without numba).

    ``engine='jit'`` resolves to ``'vectorized'`` on numba-less hosts, so
    forcing the tier via :func:`use_jit` is what actually exercises the
    flat-array ports inside every sampler x measure cell.
    """

    @pytest.mark.parametrize("measure_name", MPDS_MEASURES)
    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_identical_mpds(self, sampler_name, measure_name):
        graph = differential_graph()
        theta = 16 if measure_name == "2-star" else 24
        sampler = make_sampler(sampler_name, graph, 7)
        python = top_k_mpds(
            graph, k=3, theta=theta, measure=make_measure(measure_name),
            sampler=sampler, seed=7, engine="python",
        )
        sampler = make_sampler(sampler_name, graph, 7)
        with use_jit(True):
            tiered = top_k_mpds(
                graph, k=3, theta=theta, measure=make_measure(measure_name),
                sampler=sampler, seed=7, engine="jit",
            )
        assert python.candidates == tiered.candidates
        assert python.top == tiered.top
        assert python.densest_counts == tiered.densest_counts

    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_identical_nds(self, sampler_name):
        graph = differential_graph()
        sampler = make_sampler(sampler_name, graph, 7)
        python = top_k_nds(
            graph, k=3, min_size=2, theta=24, sampler=sampler, seed=7,
            engine="python",
        )
        sampler = make_sampler(sampler_name, graph, 7)
        with use_jit(True):
            tiered = top_k_nds(
                graph, k=3, min_size=2, theta=24, sampler=sampler, seed=7,
                engine="jit",
            )
        assert python.top == tiered.top
        assert python.transactions == tiered.transactions


class TestNDSDifferential:
    """gamma-hat (transactions + mined top-k) must match across engines."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("measure_name", NDS_MEASURES)
    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_identical_estimates(self, sampler_name, measure_name, seed):
        graph = differential_graph()
        results = {}
        memory = {}
        for engine in ("python", "vectorized"):
            sampler = make_sampler(sampler_name, graph, seed)
            results[engine] = top_k_nds(
                graph,
                k=3,
                min_size=2,
                theta=40,
                measure=make_measure(measure_name),
                sampler=sampler,
                seed=seed,
                engine=engine,
            )
            memory[engine] = sampler.memory_units() if sampler else 0
        python, vector = results["python"], results["vectorized"]
        assert python.top == vector.top
        assert python.transactions == vector.transactions
        assert python.theta == vector.theta
        assert memory["python"] == memory["vectorized"]


class TestTruncationReplay:
    """Forced ``per_world_limit`` truncation must keep identical subsets."""

    def truncating_graph(self) -> UncertainGraph:
        # two certain disjoint edges: every world has 3 tied densest sets
        # ({a,b}, {c,d}, their union), so per_world_limit=2 truncates
        return UncertainGraph.from_weighted_edges(
            [("a", "b", 1.0), ("c", "d", 1.0), ("a", "c", 0.5)]
        )

    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_truncated_subsets_identical(self, sampler_name):
        graph = self.truncating_graph()
        results = {}
        for engine in ("python", "vectorized"):
            sampler = make_sampler(sampler_name, graph, 1)
            results[engine] = top_k_mpds(
                graph,
                k=5,
                theta=20,
                sampler=sampler,
                seed=1,
                per_world_limit=2,
                engine=engine,
            )
        python, vector = results["python"], results["vectorized"]
        assert python.candidates == vector.candidates
        assert python.densest_counts == vector.densest_counts
        # the python engine never replays; the vectorised engine must
        # account one replay per world whose enumeration hit the limit
        assert python.replayed_worlds == 0
        truncated = sum(1 for count in vector.densest_counts if count >= 2)
        assert truncated > 0
        assert vector.replayed_worlds == truncated

    def test_clique_truncation_replay(self):
        # two certain disjoint triangles tie at 3-clique density 1/3
        graph = UncertainGraph.from_weighted_edges(
            [(1, 2, 1.0), (2, 3, 1.0), (1, 3, 1.0),
             (4, 5, 1.0), (5, 6, 1.0), (4, 6, 1.0),
             (3, 4, 0.5)]
        )
        measure = CliqueDensity(3)
        python = top_k_mpds(
            graph, k=5, theta=10, seed=2, measure=measure,
            per_world_limit=2, engine="python",
        )
        vector = top_k_mpds(
            graph, k=5, theta=10, seed=2, measure=measure,
            per_world_limit=2, engine="vectorized",
        )
        assert python.candidates == vector.candidates
        assert python.densest_counts == vector.densest_counts
        assert vector.replayed_worlds > 0


class TestSparseDisconnectedWorlds:
    """Sparse graphs sample mostly forests: the dense layer's tree
    closed-form and cross-component merging must stay byte-identical."""

    def sparse_graph(self) -> UncertainGraph:
        return random_uncertain_graph(
            random.Random(77), 14, 0.16, low=0.15, high=0.8
        )

    @pytest.mark.parametrize("seed", [1, 19])
    def test_identical_estimates(self, seed):
        graph = self.sparse_graph()
        results = {}
        for engine in ("python", "vectorized"):
            results[engine] = top_k_mpds(
                graph, k=4, theta=48, seed=seed, engine=engine
            )
        python, vector = results["python"], results["vectorized"]
        assert python.candidates == vector.candidates
        assert python.top == vector.top
        assert python.densest_counts == vector.densest_counts

    def test_identical_nds(self):
        graph = self.sparse_graph()
        python = top_k_nds(graph, k=3, theta=48, seed=5, engine="python")
        vector = top_k_nds(graph, k=3, theta=48, seed=5, engine="vectorized")
        assert python.top == vector.top
        assert python.transactions == vector.transactions


class TestNoWorldMaterialization:
    """The acceptance spy: vectorised EdgeDensity MPDS / NDS never leaves
    the array substrate -- zero ``to_graph`` / ``world_graph`` /
    ``subworld_graph`` calls on the sampled-world path."""

    @pytest.fixture
    def spy(self, monkeypatch):
        from repro.engine import indexed as indexed_module

        calls = {"to_graph": 0, "world_graph": 0, "subworld_graph": 0}
        original_to_graph = indexed_module.MaskWorld.to_graph
        original_world = indexed_module.IndexedGraph.world_graph
        original_subworld = indexed_module.IndexedGraph.subworld_graph

        def spy_to_graph(self):
            calls["to_graph"] += 1
            return original_to_graph(self)

        def spy_world(self, *args, **kwargs):
            calls["world_graph"] += 1
            return original_world(self, *args, **kwargs)

        def spy_subworld(self, *args, **kwargs):
            calls["subworld_graph"] += 1
            return original_subworld(self, *args, **kwargs)

        monkeypatch.setattr(indexed_module.MaskWorld, "to_graph", spy_to_graph)
        monkeypatch.setattr(
            indexed_module.IndexedGraph, "world_graph", spy_world
        )
        monkeypatch.setattr(
            indexed_module.IndexedGraph, "subworld_graph", spy_subworld
        )
        return calls

    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_mpds_edge_density_zero_materializations(self, spy, sampler_name):
        graph = differential_graph()
        sampler = make_sampler(sampler_name, graph, 3)
        result = top_k_mpds(
            graph, k=3, theta=30, sampler=sampler, seed=3, engine="vectorized"
        )
        assert result.theta == 30
        assert spy == {"to_graph": 0, "world_graph": 0, "subworld_graph": 0}

    def test_nds_edge_density_zero_materializations(self, spy):
        graph = differential_graph()
        result = top_k_nds(graph, k=3, theta=30, seed=3, engine="vectorized")
        assert result.theta == 30
        assert spy == {"to_graph": 0, "world_graph": 0, "subworld_graph": 0}

    def test_clique_density_materializes_only_filtered_cores(self, spy):
        """Clique worlds fall back only *past* the k-core pre-filter: the
        shrunken core is materialised, never the full sampled world."""
        graph = differential_graph()
        top_k_mpds(
            graph,
            k=2,
            theta=12,
            measure=CliqueDensity(3),
            seed=3,
            engine="vectorized",
        )
        assert spy["to_graph"] == 0
        assert spy["world_graph"] == 0
        assert spy["subworld_graph"] == 12

    def test_truncation_replay_is_the_only_materializer(self, spy):
        graph = UncertainGraph.from_weighted_edges(
            [("a", "b", 1.0), ("c", "d", 1.0), ("a", "c", 0.5)]
        )
        result = top_k_mpds(
            graph, k=5, theta=10, seed=1, per_world_limit=2,
            engine="vectorized",
        )
        assert result.replayed_worlds > 0
        assert spy["to_graph"] == result.replayed_worlds


class TestSamplerStreamDifferential:
    """Raw sampler output (graphs, weights, order) matches per seed."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    @pytest.mark.parametrize("name", ["MC", "LP", "RSS"])
    def test_worlds_identical(self, name, seed):
        graph = differential_graph()
        vectorized = {
            "MC": VectorizedMonteCarloSampler,
            "LP": VectorizedLazyPropagationSampler,
            "RSS": VectorizedStratifiedSampler,
        }[name]
        python_worlds = list(_SAMPLERS[name](graph, seed).worlds(25))
        vector_worlds = list(vectorized(graph, seed).worlds(25))
        assert len(python_worlds) == len(vector_worlds)
        for pw, vw in zip(python_worlds, vector_worlds):
            assert pw.weight == vw.weight
            assert pw.graph == vw.graph

    @pytest.mark.parametrize("name", ["LP", "RSS"])
    def test_adoption_continues_stream(self, name):
        """Adopting a sampler between calls continues its exact RNG stream.

        LP/RSS rebuild their per-call state (schedule, stratum tree), so
        the control is a pure-Python sampler making the same two calls.
        """
        graph = differential_graph()
        adopt = {
            "LP": VectorizedLazyPropagationSampler.from_lazy_propagation,
            "RSS": VectorizedStratifiedSampler.from_stratified,
        }[name]
        python = _SAMPLERS[name](graph, 42)
        first = [w.graph for w in python.worlds(10)]
        adopted = adopt(python)
        second = [w.graph for w in adopted.worlds(10)]
        control = _SAMPLERS[name](graph, 42)
        assert first == [w.graph for w in control.worlds(10)]
        assert second == [w.graph for w in control.worlds(10)]
