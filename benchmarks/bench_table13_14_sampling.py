"""Tables XIII/XIV: MC vs LP vs RSS (theta, time, memory)."""

from repro.datasets import make_biomine_like, make_intel_lab_like
from repro.experiments import format_table13_14, run_table13, run_table14

from .conftest import emit


def test_table13_mpds_sampling(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table13(
            loader=lambda: make_intel_lab_like(seed=2023),
            k=5, start_theta=20, max_theta=160,
        ),
        rounds=1, iterations=1,
    )
    emit("table13_sampling_mpds", format_table13_14(rows))
    mc, lp, _rss = rows
    # the paper's takeaway: MC needs the least memory at comparable theta
    assert mc.memory_units < lp.memory_units


def test_table14_nds_sampling(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table14(
            loader=lambda: make_biomine_like(n=250, seed=2023),
            k=5, start_theta=10, max_theta=80,
        ),
        rounds=1, iterations=1,
    )
    emit("table14_sampling_nds", format_table13_14(rows))
    mc = rows[0]
    assert mc.method == "MC"
    assert mc.memory_units == 0
