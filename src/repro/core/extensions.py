"""Extension density notions beyond the paper's three (Section II-A).

The paper notes that densest-subgraph probability "can follow any of the
density notions based on the real application demand" and its
introduction cites edge surplus / optimal quasi-cliques among them.  This
module supplies :class:`EdgeSurplus`, which plugs the edge-surplus
objective of Tsourakakis et al. (KDD 2013) into the same estimators:

>>> from repro import UncertainGraph, top_k_mpds
>>> from repro.core.extensions import EdgeSurplus
>>> g = UncertainGraph.from_weighted_edges(
...     [(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.2)])
>>> result = top_k_mpds(g, k=1, theta=64, measure=EdgeSurplus(), seed=7)
>>> sorted(result.best().nodes)
[1, 2, 3]

Caveats (also in DESIGN.md): maximising edge surplus is NP-hard with no
known algorithm enumerating *all* maximisers in polynomial time, so

* on worlds with at most ``exact_threshold`` nodes, ``all_densest``
  brute-forces the exact maximiser set, and Algorithm 1's guarantees
  (Theorems 2-3) apply unchanged;
* on larger worlds it falls back to the single GreedyOQC + LocalSearchOQC
  result, i.e. the estimator runs in the "one densest per world" mode the
  paper ablates in Table IX.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Union

from ..dense.oqc import (
    edge_surplus,
    exact_oqc,
    greedy_oqc,
    local_search_oqc,
)
from ..graph.graph import Graph, Node
from .measures import DensityMeasure, NodeSet


class EdgeSurplus(DensityMeasure):
    """Edge surplus f_alpha(S) = e(S) - alpha |S|(|S|-1)/2 as a measure.

    Parameters
    ----------
    alpha:
        Trade-off between edges and potential edges; the classic OQC
        default is 1/3.  Accepts a ``Fraction`` (kept exact) or a float
        (converted via ``Fraction(alpha).limit_denominator(10**6)``).
    exact_threshold:
        Worlds with at most this many nodes are solved by brute force,
        enumerating *all* maximisers; larger worlds use the heuristics
        and contribute a single maximiser.
    """

    def __init__(
        self,
        alpha: Union[Fraction, float] = Fraction(1, 3),
        exact_threshold: int = 12,
    ) -> None:
        if not isinstance(alpha, Fraction):
            alpha = Fraction(alpha).limit_denominator(10**6)
        if alpha <= 0 or alpha >= 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if exact_threshold < 0:
            raise ValueError(
                f"exact_threshold must be >= 0, got {exact_threshold}"
            )
        self.alpha = alpha
        self.exact_threshold = exact_threshold
        self.name = f"edge-surplus({alpha})"

    def _heuristic(self, world: Graph) -> Optional[NodeSet]:
        value, nodes = local_search_oqc(world, self.alpha)
        greedy_value, greedy_nodes = greedy_oqc(world, self.alpha)
        if greedy_value > value:
            value, nodes = greedy_value, greedy_nodes
        return nodes if value > 0 else None

    def all_densest(
        self, world: Graph, limit: Optional[int] = None
    ) -> List[NodeSet]:
        if world.number_of_nodes() <= self.exact_threshold:
            _best, maximisers = exact_oqc(world, self.alpha)
            if limit is not None:
                maximisers = maximisers[:limit]
            return maximisers
        one = self._heuristic(world)
        return [one] if one is not None else []

    def one_densest(self, world: Graph) -> Optional[NodeSet]:
        if world.number_of_nodes() <= self.exact_threshold:
            _best, maximisers = exact_oqc(world, self.alpha)
            return maximisers[0] if maximisers else None
        return self._heuristic(world)

    def maximum_sized_densest(self, world: Graph) -> Optional[NodeSet]:
        if world.number_of_nodes() <= self.exact_threshold:
            _best, maximisers = exact_oqc(world, self.alpha)
            if not maximisers:
                return None
            return max(maximisers, key=lambda nodes: (len(nodes), repr(nodes)))
        return self._heuristic(world)

    def density(self, world: Graph, nodes: Iterable[Node]) -> Fraction:
        return edge_surplus(world, frozenset(nodes), self.alpha)

    def __repr__(self) -> str:
        return (
            f"EdgeSurplus(alpha={self.alpha}, "
            f"exact_threshold={self.exact_threshold})"
        )
