"""Property-based tests for the max-flow substrate.

The flow engines sit under every exact densest-subgraph computation, so
they get the strongest cross-validation in the suite: on arbitrary random
networks, Dinic, FIFO push-relabel, and networkx's preflow-push must all
agree, and the classic LP-duality invariants (conservation, capacity,
max-flow = min-cut) must hold arc by arc.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.maxflow import max_flow, min_cut_source_side
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import push_relabel_max_flow

#: arbitrary small directed networks: arcs (tail, head, capacity) over
#: nodes 0..5, with node 0 the source and node 5 the sink
arc_lists = st.lists(
    st.tuples(
        st.integers(0, 5), st.integers(0, 5), st.integers(1, 16),
    ),
    min_size=1,
    max_size=16,
)


def _build(arcs) -> FlowNetwork:
    network = FlowNetwork()
    for label in range(6):
        network.add_node(label)
    for tail, head, capacity in arcs:
        if tail != head:
            network.add_arc(tail, head, capacity)
    return network


@settings(deadline=None, max_examples=60)
@given(arc_lists)
def test_dinic_matches_push_relabel(arcs):
    value_dinic = max_flow(_build(arcs), 0, 5)
    value_pr = push_relabel_max_flow(_build(arcs), 0, 5)
    assert value_dinic == value_pr


@settings(deadline=None, max_examples=30)
@given(arc_lists)
def test_dinic_matches_networkx(arcs):
    networkx = __import__("networkx")
    value = max_flow(_build(arcs), 0, 5)
    nx_graph = networkx.DiGraph()
    nx_graph.add_nodes_from(range(6))
    for tail, head, capacity in arcs:
        if tail == head:
            continue
        if nx_graph.has_edge(tail, head):
            nx_graph[tail][head]["capacity"] += capacity
        else:
            nx_graph.add_edge(tail, head, capacity=capacity)
    expected = networkx.maximum_flow_value(nx_graph, 0, 5)
    assert value == expected


@settings(deadline=None, max_examples=60)
@given(arc_lists)
def test_flow_conservation_and_capacity(arcs):
    network = _build(arcs)
    value = max_flow(network, 0, 5)
    source, sink = network.index_of(0), network.index_of(5)
    net_out = {index: 0 for index in range(network.number_of_nodes())}
    for arc in network.arcs():
        assert arc.flow <= arc.capacity
        net_out[arc.tail] += arc.flow
        net_out[arc.head] -= arc.flow
    # every arc pair contributes flow and -flow, so net_out double-counts
    assert net_out[source] == 2 * value
    assert net_out[sink] == -2 * value
    for index, balance in net_out.items():
        if index not in (source, sink):
            assert balance == 0


@settings(deadline=None, max_examples=60)
@given(arc_lists)
def test_max_flow_equals_min_cut(arcs):
    network = _build(arcs)
    value = max_flow(network, 0, 5)
    cut_side = min_cut_source_side(network, 0)
    assert 0 in cut_side and 5 not in cut_side
    side_indices = {network.index_of(label) for label in cut_side}
    crossing = sum(
        arc.capacity
        for arc in network.arcs()
        if arc.tail in side_indices and arc.head not in side_indices
        and arc.capacity > 0
    )
    # strong duality: the residual-reachability cut has capacity == flow.
    # arcs() yields both twins; reverse twins have capacity 0 and are
    # excluded above, so `crossing` counts original capacity only.
    assert crossing == value


@settings(deadline=None, max_examples=25)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 4), st.integers(0, 4),
            st.fractions(min_value=Fraction(1, 4), max_value=Fraction(4)),
        ),
        min_size=1, max_size=10,
    )
)
def test_fraction_capacities_exact(arcs):
    """The engines accept exact rational capacities (needed at alpha =
    rho*) and still agree."""
    network = FlowNetwork()
    for label in range(5):
        network.add_node(label)
    for tail, head, capacity in arcs:
        if tail != head:
            network.add_arc(tail, head, capacity)
    value_dinic = max_flow(network, 0, 4)

    network_pr = FlowNetwork()
    for label in range(5):
        network_pr.add_node(label)
    for tail, head, capacity in arcs:
        if tail != head:
            network_pr.add_arc(tail, head, capacity)
    value_pr = push_relabel_max_flow(network_pr, 0, 4)
    assert value_dinic == value_pr
    assert isinstance(value_dinic, (int, Fraction))
