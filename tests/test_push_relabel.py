"""Tests for the push-relabel max-flow engine (repro.flow.push_relabel)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.dense.goldberg import SINK, SOURCE, build_edge_density_network
from repro.flow.maxflow import max_flow, min_cut_source_side
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import push_relabel_max_flow

from .conftest import random_graph


class TestPushRelabelBasics:
    def test_single_arc(self):
        network = FlowNetwork()
        network.add_arc("s", "t", 5)
        assert push_relabel_max_flow(network, "s", "t") == 5

    def test_series_bottleneck(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 10)
        network.add_arc("a", "t", 3)
        assert push_relabel_max_flow(network, "s", "t") == 3

    def test_classic_diamond(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 10)
        network.add_arc("s", "b", 10)
        network.add_arc("a", "b", 1)
        network.add_arc("a", "t", 10)
        network.add_arc("b", "t", 10)
        assert push_relabel_max_flow(network, "s", "t") == 20

    def test_disconnected_sink(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 5)
        network.add_node("t")
        assert push_relabel_max_flow(network, "s", "t") == 0

    def test_fraction_capacities(self):
        network = FlowNetwork()
        network.add_arc("s", "a", Fraction(1, 3))
        network.add_arc("a", "t", Fraction(1, 2))
        assert push_relabel_max_flow(network, "s", "t") == Fraction(1, 3)

    def test_same_source_sink_rejected(self):
        network = FlowNetwork()
        network.add_arc("s", "t", 1)
        with pytest.raises(ValueError):
            push_relabel_max_flow(network, "s", "s")

    def test_excess_returns_to_source(self):
        """Flow conservation must hold at every internal node at the end."""
        network = FlowNetwork()
        network.add_arc("s", "a", 10)
        network.add_arc("a", "t", 2)  # 8 units must flow back to s
        assert push_relabel_max_flow(network, "s", "t") == 2
        a = network.index_of("a")
        net_out = sum(arc.flow for arc in network.arcs_from(a))
        assert net_out == 0


class TestAgainstDinic:
    def _random_network(self, rng, n):
        network = FlowNetwork()
        twin = FlowNetwork()
        for node in range(n):
            network.add_node(node)
            twin.add_node(node)
        for _ in range(rng.randint(5, 30)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            capacity = rng.randint(1, 12)
            network.add_arc(u, v, capacity)
            twin.add_arc(u, v, capacity)
        return network, twin

    def test_random_networks_match_dinic(self, rng):
        for trial in range(30):
            n = rng.randint(4, 12)
            network, twin = self._random_network(rng, n)
            dinic = max_flow(network, 0, n - 1)
            pr = push_relabel_max_flow(twin, 0, n - 1)
            assert dinic == pr, f"trial {trial}"

    def test_residual_min_cut_agrees(self, rng):
        """After push-relabel, the residual min-cut is a valid min cut."""
        for trial in range(15):
            n = rng.randint(4, 10)
            network, twin = self._random_network(rng, n)
            value = max_flow(network, 0, n - 1)
            push_relabel_max_flow(twin, 0, n - 1)
            side = set(min_cut_source_side(twin, 0))
            assert 0 in side and (n - 1) not in side
            crossing = sum(
                arc.capacity
                for arc in twin.arcs()
                if twin.label_of(arc.tail) in side
                and twin.label_of(arc.head) not in side
                and arc.capacity > 0
            )
            assert crossing == value, f"trial {trial}"


class TestOnGoldbergNetworks:
    def test_matches_dinic_on_density_networks(self, rng):
        """The paper's flow networks are the real workload: cross-check."""
        for trial in range(10):
            graph = random_graph(rng, rng.randint(4, 10), 0.45)
            if graph.number_of_edges() == 0:
                continue
            for alpha in (Fraction(1, 2), Fraction(1), Fraction(3, 2)):
                net_a = build_edge_density_network(graph, alpha)
                net_b = build_edge_density_network(graph, alpha)
                assert max_flow(net_a, SOURCE, SINK) == push_relabel_max_flow(
                    net_b, SOURCE, SINK
                ), f"trial {trial}, alpha {alpha}"
