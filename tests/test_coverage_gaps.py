"""Direct tests for helpers otherwise exercised only indirectly.

Covers the clique/pattern DDS baselines, the probabilistic-truss support
helper, the experiment-driver shared utilities, and the CLI parser
construction -- each with behavioural assertions, not just smoke calls.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.baselines.dds import (
    deterministic_clique_densest_subgraph,
    deterministic_densest_subgraph,
    deterministic_pattern_densest_subgraph,
)
from repro.baselines.probabilistic_truss import edge_gamma_support
from repro.cli import make_parser
from repro.experiments.common import (
    collect_max_densest_transactions,
    containment_probability,
    timed,
)
from repro.graph.graph import canonical_edge
from repro.graph.uncertain import UncertainGraph
from repro.patterns.pattern import Pattern


@pytest.fixture
def near_certain_triangle() -> UncertainGraph:
    """Triangle with probability ~1 plus one unlikely pendant edge."""
    return UncertainGraph.from_weighted_edges([
        ("A", "B", 1.0), ("B", "C", 1.0), ("A", "C", 1.0), ("C", "D", 0.1),
    ])


class TestDeterministicBaselines:
    def test_edge_dds_ignores_probabilities(self, near_certain_triangle):
        density, nodes = deterministic_densest_subgraph(near_certain_triangle)
        # deterministically, the whole 4-node graph has 4/4 = 1 = K3 density;
        # ties resolve to some densest set containing the triangle
        assert density == Fraction(1)
        assert {"A", "B", "C"} <= set(nodes)

    def test_clique_dds(self, near_certain_triangle):
        density, nodes = deterministic_clique_densest_subgraph(
            near_certain_triangle, 3
        )
        assert density == Fraction(1, 3)
        assert nodes == frozenset({"A", "B", "C"})

    def test_pattern_dds(self, near_certain_triangle):
        density, nodes = deterministic_pattern_densest_subgraph(
            near_certain_triangle, Pattern.two_star()
        )
        sub = near_certain_triangle.deterministic_version().subgraph(nodes)
        assert density > 0
        assert sub.number_of_nodes() == len(nodes)


class TestTrussSupport:
    def test_certain_triangle_supports_one_triangle(self, near_certain_triangle):
        alive = {
            canonical_edge(u, v)
            for u, v in near_certain_triangle.edges()
        }
        support = edge_gamma_support(
            near_certain_triangle, "A", "B", gamma=0.9, alive_edges=alive
        )
        assert support == 1  # exactly the certain triangle through C

    def test_high_gamma_kills_uncertain_support(self):
        graph = UncertainGraph.from_weighted_edges([
            ("A", "B", 1.0), ("B", "C", 0.2), ("A", "C", 0.2),
        ])
        alive = {canonical_edge(u, v) for u, v in graph.edges()}
        assert edge_gamma_support(graph, "A", "B", 0.9, alive) == 0
        # with a permissive gamma the 0.04-probability triangle counts
        assert edge_gamma_support(graph, "A", "B", 0.03, alive) == 1


class TestExperimentCommon:
    def test_timed_returns_result_and_duration(self):
        result, elapsed = timed(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0.0

    def test_transactions_and_containment(self, near_certain_triangle):
        transactions = collect_max_densest_transactions(
            near_certain_triangle, theta=64, seed=3
        )
        assert len(transactions) == 64
        gamma_abc = containment_probability({"A", "B", "C"}, transactions)
        assert gamma_abc > 0.5  # the certain triangle is almost always densest
        assert containment_probability({"Z"}, transactions) == 0.0

    def test_containment_of_empty_set_is_zero(self, near_certain_triangle):
        transactions = collect_max_densest_transactions(
            near_certain_triangle, theta=8, seed=3
        )
        assert containment_probability(set(), transactions) == 0.0


class TestCLIParser:
    def test_all_subcommands_present(self):
        parser = make_parser()
        args = parser.parse_args(["mpds", "g.txt", "--k", "3", "--workers", "2"])
        assert args.command == "mpds"
        assert args.workers == 2
        args = parser.parse_args(["nds", "g.txt", "--min-size", "4"])
        assert args.min_size == 4
        args = parser.parse_args(["exact", "g.txt"])
        assert args.command == "exact"
        args = parser.parse_args(["stats", "g.txt"])
        assert args.command == "stats"

    def test_density_choices_validated(self):
        parser = make_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["mpds", "g.txt", "--density", "nonsense"])

    def test_pattern_choices_validated(self):
        parser = make_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["mpds", "g.txt", "--pattern", "pentagon"])
