"""Greedy++: iterated load-aware peeling for the densest subgraph.

Charikar's single peeling pass (``repro.dense.peeling``) guarantees a
1/2-approximation for edge density.  Greedy++ (Boob et al., WWW 2020)
repeats the pass ``T`` times, carrying a per-node *load* across rounds: in
round ``t`` the next node removed is the one minimising ``load(v) +
deg(v)``, and its load increases by its current degree.  The best prefix
density over all rounds converges to the true optimum ``rho*`` as ``T``
grows (it is the MWU view of the densest-subgraph LP dual).

The paper's exact engines make Greedy++ unnecessary for correctness; it is
provided as the natural fast *anytime* alternative (future-work flavoured
ablation, mirroring what kClist++ [57] does for cliques), and is
cross-checked against the flow-exact optimum in tests and in
``benchmarks/bench_ablation_greedypp.py``.

The generalisation to h-cliques and patterns replaces ``deg(v)`` by the
instance degree (number of instances containing ``v``), recomputed on the
peeled remainder each round.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cliques.enumeration import enumerate_cliques
from ..graph.graph import Graph, Node
from ..patterns.matching import enumerate_instances, instance_nodes
from ..patterns.pattern import Pattern


@dataclass(frozen=True)
class GreedyPPResult:
    """Best subgraph found by Greedy++.

    ``density`` is a certified lower bound on rho* (the returned set
    achieves it exactly); ``rounds`` the number of peeling passes run;
    ``history`` the best density after each round (non-decreasing), useful
    for convergence plots.
    """

    density: Fraction
    nodes: FrozenSet[Node]
    rounds: int
    history: Tuple[Fraction, ...]


def _edge_peel_round(
    graph: Graph, load: Dict[Node, int]
) -> Tuple[Fraction, FrozenSet[Node]]:
    """One load-aware peeling pass; returns the best prefix and updates loads.

    Uses a lazy-deletion heap keyed by ``load + degree``; each removal
    updates its neighbours' keys.  Runs in O((n + m) log n).
    """
    degrees = {node: graph.degree(node) for node in graph}
    heap: List[Tuple[int, int, Node]] = []
    counter = 0
    for node in graph:
        heap.append((load[node] + degrees[node], counter, node))
        counter += 1
    heapq.heapify(heap)
    removed: set = set()
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    remaining_edges = m
    remaining_nodes = n
    removal_order: List[Node] = []
    best = graph.edge_density()
    best_cut = 0  # removals performed before the best suffix
    step = 0
    while remaining_nodes > 0:
        key, _tie, node = heapq.heappop(heap)
        if node in removed or key != load[node] + degrees[node]:
            continue
        removed.add(node)
        removal_order.append(node)
        load[node] += degrees[node]
        remaining_edges -= degrees[node]
        remaining_nodes -= 1
        step += 1
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            degrees[neighbor] -= 1
            counter += 1
            heapq.heappush(
                heap, (load[neighbor] + degrees[neighbor], counter, neighbor)
            )
        if remaining_nodes > 0:
            density = Fraction(remaining_edges, remaining_nodes)
            if density > best:
                best = density
                best_cut = step
    survivors = frozenset(removal_order[best_cut:])
    return best, survivors


def greedypp_densest(graph: Graph, rounds: int = 16) -> GreedyPPResult:
    """Run Greedy++ for edge density.

    ``rounds = 1`` is exactly Charikar's peeling (1/2-approximation);
    larger values tighten towards rho*.  Empty graphs return density 0.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if graph.number_of_edges() == 0:
        return GreedyPPResult(Fraction(0), frozenset(), 0, ())
    load: Dict[Node, int] = {node: 0 for node in graph}
    best = Fraction(0)
    best_nodes: FrozenSet[Node] = frozenset()
    history: List[Fraction] = []
    for _ in range(rounds):
        density, nodes = _edge_peel_round(graph, load)
        if density > best:
            best = density
            best_nodes = nodes
        history.append(best)
    return GreedyPPResult(best, best_nodes, rounds, tuple(history))


def _instance_peel_round(
    graph: Graph,
    instances: Sequence[Tuple[Node, ...]],
    load: Dict[Node, float],
) -> Tuple[Fraction, FrozenSet[Node]]:
    """One load-aware peeling pass over an instance hypergraph.

    Peels the node minimising ``load + instance-degree``; removing a node
    kills every instance containing it.  Quadratic in the worst case but the
    instance lists here are world-core sized.
    """
    membership: Dict[Node, List[int]] = {node: [] for node in graph}
    for idx, instance in enumerate(instances):
        # dedup in instance order (set iteration is hash-randomized for
        # str labels, and heap tie-break counters downstream depend on it)
        for member in dict.fromkeys(instance):
            membership[member].append(idx)
    alive_instances = [True] * len(instances)
    degree = {node: len(membership[node]) for node in graph}
    removed: set = set()
    remaining = len(instances)
    removal_order: List[Node] = []
    n = graph.number_of_nodes()
    best = Fraction(len(instances), n) if n else Fraction(0)
    best_cut = 0
    heap: List[Tuple[float, int, Node]] = []
    counter = 0
    for node in graph:
        heap.append((load[node] + degree[node], counter, node))
        counter += 1
    heapq.heapify(heap)
    step = 0
    alive_nodes = n
    while alive_nodes > 0:
        key, _tie, node = heapq.heappop(heap)
        if node in removed or key != load[node] + degree[node]:
            continue
        removed.add(node)
        removal_order.append(node)
        load[node] += degree[node]
        step += 1
        alive_nodes -= 1
        for idx in membership[node]:
            if not alive_instances[idx]:
                continue
            alive_instances[idx] = False
            remaining -= 1
            for member in dict.fromkeys(instances[idx]):
                if member in removed or member == node:
                    continue
                degree[member] -= 1
                counter += 1
                heapq.heappush(heap, (load[member] + degree[member], counter, member))
        if alive_nodes > 0:
            density = Fraction(remaining, alive_nodes)
            if density > best:
                best = density
                best_cut = step
    survivors = frozenset(removal_order[best_cut:])
    return best, survivors


def greedypp_from_instances(
    graph: Graph,
    instances: Sequence[Tuple[Node, ...]],
    rounds: int = 16,
) -> GreedyPPResult:
    """Greedy++ over an explicit instance hypergraph (cliques, patterns)."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not instances or graph.number_of_nodes() == 0:
        return GreedyPPResult(Fraction(0), frozenset(), 0, ())
    load: Dict[Node, float] = {node: 0.0 for node in graph}
    best = Fraction(0)
    best_nodes: FrozenSet[Node] = frozenset()
    history: List[Fraction] = []
    for _ in range(rounds):
        density, nodes = _instance_peel_round(graph, instances, load)
        if density > best:
            best = density
            best_nodes = nodes
        history.append(best)
    return GreedyPPResult(best, best_nodes, rounds, tuple(history))


def greedypp_clique_densest(graph: Graph, h: int, rounds: int = 16) -> GreedyPPResult:
    """Greedy++ for h-clique density (Definition 2)."""
    if h < 2:
        raise ValueError(f"h must be >= 2, got {h}")
    if h == 2:
        return greedypp_densest(graph, rounds)
    return greedypp_from_instances(graph, list(enumerate_cliques(graph, h)), rounds)


def greedypp_pattern_densest(
    graph: Graph, pattern: Pattern, rounds: int = 16
) -> GreedyPPResult:
    """Greedy++ for pattern density (Definition 3)."""
    instances = [
        tuple(instance_nodes(inst)) for inst in enumerate_instances(graph, pattern)
    ]
    return greedypp_from_instances(graph, instances, rounds)
