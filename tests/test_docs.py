"""Documentation stays honest: every import shown in docs/API.md resolves,
and every experiment name referenced in docs exists in the registry."""

from __future__ import annotations

import re
from pathlib import Path

DOCS = Path(__file__).parent.parent / "docs" / "API.md"

IMPORT_RE = re.compile(
    r"^from (repro[\w.]*) import \(?([\w, \n]+?)\)?(?:\s*#.*)?$",
    re.MULTILINE,
)


def _documented_imports():
    """Yield (module, name) for every `from repro... import ...` in API.md."""
    text = DOCS.read_text(encoding="utf-8")
    # join parenthesised multi-line imports before matching
    joined = re.sub(r"\(\s*\n", "(", text)
    joined = re.sub(r",\s*\n\s*", ", ", joined)
    for match in IMPORT_RE.finditer(joined):
        module, names = match.groups()
        for name in names.split(","):
            name = name.strip().rstrip(")")
            if name:
                yield module, name


def test_api_md_exists():
    assert DOCS.exists()


def test_every_documented_import_resolves():
    import importlib

    pairs = list(_documented_imports())
    assert len(pairs) > 40, "expected a substantial documented API surface"
    for module_name, attribute in pairs:
        module = importlib.import_module(module_name)
        assert hasattr(module, attribute), (
            f"docs/API.md documents {module_name}.{attribute}, "
            "which does not exist"
        )


def test_documented_experiment_names_exist():
    from repro.experiments.registry import EXPERIMENTS

    text = DOCS.read_text(encoding="utf-8")
    for name in re.findall(r'EXPERIMENTS\["(\w+)"\]', text):
        assert name in EXPERIMENTS
    for name in re.findall(r"repro-mpds reproduce (\w+)", text):
        assert name in EXPERIMENTS
