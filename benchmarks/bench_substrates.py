"""Micro-benchmarks of the substrate algorithms (real multi-round timing).

These are the per-world inner loops of Algorithms 1 and 5, so their
throughput determines the whole system's; pytest-benchmark gives them
proper statistical treatment (multiple rounds).
"""

import random

from repro.cliques.enumeration import count_cliques
from repro.dense.all_densest import (
    all_densest_subgraphs,
    maximum_sized_densest_subgraph,
)
from repro.dense.goldberg import densest_subgraph
from repro.dense.peeling import peel_edge_density
from repro.graph.generators import barabasi_albert
from repro.itemsets.tfp import top_k_closed_itemsets
from repro.patterns.matching import count_instances
from repro.patterns.pattern import Pattern


def _world(n=150, m=4, seed=7):
    return barabasi_albert(n, m, random.Random(seed))


def test_bench_peeling(benchmark):
    world = _world()
    result = benchmark(lambda: peel_edge_density(world))
    assert result.density > 0


def test_bench_goldberg_exact(benchmark):
    world = _world()
    result = benchmark(lambda: densest_subgraph(world))
    assert result.density > 0


def test_bench_all_densest(benchmark):
    world = _world()
    result = benchmark(lambda: all_densest_subgraphs(world))
    assert result


def test_bench_maximum_sized(benchmark):
    world = _world()
    density, nodes = benchmark(lambda: maximum_sized_densest_subgraph(world))
    assert nodes


def test_bench_triangle_listing(benchmark):
    world = _world(n=250)
    count = benchmark(lambda: count_cliques(world, 3))
    assert count >= 0


def test_bench_pattern_matching(benchmark):
    world = _world(n=80)
    pattern = Pattern.diamond()
    count = benchmark(lambda: count_instances(world, pattern))
    assert count >= 0


def test_bench_tfp(benchmark):
    rng = random.Random(11)
    transactions = [
        rng.sample(range(30), rng.randint(3, 10)) for _ in range(400)
    ]
    result = benchmark(lambda: top_k_closed_itemsets(transactions, 10, 2))
    assert len(result) == 10
