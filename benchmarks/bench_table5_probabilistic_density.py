"""Table V: probabilistic density (Eq. 19) of MPDS/NDS vs baselines."""

from repro.experiments import format_cohesiveness, run_cohesiveness

from .conftest import BENCH_LARGE, BENCH_SMALL, BENCH_THETA_LARGE, emit


def test_table5(benchmark):
    datasets = {
        "KarateClub": BENCH_SMALL["KarateClub"],
        "LastFM": BENCH_SMALL["LastFM"],
        "Biomine": BENCH_LARGE["Biomine"],
        "Twitter": BENCH_LARGE["Twitter"],
    }
    rows = benchmark.pedantic(
        lambda: run_cohesiveness("PD", datasets=datasets,
                                 theta=BENCH_THETA_LARGE),
        rounds=1, iterations=1,
    )
    emit("table5_probabilistic_density", format_cohesiveness(rows))
    for row in rows:
        # robust paper shape: ours beats the EDS everywhere
        assert row.ours >= row.eds - 1e-9, row.dataset
