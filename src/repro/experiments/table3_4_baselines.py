"""Tables III & IV: MPDS / NDS versus EDS, (k,eta)-core, (k,gamma)-truss.

Table III (larger datasets): densest subgraph *containment* probabilities
of the NDS vs. the baselines, plus expected densities of NDS and EDS.
Table IV (smaller datasets): densest subgraph probabilities of the MPDS
vs. the baselines, plus expected densities of MPDS and EDS.

Expected shapes (paper): NDS containment ~1 with the eta-core comparable;
EDS and gamma-truss far lower; the MPDS has the highest DSP on the small
datasets while baselines sit near 0; EDS achieves the best expected
density with the MPDS/NDS close behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines.eds import expected_densest_subgraph
from ..baselines.probabilistic_core import innermost_eta_core
from ..baselines.probabilistic_truss import innermost_gamma_truss
from ..core.mpds import top_k_mpds
from ..core.nds import top_k_nds
from ..graph.uncertain import UncertainGraph
from .common import (
    DEFAULT_THETA,
    LARGE_DATASETS,
    SMALL_DATASETS,
    collect_max_densest_transactions,
    containment_probability,
    format_table,
)

ETA = 0.1
GAMMA = 0.1


@dataclass
class BaselineComparisonRow:
    """One dataset row of Table III or IV."""

    dataset: str
    ours: float           # containment probability (III) or DSP (IV)
    eds: float
    core: float
    truss: float
    ours_expected_density: float
    eds_expected_density: float


def run_table3(
    datasets: Optional[Dict[str, Callable[[], UncertainGraph]]] = None,
    theta: Optional[int] = None,
    seed: int = 7,
) -> List[BaselineComparisonRow]:
    """Containment probabilities of NDS vs baselines (larger datasets)."""
    datasets = datasets or {
        name: fn for name, fn in LARGE_DATASETS.items() if name != "Friendster"
    }
    rows: List[BaselineComparisonRow] = []
    for name, loader in datasets.items():
        graph = loader()
        t = theta or DEFAULT_THETA.get(name, 64)
        transactions = collect_max_densest_transactions(graph, t, seed=seed)
        nds = top_k_nds(graph, k=1, min_size=2, theta=t, seed=seed)
        nds_nodes = nds.best().nodes if nds.top else frozenset()
        eds = expected_densest_subgraph(graph)
        _k_core, core_nodes = innermost_eta_core(graph, ETA)
        _k_truss, truss_nodes = innermost_gamma_truss(graph, GAMMA)
        rows.append(BaselineComparisonRow(
            dataset=name,
            ours=containment_probability(nds_nodes, transactions),
            eds=containment_probability(eds.nodes, transactions),
            core=containment_probability(core_nodes, transactions),
            truss=containment_probability(truss_nodes, transactions),
            ours_expected_density=graph.expected_edge_density(nds_nodes),
            eds_expected_density=graph.expected_edge_density(eds.nodes),
        ))
    return rows


def run_table4(
    datasets: Optional[Dict[str, Callable[[], UncertainGraph]]] = None,
    theta: Optional[int] = None,
    seed: int = 7,
) -> List[BaselineComparisonRow]:
    """Densest subgraph probabilities of MPDS vs baselines (small datasets)."""
    datasets = datasets or SMALL_DATASETS
    rows: List[BaselineComparisonRow] = []
    for name, loader in datasets.items():
        graph = loader()
        t = theta or DEFAULT_THETA.get(name, 160)
        result = top_k_mpds(graph, k=1, theta=t, seed=seed)
        mpds_nodes = result.best().nodes if result.top else frozenset()
        eds = expected_densest_subgraph(graph)
        _k_core, core_nodes = innermost_eta_core(graph, ETA)
        _k_truss, truss_nodes = innermost_gamma_truss(graph, GAMMA)
        candidates = result.candidates
        rows.append(BaselineComparisonRow(
            dataset=name,
            ours=result.best().probability if result.top else 0.0,
            eds=candidates.get(eds.nodes, 0.0),
            core=candidates.get(core_nodes, 0.0),
            truss=candidates.get(truss_nodes, 0.0),
            ours_expected_density=graph.expected_edge_density(mpds_nodes),
            eds_expected_density=graph.expected_edge_density(eds.nodes),
        ))
    return rows


def format_table3_or_4(rows: List[BaselineComparisonRow], label: str) -> str:
    """Render either table's rows."""
    headers = [
        "Dataset", label, "EDS", "Core", "Truss",
        "ExpDens(ours)", "ExpDens(EDS)",
    ]
    body = [
        [r.dataset, r.ours, r.eds, r.core, r.truss,
         r.ours_expected_density, r.eds_expected_density]
        for r in rows
    ]
    return format_table(headers, body)
