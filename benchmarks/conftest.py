"""Shared infrastructure for the benchmark suite.

Each bench regenerates one table / figure of the paper (see DESIGN.md's
per-experiment index), prints it, and archives it under
``benchmarks/results/``.  Dataset sizes here are the *bench-scale*
variants: large enough to show the paper's shapes, small enough that the
whole suite finishes in minutes of pure Python.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import (
    karate_club_uncertain,
    make_biomine_like,
    make_friendster_like,
    make_homo_sapiens_like,
    make_intel_lab_like,
    make_lastfm_like,
    make_twitter_like,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: bench-scale dataset loaders (smaller than the library defaults)
BENCH_SMALL = {
    "KarateClub": lambda: karate_club_uncertain(seed=2023),
    "IntelLab": lambda: make_intel_lab_like(seed=2023),
    "LastFM": lambda: make_lastfm_like(n=250, seed=2023),
}
BENCH_LARGE = {
    "HomoSapiens": lambda: make_homo_sapiens_like(n=250, seed=2023),
    "Biomine": lambda: make_biomine_like(n=300, seed=2023),
    "Twitter": lambda: make_twitter_like(n=350, seed=2023),
}
BENCH_FRIENDSTER = lambda: make_friendster_like(n=400, seed=2023)

#: bench-scale sample counts
BENCH_THETA_SMALL = 40
BENCH_THETA_LARGE = 16


def emit(name: str, text: str) -> None:
    """Print a rendered table and archive it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture
def emit_result():
    """Fixture handing benches the emit helper."""
    return emit
