"""Table I: the running example, recomputed from first principles.

For the Fig. 1 uncertain graph: per-possible-world edge densities of six
node sets, their expected edge densities (EED), and their densest subgraph
probabilities (DSP) -- all by exact possible-world enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.exact import exact_candidate_probabilities
from ..core.measures import EdgeDensity
from ..datasets.paper_examples import figure1_graph
from .common import format_table

NODE_SETS: List[Tuple[str, ...]] = [
    ("A", "B"),
    ("A", "C"),
    ("B", "D"),
    ("A", "B", "C"),
    ("A", "B", "D"),
    ("A", "B", "C", "D"),
]


@dataclass
class Table1Result:
    """Rows of Table I: per-world densities plus the EED / DSP summary."""

    world_rows: List[List[object]]
    eed: Dict[Tuple[str, ...], float]
    dsp: Dict[Tuple[str, ...], float]


def run_table1() -> Table1Result:
    """Recompute every cell of Table I exactly."""
    graph = figure1_graph()
    measure = EdgeDensity()
    world_rows: List[List[object]] = []
    eed = {s: 0.0 for s in NODE_SETS}
    for index, (world, probability) in enumerate(graph.possible_worlds(), 1):
        row: List[object] = [f"G{index}:{probability:.3f}"]
        for node_set in NODE_SETS:
            density = float(measure.density(world, node_set))
            row.append(round(density, 2))
            eed[node_set] += probability * density
        world_rows.append(row)
    taus = exact_candidate_probabilities(graph, measure)
    dsp = {s: taus.get(frozenset(s), 0.0) for s in NODE_SETS}
    return Table1Result(world_rows, eed, dsp)


def format_table1(result: Table1Result) -> str:
    """Render Table I like the paper (worlds, then EED and DSP rows)."""
    headers = ["PW:Pr."] + ["{" + ",".join(s) + "}" for s in NODE_SETS]
    rows = list(result.world_rows)
    rows.append(["EED"] + [round(result.eed[s], 2) for s in NODE_SETS])
    rows.append(["DSP"] + [round(result.dsp[s], 2) for s in NODE_SETS])
    return format_table(headers, rows)
