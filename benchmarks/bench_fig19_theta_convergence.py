"""Fig. 19: convergence of the returned top-k as theta doubles."""

from repro.datasets import make_biomine_like, make_intel_lab_like
from repro.experiments import format_fig19, run_fig19

from .conftest import emit


def test_fig19a_mpds(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig19(
            loader=lambda: make_intel_lab_like(seed=2023),
            mode="mpds", k=5, thetas=(20, 40, 80, 160),
        ),
        rounds=1, iterations=1,
    )
    emit("fig19a_theta_mpds", format_fig19(points))
    # runtime grows ~linearly with theta; similarity trends upward
    assert points[-1].seconds > points[0].seconds
    assert points[-1].similarity >= points[1].similarity - 0.15


def test_fig19b_nds(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig19(
            loader=lambda: make_biomine_like(n=250, seed=2023),
            mode="nds", k=5, thetas=(20, 40, 80),
        ),
        rounds=1, iterations=1,
    )
    emit("fig19b_theta_nds", format_fig19(points))
    assert points[-1].similarity > 0.5
