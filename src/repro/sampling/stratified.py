"""Recursive Stratified Sampling (RSS) [55] (Section III-A remark 2).

RSS partitions the possible-world space by the states of ``r`` selected
edges ``e_1 .. e_r`` into ``r + 1`` strata:

* stratum ``i`` (1 <= i <= r): edges ``e_1 .. e_{i-1}`` absent, ``e_i``
  present, later edges free;
* stratum ``0``: all ``r`` selected edges absent.

Stratum probabilities sum to 1, and the estimator combines per-stratum
sample means weighted by stratum probability -- so each world in stratum
``S`` carries weight ``Pr(S) / theta_S``.  Strata with large allocations
recurse on their free edges, up to ``max_depth``.

Edge selection follows the paper's observation: a BFS-style pick starting
from the highest-degree node.  The paper finds the variance reduction is
limited for MPDS/NDS (all edge states matter) while recursion adds memory;
``memory_units`` counts the fixed-edge bookkeeping to reflect that.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..graph.graph import Graph, canonical_edge
from ..graph.uncertain import UncertainGraph
from .base import WeightedWorld

_EdgeTriple = Tuple[object, object, float]


class RecursiveStratifiedSampler:
    """Stratified possible-world sampling with bounded recursion."""

    name = "RSS"

    def __init__(
        self,
        graph: UncertainGraph,
        seed: Optional[int] = None,
        r: int = 4,
        max_depth: int = 2,
        min_samples_to_recurse: int = 32,
    ) -> None:
        if r < 1:
            raise ValueError(f"r must be >= 1, got {r}")
        self._graph = graph
        self._rng = random.Random(seed)
        self._edges: List[_EdgeTriple] = list(graph.weighted_edges())
        self._nodes = graph.nodes()
        self._r = r
        self._max_depth = max_depth
        self._min_recurse = min_samples_to_recurse
        self._peak_fixed_cells = 0

    # ------------------------------------------------------------------
    def _select_edges(self, free_indices: Sequence[int]) -> List[int]:
        """Pick up to ``r`` stratification edges, BFS-like from high degree."""
        degree: Dict[object, int] = {}
        for index in free_indices:
            u, v, _ = self._edges[index]
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        ranked = sorted(
            free_indices,
            key=lambda i: -(
                degree[self._edges[i][0]] + degree[self._edges[i][1]]
            ),
        )
        return ranked[: self._r]

    def worlds(self, theta: int) -> Iterator[WeightedWorld]:
        """Yield ~``theta`` weighted worlds (weights sum to ~1)."""
        for fixed, free, allocation, probability in self.leaf_strata(theta):
            weight = probability / allocation
            for _ in range(allocation):
                yield self._draw_world(fixed, free, weight)

    def leaf_strata(
        self, theta: int
    ) -> Iterator[Tuple[Dict[int, bool], List[int], int, float]]:
        """Yield the leaf strata of the recursion tree, draw-order first.

        Each leaf is ``(fixed, free, allocation, probability)``: draw
        ``allocation`` worlds with the ``fixed`` edge states pinned, the
        ``free`` edges flipped independently, each carrying weight
        ``probability / allocation``.  The tree is deterministic (edge
        selection and allocation use no randomness), which is what lets
        the vectorised engine replay the exact same strata and spend its
        RNG draws only on the free-edge trials.
        """
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self._peak_fixed_cells = 0
        yield from self._leaf_strata(
            fixed={}, free=list(range(len(self._edges))),
            allocation=theta, probability=1.0, depth=0,
        )

    def _leaf_strata(
        self,
        fixed: Dict[int, bool],
        free: List[int],
        allocation: int,
        probability: float,
        depth: int,
    ) -> Iterator[Tuple[Dict[int, bool], List[int], int, float]]:
        self._peak_fixed_cells = max(
            self._peak_fixed_cells, len(fixed) * (depth + 1)
        )
        recurse = (
            depth < self._max_depth
            and allocation >= self._min_recurse
            and len(free) > self._r
        )
        if not recurse:
            if allocation <= 0:
                return
            yield fixed, free, allocation, probability
            return

        selected = self._select_edges(free)
        remaining = [i for i in free if i not in set(selected)]
        # build the r+1 strata and their conditional probabilities
        strata: List[Tuple[Dict[int, bool], List[int], float]] = []
        prefix_absent = 1.0
        for position, index in enumerate(selected):
            p = self._edges[index][2]
            stratum_fixed = dict(fixed)
            for earlier in selected[:position]:
                stratum_fixed[earlier] = False
            stratum_fixed[index] = True
            stratum_free = remaining + selected[position + 1 :]
            strata.append((stratum_fixed, stratum_free, prefix_absent * p))
            prefix_absent *= 1.0 - p
        all_absent = dict(fixed)
        for index in selected:
            all_absent[index] = False
        strata.append((all_absent, list(remaining), prefix_absent))

        # proportional allocation with largest-remainder rounding
        raw = [allocation * share for _, _, share in strata]
        counts = [int(x) for x in raw]
        shortfall = allocation - sum(counts)
        order = sorted(
            range(len(strata)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        for i in order[:shortfall]:
            counts[i] += 1
        for (stratum_fixed, stratum_free, share), count in zip(strata, counts):
            if count <= 0 or share <= 0.0:
                continue
            yield from self._leaf_strata(
                stratum_fixed, stratum_free,
                count, probability * share, depth + 1,
            )

    def _draw_world(
        self, fixed: Dict[int, bool], free: Sequence[int], weight: float
    ) -> WeightedWorld:
        world = Graph()
        for node in self._nodes:
            world.add_node(node)
        for index, present in fixed.items():
            if present:
                u, v, _ = self._edges[index]
                world.add_edge(u, v)
        rng = self._rng
        for index in free:
            u, v, p = self._edges[index]
            if rng.random() < p:
                world.add_edge(u, v)
        return WeightedWorld(world, weight)

    def memory_units(self) -> int:
        """Peak fixed-edge bookkeeping across the recursion tree."""
        return self._peak_fixed_cells
