"""Zero-copy publication of numpy array bundles over shared memory.

The parallel substrate (:mod:`repro.core.parallel`) must hand every
worker process the same large arrays -- the uncertain graph's CSR
adjacency, endpoint/probability vectors and the sampled world masks --
without pickling them per task.  This module packs a named bundle of
arrays into **one** :class:`multiprocessing.shared_memory.SharedMemory`
segment and describes it with a tiny picklable *layout* (name ->
``(dtype, shape, offset)``), so a task ships only the segment name plus
the layout and each worker attaches once and reads the arrays in place.

Lifecycle contract
------------------
* The creating process owns the segment: it calls :func:`pack_arrays`,
  ships ``(shm.name, layout)``, and eventually ``shm.close()`` +
  ``shm.unlink()`` (POSIX keeps the mapping alive for attached readers
  until they close, so unlinking after the last task is safe).
* Attaching processes call :func:`attach_arrays` and later
  :func:`close_attachment`.  Attachment views are marked read-only --
  worlds and graph structure are immutable by contract.
* On Python < 3.13 an *attach* also registers the segment with the
  resource tracker.  The substrate's workers are spawned children that
  share the parent's tracker process, whose registry is a *set*: the
  duplicate registration coalesces with the parent's create-time one
  and the parent's ``unlink()`` clears it, so no extra bookkeeping is
  needed (and attaching must *not* unregister, or the parent's later
  unlink would trip the tracker).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, Mapping, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from .bitset import PackedMasks

#: name -> (dtype string, shape tuple, byte offset into the segment)
Layout = Dict[str, Tuple[str, Tuple[int, ...], int]]

#: offsets are aligned so every array starts on a cache line
_ALIGN = 64


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def pack_arrays(
    arrays: Mapping[str, np.ndarray]
) -> Tuple[shared_memory.SharedMemory, Layout]:
    """Copy ``arrays`` into one fresh shared-memory segment.

    Returns ``(shm, layout)``; the caller owns ``shm`` (close + unlink).
    Insertion order of ``arrays`` is the physical order in the segment.
    """
    layout: Layout = {}
    offset = 0
    contiguous = {}
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        contiguous[name] = array
        offset = _aligned(offset)
        layout[name] = (array.dtype.str, array.shape, offset)
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for name, array in contiguous.items():
        dtype, shape, start = layout[name]
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=start
        )
        view[...] = array
    return shm, layout


def attach_arrays(
    name: str, layout: Layout
) -> Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]:
    """Attach to a published segment and map its arrays read-only.

    The returned arrays are views into the mapping: keep the returned
    ``shm`` object alive for as long as any of them is used, then call
    :func:`close_attachment`.
    """
    shm = shared_memory.SharedMemory(name=name)
    out: Dict[str, np.ndarray] = {}
    for key, (dtype, shape, start) in layout.items():
        array = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=start
        )
        array.flags.writeable = False
        out[key] = array
    return shm, out


def mask_payload(masks) -> Dict[str, np.ndarray]:
    """Describe a world-mask matrix as a publishable array bundle.

    Packed matrices (:class:`repro.engine.bitset.PackedMasks`) publish
    their uint64 words plus the logical bit width -- 8x less shared
    memory than the historical boolean byte matrix, which still
    publishes as a plain ``"masks"`` array.  The inverse is
    :func:`masks_from_payload`; round-tripping either representation is
    lossless, so workers replay byte-identical worlds.
    """
    from .bitset import PackedMasks

    if isinstance(masks, PackedMasks):
        return {
            "packed_masks": masks.words,
            "mask_bits": np.array([masks.m], dtype=np.int64),
        }
    return {"masks": np.asarray(masks)}


def masks_from_payload(
    arrays: Mapping[str, np.ndarray]
) -> Union[np.ndarray, "PackedMasks"]:
    """Rebuild the mask matrix a :func:`mask_payload` bundle describes.

    Attached packed words are wrapped zero-copy (the
    :class:`~repro.engine.bitset.PackedMasks` view reads the shared
    segment in place and unpacks rows lazily at the replay boundary);
    boolean bundles return the attached ``"masks"`` view directly.
    """
    if "packed_masks" in arrays:
        from .bitset import PackedMasks

        return PackedMasks(
            arrays["packed_masks"], int(arrays["mask_bits"][0])
        )
    return arrays["masks"]


def close_attachment(shm: shared_memory.SharedMemory, *views) -> None:
    """Drop array ``views`` and unmap ``shm`` (never unlinks).

    numpy views pin the exported buffer, so they must be released before
    ``close()``; passing them here makes the ordering explicit.  A still
    -pinned buffer raises ``BufferError`` inside ``close()``, which is
    swallowed: the mapping is then reclaimed when the last view dies.
    """
    del views
    try:
        shm.close()
    except BufferError:  # pragma: no cover - depends on caller refs
        pass
