"""Numpy batch sampling of possible worlds (vectorised Monte Carlo).

The pure-Python :class:`~repro.sampling.monte_carlo.MonteCarloSampler`
draws ``theta * m`` Bernoulli trials one ``rng.random()`` call at a time
and materialises every world edge-by-edge.  This module draws the whole
trial matrix in **one** ``rng.random((theta, m)) < probs`` call and
represents worlds as boolean edge masks.

Stream compatibility
--------------------
``random.Random`` and numpy's legacy ``RandomState`` both generate
doubles from the same MT19937 ``genrand_res53`` recipe, so transplanting
the Mersenne Twister state (:func:`randomstate_like`) makes the batch
sampler reproduce the *bit-identical* Bernoulli outcomes the pure-Python
sampler would have produced for the same seed -- worlds are drawn
row-major (world-by-world, edge-by-edge), matching the sequential flip
order.  This is what lets ``engine="vectorized"`` return byte-identical
estimates to ``engine="python"``.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Union

import numpy as np

from ..graph.uncertain import UncertainGraph
from ..sampling.base import WeightedWorld
from ..sampling.monte_carlo import MonteCarloSampler
from .indexed import IndexedGraph, MaskWorld

#: draw at most this many worlds per random_sample call (bounds the live
#: trial matrix at ~batch * m bytes without changing the stream)
DEFAULT_BATCH = 4096


def randomstate_like(rng: random.Random) -> np.random.RandomState:
    """Return a ``RandomState`` continuing ``rng``'s exact MT19937 stream.

    The returned generator's ``random_sample`` yields the same doubles
    ``rng.random()`` would; ``rng`` itself is *not* advanced, so do not
    keep drawing from both.
    """
    version, internal, _gauss = rng.getstate()
    if version != 3 or len(internal) != 625:  # pragma: no cover - defensive
        raise ValueError(
            f"unsupported random.Random state version {version!r}"
        )
    state = np.random.RandomState()
    state.set_state(
        ("MT19937", np.asarray(internal[:-1], dtype=np.uint32), internal[-1])
    )
    return state


def write_back_state(state: np.random.RandomState, rng: random.Random) -> None:
    """Write ``state``'s MT19937 position back into a ``random.Random``.

    The inverse of :func:`randomstate_like`: after a batch draw, syncing
    keeps an adopted pure-Python sampler's RNG interleavable with the
    vectorised one (drawing from either side advances both identically).
    """
    _kind, keys, pos = state.get_state()[:3]
    rng.setstate((3, tuple(int(key) for key in keys) + (pos,), None))


class VectorizedMonteCarloSampler:
    """Monte Carlo sampler drawing all Bernoulli trials in numpy batches.

    Drop-in replacement for :class:`MonteCarloSampler`: for the same seed
    it yields byte-identical worlds (see module docstring), just built
    from precomputed edge masks.  :meth:`edge_masks` / :meth:`mask_worlds`
    expose the array representation directly for the vectorised
    estimator path.
    """

    name = "MC"

    def __init__(
        self,
        graph: Union[UncertainGraph, IndexedGraph],
        seed: Optional[int] = None,
        batch: int = DEFAULT_BATCH,
    ) -> None:
        if isinstance(graph, IndexedGraph):
            self._indexed = graph
        else:
            self._indexed = IndexedGraph.from_uncertain(graph)
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self._batch = batch
        self._state = randomstate_like(random.Random(seed))
        self._source_rng: Optional[random.Random] = None

    @classmethod
    def from_monte_carlo(
        cls, sampler: MonteCarloSampler, batch: int = DEFAULT_BATCH
    ) -> "VectorizedMonteCarloSampler":
        """Adopt a pure-Python sampler's graph and *current* RNG state.

        The vectorised sampler continues exactly where ``sampler`` left
        off, and every batch drawn here is synced back into ``sampler``'s
        RNG -- so the original sampler stays interleavable: drawing
        ``theta`` worlds from either side advances both identically, just
        as if the pure-Python sampler had produced them itself.
        """
        out = cls.__new__(cls)
        out._indexed = IndexedGraph.from_uncertain(sampler._graph)
        out._batch = batch
        out._state = randomstate_like(sampler._rng)
        out._source_rng = sampler._rng
        return out

    def _sync_source(self) -> None:
        """Write the numpy MT19937 state back into the adopted Random."""
        if self._source_rng is not None:
            write_back_state(self._state, self._source_rng)

    @property
    def indexed(self) -> IndexedGraph:
        """The shared index arrays (built once per uncertain graph)."""
        return self._indexed

    def edge_masks(self, theta: int) -> np.ndarray:
        """Draw ``theta`` worlds as a ``(theta, m)`` boolean mask matrix.

        All ``theta * m`` Bernoulli trials come from a single
        ``random_sample((theta, m)) < probs`` comparison (chunked only
        beyond ``batch`` rows, which leaves the stream unchanged).
        """
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        m = self._indexed.m
        if theta <= self._batch:
            masks = self._state.random_sample((theta, m)) < self._indexed.probs
            self._sync_source()
            return masks
        blocks = []
        remaining = theta
        while remaining > 0:
            rows = min(remaining, self._batch)
            blocks.append(
                self._state.random_sample((rows, m)) < self._indexed.probs
            )
            remaining -= rows
        self._sync_source()
        return np.concatenate(blocks, axis=0)

    def mask_worlds(self, theta: int) -> Iterator[WeightedWorld]:
        """Yield ``theta`` :class:`MaskWorld`-backed weighted worlds."""
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        weight = 1.0 / theta
        done = 0
        while done < theta:
            rows = min(theta - done, self._batch)
            masks = self.edge_masks(rows)
            for i in range(rows):
                yield WeightedWorld(MaskWorld(self._indexed, masks[i]), weight)
            done += rows

    def worlds(self, theta: int) -> Iterator[WeightedWorld]:
        """Yield ``theta`` materialised worlds, each with weight 1/theta.

        Byte-identical to :meth:`MonteCarloSampler.worlds` for the same
        seed (same graphs in the same order).
        """
        for weighted in self.mask_worlds(theta):
            yield WeightedWorld(weighted.graph.to_graph(), weighted.weight)

    def memory_units(self) -> int:
        """Like MC, keeps no per-edge state *between* batches."""
        return 0
