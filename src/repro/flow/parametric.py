"""Warm parametric Dinkelbach: one push-relabel chain per component.

The classic Dinkelbach loop in :mod:`repro.dense.all_densest` solves a
fresh Goldberg network from scratch at every candidate density: each
iteration re-saturates the source, re-floods the component and re-parks
the periphery, so a three-iteration world pays for three cold flows.

This module replaces that loop with the Gallo-Grigoriadis-Tarjan style
*incremental* scheme, run on the **reversed** Goldberg network ``N'``
(``source' = t``, ``sink' = s``; every arc reversed, same capacities,
so ``maxflow(N') = maxflow(N)``).  Raising the candidate density
``alpha = p / q`` only *raises source'-side arc capacities* in ``N'``
(the reversed ``v -> t`` arcs, capacity ``2 p``), which is exactly the
parametric update GGT's monotone scheme supports:

* saturate each capacity increment immediately, turning it into fresh
  excess at the graph nodes;
* keep all heights -- the only new residual arcs point *into* the
  source', which never routes flow out again, so height validity (and
  therefore the permanence of parked nodes) is preserved;
* resume the FIFO phase-1 discharge from the parked state.

Heights then climb monotonically across the *entire* Dinkelbach chain,
so the total relabel work for all iterations is bounded by roughly one
cold flow, instead of one per iteration.

Witness extraction: at phase-1 termination the parked set
``{v : h(v) >= n}`` is a min-cut source' side only under *exact*
heights; stale heights still give a valid **achieved** node set, whose
induced density either improves ``alpha`` (fine -- Dinkelbach accepts
any strictly improving achieved density) or does not, in which case one
global relabel makes the heights exact and the true min-cut witness
must improve (value below target means ``alpha < rho*``).

Once the chain certifies (``value == 2 m Q``), the parked excess
``2 n P - 2 m Q`` still legitimately sits inside ``N'`` -- a max
*preflow*, not a flow -- so a standard second phase returns it to the
source', and the max-flowed forward network is materialised through the
residual correspondence ``r_N(x -> y) = r_N'(y -> x)`` in exactly the
arc layout :func:`repro.flow.csr.build_edge_density_network_csr`
produces.  Downstream residual queries (SCC condensation, min-cut
sides) are flow-invariant [Picard-Queyranne], so the results are
byte-identical to the cold-restart loop's.

The pure-python implementation below is the always-available tier; the
optional JIT tier (:mod:`repro.engine.jit`) compiles the same discharge
loops over flat int64 arrays when numba is installed.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from .csr import CSRFlowNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.indexed import SubWorldView

__all__ = ["ReverseChain", "parametric_dinkelbach"]

#: outer-iteration cap; Dinkelbach over a finite density set converges in
#: far fewer steps, so hitting this means a witness stopped improving
_MAX_ROUNDS = 10_000


def _reverse_layout(
    n: int, edge_u: np.ndarray, edge_v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Arc layout shared by the reversed network and its forward twin.

    Returns ``(pair_tail, pair_head, order, position, twin)`` for the
    *forward* pair list ``[s->v x n, v->t x n, edges x m]`` -- the exact
    pair order :func:`build_edge_density_network_csr` uses -- where
    ``order``/``position``/``twin`` describe the **reversed** network's
    stable-sorted arc layout (pair ``k``'s reversed forward arc lands at
    ``position[2 k]``).
    """
    source = n
    sink = n + 1
    locals_ = np.arange(n, dtype=np.int64)
    pair_tail = np.concatenate(
        [np.full(n, source, dtype=np.int64), locals_, edge_u]
    )
    pair_head = np.concatenate(
        [locals_, np.full(n, sink, dtype=np.int64), edge_v]
    )
    pairs = len(pair_tail)
    arc_tail = np.empty(2 * pairs, dtype=np.int64)
    # reversed orientation: the pair's forward arc runs head -> tail
    arc_tail[0::2] = pair_head
    arc_tail[1::2] = pair_tail
    order = np.argsort(arc_tail, kind="stable")
    position = np.empty(2 * pairs, dtype=np.int64)
    position[order] = np.arange(2 * pairs)
    twin = position[order ^ 1]
    return pair_tail, pair_head, order, position, twin


class ReverseChain:
    """One warm Dinkelbach chain over a component's reversed network.

    Drives phase-1 FIFO push-relabel with persistent heights across
    ``alpha`` increments; :meth:`finish` drains the parked excess and
    materialises the max-flowed forward network.
    """

    __slots__ = (
        "view", "n", "net", "num", "den", "_position", "_pair_tail",
        "_pair_head", "height", "excess", "count_at_height", "pointers",
        "in_queue", "active", "_src_arcs", "_heights_exact",
        "_np_topology",
    )

    def __init__(self, view: "SubWorldView", bound: Fraction) -> None:
        self.view = view
        n = view.n
        self.n = n
        alpha = Fraction(bound)
        self.num, self.den = alpha.numerator, alpha.denominator
        degrees = view.degrees().astype(np.int64)
        pair_tail, pair_head, order, position, twin = _reverse_layout(
            n, view.edge_lu.astype(np.int64), view.edge_lv.astype(np.int64)
        )
        m = view.m
        cap_forward = np.concatenate([
            self.den * degrees,
            np.full(n, 2 * self.num, dtype=np.int64),
            np.full(m, self.den, dtype=np.int64),
        ])
        cap_backward = np.concatenate([
            np.zeros(2 * n, dtype=np.int64),
            np.full(m, self.den, dtype=np.int64),
        ])
        arc_cap = np.empty(2 * len(pair_tail), dtype=np.int64)
        arc_cap[0::2] = cap_forward
        arc_cap[1::2] = cap_backward
        arc_head = np.empty(2 * len(pair_tail), dtype=np.int64)
        arc_head[0::2] = pair_tail  # reversed: forward arc ends at the tail
        arc_head[1::2] = pair_head
        indptr = np.zeros(n + 3, dtype=np.int64)
        arc_tail = np.empty(2 * len(pair_tail), dtype=np.int64)
        arc_tail[0::2] = pair_head
        arc_tail[1::2] = pair_tail
        indptr[1:] = np.cumsum(np.bincount(arc_tail, minlength=n + 2))
        # source' = t (= n + 1), sink' = s (= n)
        self.net = CSRFlowNetwork(
            n + 2, n + 1, n,
            arc_head[order].tolist(), arc_cap[order].tolist(),
            twin.tolist(), indptr.tolist(),
        )
        self._position = position
        self._pair_tail = pair_tail
        self._pair_head = pair_head
        nodes = self.net.num_nodes
        self.height = [0] * nodes
        self.excess: List[int] = [0] * nodes
        self.count_at_height = [0] * (2 * nodes + 2)
        self.pointers = [0] * nodes
        self.in_queue = [False] * nodes
        self.active: deque = deque()
        # saturate every source' arc (t -> v), remembering each arc: the
        # alpha increments re-touch exactly these
        net = self.net
        cap, twin_l, to, ind = net.cap, net.twin, net.to, net.indptr
        src = net.source
        self._src_arcs = [0] * n
        for e in range(ind[src], ind[src + 1]):
            head = to[e]
            self._src_arcs[head] = e
            delta = cap[e]
            if delta <= 0:
                continue
            cap[e] = 0
            cap[twin_l[e]] += delta
            self.excess[head] += delta
            self.excess[src] -= delta
        self._np_topology = None
        # analytic initial heights, exactly what the BFS of
        # :meth:`global_relabel` would compute on the fresh preflow:
        # every incident node owns a residual degree arc straight to the
        # sink' (v -> s, cap den * deg(v)), so its distance is 1;
        # isolated nodes are unreachable (infinity); sink' is 0 and
        # source' is pinned at ``nodes``.
        infinity = 2 * nodes
        sink = self.net.sink
        height = self.height
        height[:] = [infinity] * nodes
        height[sink] = 0
        height[src] = nodes
        deg_l = degrees.tolist()
        for v in range(n):
            if deg_l[v] > 0:
                height[v] = 1
        count_at_height = self.count_at_height
        for h in height:
            count_at_height[h] += 1
        self.pointers[:] = ind[:nodes]
        excess = self.excess
        in_queue = self.in_queue
        active = self.active
        for v in range(n):
            if excess[v] > 0 and height[v] < nodes:
                in_queue[v] = True
                active.append(v)
        self._heights_exact = True

    # ------------------------------------------------------------------
    # height maintenance
    # ------------------------------------------------------------------
    def global_relabel(self) -> None:
        """Exact residual BFS distances to the sink'; rebuild the queue."""
        net = self.net
        nodes = net.num_nodes
        s, t = net.source, net.sink
        to, cap, twin, indptr = net.to, net.cap, net.twin, net.indptr
        height = self.height
        infinity = 2 * nodes
        height[:] = [infinity] * nodes
        height[t] = 0
        height[s] = nodes
        queue = deque([t])
        while queue:
            v = queue.popleft()
            dist = height[v] + 1
            for e in range(indptr[v], indptr[v + 1]):
                u = to[e]
                if cap[twin[e]] > 0 and height[u] == infinity:
                    height[u] = dist
                    queue.append(u)
        count_at_height = self.count_at_height
        count_at_height[:] = [0] * (2 * nodes + 2)
        for h in height:
            count_at_height[h] += 1
        self.pointers[:] = indptr[:nodes]
        excess = self.excess
        in_queue = self.in_queue
        active = self.active
        active.clear()
        in_queue[:] = [False] * nodes
        for i in range(nodes):
            if excess[i] > 0 and i != s and i != t and height[i] < nodes:
                in_queue[i] = True
                active.append(i)
        self._heights_exact = True

    # ------------------------------------------------------------------
    # phase-1 discharge (resumable)
    # ------------------------------------------------------------------
    def run(self) -> int:
        """FIFO phase-1 discharge to quiescence; return the flow value.

        Heights, pointers and parked excess persist across calls, which
        is what makes the chain warm: an :meth:`increment` enqueues only
        the fresh excess and ``run`` picks up from the previous state.

        With the JIT tier active the discharge runs as the compiled
        flat-array port (:func:`repro.engine.jit.phase1_discharge`) on
        ``int64`` state copies; capacities beyond ``int64`` -- possible
        because the chain's common denominator grows multiplicatively --
        stay on the exact python loop below.
        """
        from ..engine import jit as _jit

        if _jit.jit_active():
            value = self._run_jit()
            if value is not None:
                return value
        net = self.net
        nodes = net.num_nodes
        s, t = net.source, net.sink
        to, cap, twin, indptr = net.to, net.cap, net.twin, net.indptr
        height = self.height
        excess = self.excess
        count_at_height = self.count_at_height
        pointers = self.pointers
        in_queue = self.in_queue
        active = self.active
        infinity = 2 * nodes
        relabels_since_global = 0
        pop = active.popleft
        push = active.append
        dirty = bool(active)
        while active:
            node = pop()
            in_queue[node] = False
            node_height = height[node]
            if node_height >= nodes:
                continue
            limit = indptr[node + 1]
            node_excess = excess[node]
            e = pointers[node]
            while node_excess > 0:
                if e >= limit:
                    # ---- relabel (inlined: the hot loop) ----
                    old = node_height
                    smallest = infinity
                    for a in range(indptr[node], limit):
                        if cap[a] > 0:
                            h = height[to[a]]
                            if h < smallest:
                                smallest = h
                    node_height = smallest + 1
                    height[node] = node_height
                    count_at_height[old] -= 1
                    count_at_height[node_height] += 1
                    e = indptr[node]
                    if count_at_height[old] == 0 and old < nodes:
                        # gap: everything between the empty level and the
                        # cut is disconnected from the sink'
                        for other in range(nodes):
                            oh = height[other]
                            if old < oh <= nodes and other != s:
                                count_at_height[oh] -= 1
                                height[other] = nodes + 1
                                count_at_height[nodes + 1] += 1
                        node_height = height[node]
                    relabels_since_global += 1
                    if relabels_since_global >= nodes:
                        relabels_since_global = 0
                        excess[node] = node_excess
                        self.global_relabel()
                        node_excess = 0
                        break
                    if node_height >= nodes:
                        excess[node] = node_excess
                        node_excess = 0
                        break
                    continue
                residual = cap[e]
                if residual > 0:
                    head = to[e]
                    if node_height == height[head] + 1:
                        delta = (
                            node_excess if node_excess < residual
                            else residual
                        )
                        cap[e] = residual - delta
                        cap[twin[e]] += delta
                        node_excess -= delta
                        excess[head] += delta
                        # non-terminal excess is never negative, so the
                        # freshly increased excess[head] is positive
                        if not in_queue[head] and head != s and head != t:
                            in_queue[head] = True
                            push(head)
                        continue
                e += 1
            else:
                excess[node] = node_excess
                pointers[node] = e
        if dirty:
            self._heights_exact = False
        return self.excess[t]

    def _run_jit(self) -> "int | None":
        """Delegate one :meth:`run` to the flat-array JIT discharge.

        Copies the chain state into ``int64`` arrays, runs
        :func:`repro.engine.jit.phase1_discharge` warm, and copies the
        mutated state back, so python and JIT calls interleave freely on
        the same chain.  Returns ``None`` (caller falls back to the
        python loop) when any capacity or excess overflows ``int64``.
        """
        from ..engine import jit as _jit

        net = self.net
        try:
            cap = np.array(net.cap, dtype=np.int64)
            excess = np.array(self.excess, dtype=np.int64)
        except OverflowError:
            return None
        if self._np_topology is None:
            self._np_topology = (
                np.array(net.to, dtype=np.int64),
                np.array(net.twin, dtype=np.int64),
                np.array(net.indptr, dtype=np.int64),
            )
        to, twin, indptr = self._np_topology
        nodes = net.num_nodes
        height = np.array(self.height, dtype=np.int64)
        count_at_height = np.array(self.count_at_height, dtype=np.int64)
        pointers = np.array(self.pointers, dtype=np.int64)
        in_queue = np.array(self.in_queue, dtype=np.bool_)
        queue = np.zeros(nodes + 1, dtype=np.int64)
        qtail = 0
        for v in self.active:
            queue[qtail] = v
            qtail += 1
        dirty = qtail > 0
        value = _jit.phase1_discharge(
            to, cap, twin, indptr, excess, height, count_at_height,
            pointers, in_queue, queue, 0, qtail,
            net.source, net.sink, nodes, False,
        )
        net.cap[:] = cap.tolist()
        self.excess[:] = excess.tolist()
        self.height[:] = height.tolist()
        self.count_at_height[:] = count_at_height.tolist()
        self.pointers[:] = pointers.tolist()
        self.in_queue[:] = in_queue.tolist()
        self.active.clear()
        if dirty:
            self._heights_exact = False
        return int(value)

    # ------------------------------------------------------------------
    # parametric update
    # ------------------------------------------------------------------
    def witness(self) -> np.ndarray:
        """Graph nodes below the cut: the candidate improving node set."""
        # heights are bounded by 2 * nodes + 1: int64 is always safe
        heights = np.array(self.height[: self.n], dtype=np.int64)
        return heights < self.net.num_nodes

    def increment(self, num: int, den: int) -> None:
        """Raise ``alpha`` to ``num / den`` and re-arm the discharge.

        Rescales every residual capacity and excess to the common
        denominator, then saturates the per-node source'-arc increment
        ``2 (num Q - P den)`` as fresh excess -- the GGT parametric
        step.  Heights are untouched (see the module docstring for why
        that is sound).
        """
        net = self.net
        cap = net.cap
        twin = net.twin
        excess = self.excess
        height = self.height
        in_queue = self.in_queue
        active = self.active
        nodes = net.num_nodes
        src = net.source
        if den != 1:
            cap[:] = [c * den for c in cap]
            excess[:] = [x * den for x in excess]
        delta = 2 * (num * self.den - self.num * den)
        if delta <= 0:  # pragma: no cover - guarded by the improving witness
            raise AssertionError(
                f"alpha increment {num}/{den} does not improve "
                f"{self.num}/{self.den}"
            )
        excess[src] -= delta * self.n
        for v in range(self.n):
            e = self._src_arcs[v]
            cap[twin[e]] += delta
            excess[v] += delta
            if height[v] < nodes and excess[v] > 0 and not in_queue[v]:
                in_queue[v] = True
                active.append(v)
        self.num, self.den = num * self.den, self.den * den

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Phase 2: return parked excess to the source' (preflow -> flow).

        Mirrors ``_push_relabel(phase1_only=False)``: heights become
        ``d(v, sink')``, or ``nodes + d(v, source')`` when the sink' is
        unreachable, and every excess node discharges until conservation
        holds -- after which the residual capacities describe a valid
        maximum flow.
        """
        net = self.net
        nodes = net.num_nodes
        s, t = net.source, net.sink
        to, cap, twin, indptr = net.to, net.cap, net.twin, net.indptr
        excess = self.excess
        height = self.height
        count_at_height = self.count_at_height
        pointers = self.pointers
        in_queue = self.in_queue
        active = self.active
        infinity = 2 * nodes

        def relabel_all() -> None:
            height[:] = [infinity] * nodes
            height[t] = 0
            height[s] = nodes
            for start in (t, s):
                queue = deque([start])
                while queue:
                    v = queue.popleft()
                    dist = height[v] + 1
                    for e in range(indptr[v], indptr[v + 1]):
                        u = to[e]
                        if cap[twin[e]] > 0 and height[u] == infinity:
                            height[u] = dist
                            queue.append(u)
            count_at_height[:] = [0] * (2 * nodes + 2)
            for h in height:
                count_at_height[h] += 1
            pointers[:] = indptr[:nodes]
            active.clear()
            in_queue[:] = [False] * nodes
            for i in range(nodes):
                if excess[i] > 0 and i != s and i != t \
                        and height[i] < infinity:
                    in_queue[i] = True
                    active.append(i)

        relabel_all()
        relabels_since_global = 0
        while active:
            node = active.popleft()
            in_queue[node] = False
            limit = indptr[node + 1]
            node_excess = excess[node]
            while node_excess > 0:
                e = pointers[node]
                if e >= limit:
                    old = height[node]
                    smallest = infinity
                    for a in range(indptr[node], limit):
                        if cap[a] > 0 and height[to[a]] < smallest:
                            smallest = height[to[a]]
                    height[node] = smallest + 1
                    count_at_height[old] -= 1
                    count_at_height[smallest + 1] += 1
                    pointers[node] = indptr[node]
                    relabels_since_global += 1
                    if relabels_since_global >= nodes:
                        relabels_since_global = 0
                        excess[node] = node_excess
                        relabel_all()
                        node_excess = 0
                        break
                    if height[node] > 2 * nodes:  # pragma: no cover
                        break
                    continue
                head = to[e]
                residual = cap[e]
                if residual > 0 and height[node] == height[head] + 1:
                    delta = node_excess if node_excess < residual \
                        else residual
                    cap[e] = residual - delta
                    cap[twin[e]] += delta
                    node_excess -= delta
                    excess[head] += delta
                    if (
                        not in_queue[head]
                        and head != s
                        and head != t
                        and excess[head] > 0
                    ):
                        in_queue[head] = True
                        active.append(head)
                else:
                    pointers[node] = e + 1
            else:
                excess[node] = node_excess
        self._heights_exact = False

    def forward_network(self) -> CSRFlowNetwork:
        """Materialise the max-flowed *forward* Goldberg network.

        Pair ``k``'s forward residual in ``N`` equals its reversed
        forward residual in ``N'`` (and likewise the backward arcs), so
        the caps transfer index-by-index; the arc layout is rebuilt with
        the exact stable-sort :func:`build_edge_density_network_csr`
        uses, making the result indistinguishable from a cold max-flowed
        forward network (up to the residual flow's non-canonical
        interior, which no flow-invariant query observes).
        """
        n = self.n
        pair_tail, pair_head = self._pair_tail, self._pair_head
        rev_position = self._position
        rev_cap = self.net.cap
        pairs = len(pair_tail)
        arc_tail = np.empty(2 * pairs, dtype=np.int64)
        arc_head = np.empty(2 * pairs, dtype=np.int64)
        arc_tail[0::2] = pair_tail
        arc_tail[1::2] = pair_head
        arc_head[0::2] = pair_head
        arc_head[1::2] = pair_tail
        order = np.argsort(arc_tail, kind="stable")
        position = np.empty(2 * pairs, dtype=np.int64)
        position[order] = np.arange(2 * pairs)
        twin = position[order ^ 1]
        indptr = np.zeros(n + 3, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(arc_tail, minlength=n + 2))
        # permute on plain lists: numpy scalar indexing per arc is the
        # dominant cost here, and the caps may exceed int64 anyway
        position_l = position.tolist()
        rev_position_l = rev_position.tolist()
        caps = [0] * (2 * pairs)
        for k in range(2 * pairs):
            caps[position_l[k]] = rev_cap[rev_position_l[k]]
        return CSRFlowNetwork(
            n + 2, n, n + 1,
            arc_head[order].tolist(), caps, twin.tolist(), indptr.tolist(),
        )


def parametric_dinkelbach(
    view: "SubWorldView", bound: Fraction
) -> Tuple[Fraction, CSRFlowNetwork, "SubWorldView"]:
    """Exact ``rho*`` of a connected component via one warm chain.

    Drop-in replacement for the cold-restart Dinkelbach loop: same
    contract (``bound`` is a positive achieved density ``<= rho*``;
    returns ``(rho*, max-flowed forward network, possibly re-shrunk
    view)``), same results (residual queries are flow-invariant), one
    warm push-relabel chain instead of one cold flow per iteration.
    """
    from .csr import build_edge_density_network_csr
    from .push_relabel import csr_push_relabel

    chain = ReverseChain(view, bound)
    value = chain.run()
    rounds = 0
    while value < 2 * view.m * chain.den:
        rounds += 1
        if rounds > _MAX_ROUNDS:  # pragma: no cover - defensive
            raise AssertionError("parametric Dinkelbach failed to converge")
        member = chain.witness()
        size = int(member.sum())
        num = view.induced_edges(member) if size else 0
        if size == 0 or num * chain.den <= chain.num * size:
            if chain._heights_exact:  # pragma: no cover - defensive
                raise AssertionError(
                    "exact min-cut witness failed to improve alpha"
                )
            # stale heights produced a non-improving set: make them
            # exact, after which {h < n} is a true min-cut side and
            # must improve (value below target means alpha < rho*)
            chain.global_relabel()
            continue
        chain.increment(num, size)
        value = chain.run()
    alpha = Fraction(chain.num, chain.den)
    ceil_density = -(-alpha.numerator // alpha.denominator)
    shrunken = view.k_core(ceil_density)
    if shrunken.m == 0:  # pragma: no cover - see prepare_from_bound
        shrunken = view
    if shrunken.n != view.n:
        # tighter core at the exact density: mirror the classic path and
        # solve the (much smaller) network cold
        view = shrunken
        network = build_edge_density_network_csr(
            view.n, view.edge_lu, view.edge_lv, view.degrees(), alpha
        )
        value = csr_push_relabel(network)
        expected = 2 * view.m * alpha.denominator
        if value != expected:  # pragma: no cover - guarded by exact rho*
            raise AssertionError(
                f"max flow {value} != 2 m q = {expected}; rho* not exact?"
            )
        return alpha, network, view
    chain.drain()
    return alpha, chain.forward_network(), view
