"""Pattern graphs for pattern-density computations (Definition 3, Fig. 5).

A pattern ``psi = (V_psi, E_psi)`` is a small connected graph; an *instance*
of ``psi`` in a graph ``G`` is a subgraph of ``G`` isomorphic to ``psi``
(not necessarily induced).  Counting distinct subgraphs automatically
quotients out the pattern's automorphisms, and coincides with h-clique
counting when ``psi`` is a clique.

The paper's experiments (Fig. 5) use four patterns: the 2-star (a path on
three nodes), the 3-star (one center with three leaves), the "c3-star"
(a triangle with one pendant node -- the closed variant of the 2-star with
a star edge attached), and the diamond (K4 minus an edge).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..graph.graph import Graph, Node


class Pattern:
    """A named pattern graph.

    Pattern nodes are integers ``0..k-1``; only the edge structure matters.

    Examples
    --------
    >>> Pattern.diamond().number_of_nodes()
    4
    >>> Pattern.clique(3).name
    '3-clique'
    """

    __slots__ = ("name", "_graph")

    def __init__(self, name: str, edges: Iterable[Tuple[int, int]]) -> None:
        self.name = name
        self._graph = Graph.from_edges(edges)
        if self._graph.number_of_nodes() == 0:
            raise ValueError("pattern must have at least one edge")
        if len(self._graph.connected_components()) != 1:
            raise ValueError("pattern must be connected")

    # ------------------------------------------------------------------
    # canonical patterns from the paper (Fig. 5)
    # ------------------------------------------------------------------
    @classmethod
    def two_star(cls) -> "Pattern":
        """Path on three nodes: one center with two leaves."""
        return cls("2-star", [(0, 1), (0, 2)])

    @classmethod
    def three_star(cls) -> "Pattern":
        """One center with three leaves."""
        return cls("3-star", [(0, 1), (0, 2), (0, 3)])

    @classmethod
    def c3_star(cls) -> "Pattern":
        """Triangle with one pendant node attached."""
        return cls("c3-star", [(0, 1), (1, 2), (0, 2), (0, 3)])

    @classmethod
    def diamond(cls) -> "Pattern":
        """K4 minus one edge (two triangles sharing an edge)."""
        return cls("diamond", [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])

    @classmethod
    def clique(cls, h: int) -> "Pattern":
        """The complete graph on ``h`` nodes (h >= 2)."""
        if h < 2:
            raise ValueError(f"clique pattern needs h >= 2, got {h}")
        edges = [(i, j) for i in range(h) for j in range(i + 1, h)]
        return cls(f"{h}-clique", edges)

    @classmethod
    def path(cls, length: int) -> "Pattern":
        """A simple path with ``length`` edges."""
        if length < 1:
            raise ValueError("path needs at least one edge")
        return cls(f"path-{length}", [(i, i + 1) for i in range(length)])

    @classmethod
    def cycle(cls, k: int) -> "Pattern":
        """A simple cycle on ``k`` nodes (k >= 3)."""
        if k < 3:
            raise ValueError("cycle needs at least three nodes")
        edges = [(i, (i + 1) % k) for i in range(k)]
        return cls(f"cycle-{k}", edges)

    @classmethod
    def from_edges(cls, name: str, edges: Iterable[Tuple[int, int]]) -> "Pattern":
        """Build a custom pattern from an edge list."""
        return cls(name, edges)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def graph(self) -> Graph:
        """Return the underlying pattern graph (do not mutate)."""
        return self._graph

    def number_of_nodes(self) -> int:
        """Return |V_psi|."""
        return self._graph.number_of_nodes()

    def number_of_edges(self) -> int:
        """Return |E_psi|."""
        return self._graph.number_of_edges()

    def nodes(self) -> List[int]:
        """Return pattern node labels."""
        return sorted(self._graph.nodes())

    def edges(self) -> List[Tuple[int, int]]:
        """Return pattern edges in canonical form."""
        return sorted(tuple(sorted(e)) for e in self._graph.edges())

    def matching_order(self) -> List[int]:
        """Return a connected search order (each node adjacent to a prior one).

        Starts from a maximum-degree node, which tends to shrink candidate
        sets fastest in the backtracking matcher.
        """
        nodes = self.nodes()
        start = max(nodes, key=self._graph.degree)
        order = [start]
        placed = {start}
        while len(order) < len(nodes):
            best: Node = None
            best_key = (-1, -1)
            for node in nodes:
                if node in placed:
                    continue
                back_degree = sum(
                    1 for nbr in self._graph.neighbors(node) if nbr in placed
                )
                key = (back_degree, self._graph.degree(node))
                if back_degree > 0 and key > best_key:
                    best, best_key = node, key
            order.append(best)
            placed.add(best)
        return order

    def is_clique(self) -> bool:
        """Return True if this pattern is a complete graph."""
        k = self.number_of_nodes()
        return self.number_of_edges() == k * (k - 1) // 2

    def __repr__(self) -> str:
        return f"Pattern({self.name!r}, n={self.number_of_nodes()}, m={self.number_of_edges()})"


def paper_patterns() -> List[Pattern]:
    """Return the four patterns used in the paper's experiments (Fig. 5)."""
    return [
        Pattern.two_star(),
        Pattern.three_star(),
        Pattern.c3_star(),
        Pattern.diamond(),
    ]
