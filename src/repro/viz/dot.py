"""Graphviz DOT export for the paper's case-study figures.

The paper's Figs. 6-7 (Karate Club communities) and Figs. 8-15 (brain
networks) render uncertain graphs with the MPDS highlighted, node colors
showing ground-truth communities, and edge thickness proportional to the
edge probability.  This module emits the equivalent DOT text so any
Graphviz install can regenerate those visuals; it keeps the library free
of plotting dependencies.

Example
-------
>>> from repro.datasets import karate_club_uncertain
>>> from repro import top_k_mpds
>>> g = karate_club_uncertain(seed=2023)
>>> best = top_k_mpds(g, theta=160, seed=7).best().nodes
>>> dot = uncertain_to_dot(g, highlight=best)
>>> dot.startswith("graph {")
True
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..graph.graph import Graph, Node
from ..graph.uncertain import UncertainGraph

#: a small colour-blind-friendly palette for community colouring
_PALETTE = (
    "#4477AA", "#EE6677", "#228833", "#CCBB44",
    "#66CCEE", "#AA3377", "#BBBBBB",
)


def _quote(node: Node) -> str:
    text = str(node).replace('"', r"\"")
    return f'"{text}"'


def _node_lines(
    nodes: Iterable[Node],
    highlight: frozenset,
    communities: Optional[Mapping[Node, object]],
) -> list:
    palette_of: Dict[object, str] = {}
    lines = []
    for node in nodes:
        attrs = []
        if communities is not None and node in communities:
            community = communities[node]
            if community not in palette_of:
                palette_of[community] = _PALETTE[len(palette_of) % len(_PALETTE)]
            attrs.append("style=filled")
            attrs.append(f'fillcolor="{palette_of[community]}"')
        if node in highlight:
            attrs.append("penwidth=3")
            attrs.append('color="#000000"')
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(node)}{suffix};")
    return lines


def graph_to_dot(
    graph: Graph,
    highlight: Optional[Iterable[Node]] = None,
    communities: Optional[Mapping[Node, object]] = None,
) -> str:
    """Render a deterministic graph as undirected DOT text.

    ``highlight`` nodes get a thick black border (the paper's blue subgraph
    boxes); ``communities`` maps nodes to arbitrary community labels, each
    coloured from a fixed palette.
    """
    marked = frozenset(highlight or ())
    lines = ["graph {", "  node [shape=circle];"]
    lines.extend(_node_lines(graph.nodes(), marked, communities))
    for u, v in sorted(graph.edges(), key=repr):
        lines.append(f"  {_quote(u)} -- {_quote(v)};")
    lines.append("}")
    return "\n".join(lines)


def uncertain_to_dot(
    graph: UncertainGraph,
    highlight: Optional[Iterable[Node]] = None,
    communities: Optional[Mapping[Node, object]] = None,
    max_penwidth: float = 5.0,
) -> str:
    """Render an uncertain graph as DOT with probability-scaled edges.

    Edge pen width is ``probability * max_penwidth`` (the paper: "the
    thickness of each edge is proportional to its probability") and the
    probability is attached as the edge tooltip.
    """
    marked = frozenset(highlight or ())
    lines = ["graph {", "  node [shape=circle];"]
    lines.extend(_node_lines(graph.nodes(), marked, communities))
    for u, v, p in sorted(graph.weighted_edges(), key=repr):
        width = max(0.2, p * max_penwidth)
        lines.append(
            f"  {_quote(u)} -- {_quote(v)} "
            f'[penwidth={width:.2f}, tooltip="p={p:.3f}"];'
        )
    lines.append("}")
    return "\n".join(lines)
