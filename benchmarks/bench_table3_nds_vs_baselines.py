"""Table III: NDS vs EDS / core / truss containment probabilities."""

from repro.experiments import format_table3_or_4, run_table3

from .conftest import BENCH_LARGE, BENCH_THETA_LARGE, emit


def test_table3(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table3(datasets=BENCH_LARGE, theta=BENCH_THETA_LARGE),
        rounds=1, iterations=1,
    )
    emit("table3_nds_vs_baselines", format_table3_or_4(rows, "NDS"))
    for row in rows:
        # paper shape: the NDS has the highest containment probability;
        # the core is comparable, EDS and truss fall behind on some datasets
        assert row.ours >= row.eds - 1e-9, row.dataset
        assert row.ours >= 0.5, row.dataset
