"""Algorithm 5: top-k Nucleus Densest Subgraphs via closed itemset mining.

On large graphs the densest subgraph probability of every node set is tiny
(below 3.91e-5 on the paper's big datasets), so MPDS degenerates.  NDS
instead finds node sets with the highest *containment* probability
``gamma(U)`` (Definition 5): the chance that U sits inside a densest
subgraph.

Reduction (the paper's key idea): a node set is contained in a densest
subgraph of a world iff it is contained in the world's *maximum-sized*
densest subgraph (footnote 5, via [59]).  So:

1. sample ``theta`` worlds; collect each world's maximum-sized densest
   subgraph as a transaction;
2. run a top-k closed frequent itemset miner (TFP [47]) with minimum
   length ``l_m``: supports are exactly the ``gamma-hat`` estimates, and
   closedness w.r.t. ``gamma-hat`` removes redundant subsets (Problem 3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..graph.uncertain import UncertainGraph
from ..itemsets.tfp import top_k_closed_itemsets
from ..sampling.base import WorldSampler
from ..sampling.monte_carlo import MonteCarloSampler
from .measures import DensityMeasure, EdgeDensity
from .results import NDSResult, NodeSet, ScoredNodeSet

#: one evaluated world: (its maximum-sized densest subgraph or None, weight)
TransactionRecord = Tuple[Optional[NodeSet], float]


def evaluate_transactions(
    worlds, loop_measure: DensityMeasure
) -> Iterator[TransactionRecord]:
    """Evaluate a world stream into per-world transaction records.

    The evaluation half of Algorithm 5's collection loop, shared by the
    sequential estimator and the per-block workers of
    :mod:`repro.core.parallel`.
    """
    for weighted in worlds:
        maximal = loop_measure.maximum_sized_densest(weighted.graph)
        yield maximal, weighted.weight


def accumulate_transactions(
    records: Iterable[TransactionRecord],
) -> Tuple[List[NodeSet], List[float], float, int]:
    """Fold per-world records into the transaction database.

    Records must arrive in world-stream order so the ``total_weight``
    float accumulation matches a sequential run exactly (the parallel
    merge reassembles blocks in grid order before calling this).
    Returns ``(transactions, weights, total_weight, actual_theta)``.
    """
    transactions: List[NodeSet] = []
    weights: List[float] = []
    total_weight = 0.0
    actual_theta = 0
    for maximal, weight in records:
        actual_theta += 1
        total_weight += weight
        if maximal:
            transactions.append(maximal)
            weights.append(weight)
    return transactions, weights, total_weight, actual_theta


def finalize_nds(
    transactions: List[NodeSet],
    weights: List[float],
    total_weight: float,
    actual_theta: int,
    k: int,
    min_size: int,
) -> NDSResult:
    """Mine the transaction database into the ranked Algorithm 5 result."""
    if not transactions:
        return NDSResult(top=[], theta=actual_theta, transactions=0)
    mined = top_k_closed_itemsets(transactions, k, min_size, weights)
    scale = 1.0 / total_weight if total_weight else 1.0
    top = [
        ScoredNodeSet(frozenset(closed.items), closed.support * scale)
        for closed in mined
    ]
    return NDSResult(
        top=top, theta=actual_theta, transactions=len(transactions)
    )


def evaluate_store_transactions(
    store,
    measure: DensityMeasure,
    engine: str = "auto",
    stage_stats: Optional[dict] = None,
) -> List[TransactionRecord]:
    """Replay a world store into Algorithm 5's transaction records.

    The evaluation half of the loop over stored worlds, shared by
    :func:`nds_from_store` and the session evaluation cache (which
    keeps the records to serve later ``k``/``min_size`` variants
    through the accumulate/finalize stages alone).

    When ``stage_stats`` is a dict and a vector engine ran, the
    engine measure's per-stage split (``EngineMeasure.stage_stats``)
    is merged into it -- the session's evaluation-timing seam.
    """
    worlds, loop_measure, engine_measure = store.world_stream(measure, engine)
    records = list(evaluate_transactions(worlds, loop_measure))
    if engine_measure is not None and stage_stats is not None:
        for key, value in engine_measure.stage_stats().items():
            stage_stats[key] = stage_stats.get(key, 0) + value
    return records


def nds_from_store(
    store,
    k: int = 1,
    min_size: int = 2,
    measure: Optional[DensityMeasure] = None,
    engine: str = "auto",
) -> NDSResult:
    """Algorithm 5 over a pre-sampled world store -- zero sampling work.

    ``store`` is a :class:`repro.engine.worldstore.WorldStore`; its
    worlds are replayed through the same evaluate/accumulate/finalize
    seams the streaming estimator uses, so the result is byte-identical
    to :func:`top_k_nds` with the seed/theta the store was drawn from.
    This is the seam :class:`repro.session.Session` queries consume.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if min_size < 1:
        raise ValueError(f"min_size (l_m) must be >= 1, got {min_size}")
    measure = measure or EdgeDensity()
    transactions, weights, total_weight, actual_theta = (
        accumulate_transactions(
            evaluate_store_transactions(store, measure, engine)
        )
    )
    return finalize_nds(
        transactions, weights, total_weight, actual_theta, k, min_size
    )


def collect_transactions(
    graph: UncertainGraph,
    theta: int,
    measure: DensityMeasure,
    sampler: Optional[WorldSampler] = None,
    seed: Optional[int] = None,
    engine: str = "auto",
) -> Tuple[List[NodeSet], List[float], float, int]:
    """Sample worlds and collect their maximum-sized densest subgraphs.

    The transaction-collection stage of Algorithm 5 (lines 3-4).
    Returns ``(transactions, weights, total_weight, actual_theta)``.
    """
    from ..engine.estimators import prepare_world_stream

    worlds, loop_measure, _engine_measure = prepare_world_stream(
        graph, theta, measure, sampler, seed, engine
    )
    return accumulate_transactions(
        evaluate_transactions(worlds, loop_measure)
    )


def top_k_nds(
    graph: UncertainGraph,
    k: int = 1,
    min_size: int = 2,
    theta: int = 640,
    measure: Optional[DensityMeasure] = None,
    sampler: Optional[WorldSampler] = None,
    seed: Optional[int] = None,
    engine: str = "auto",
) -> NDSResult:
    """Estimate the top-k Nucleus Densest Subgraphs (Algorithm 5).

    Thin shim over a one-shot :class:`repro.session.Session` query; use
    a session directly to reuse the sampled worlds across several
    queries (different ``k`` / ``min_size``, measures, NDS vs MPDS)
    without resampling.

    Parameters
    ----------
    graph:
        The uncertain graph.
    k:
        Number of closed node sets to return.
    min_size:
        ``l_m``, the minimum size of a returned node set (Problem 3's guard
        against trivial singletons).
    theta:
        Number of sampled possible worlds; Theorems 5-6 bound the failure
        probability (see :mod:`repro.core.guarantees`).
    measure / sampler / seed:
        As in :func:`repro.core.mpds.top_k_mpds`.
    engine:
        Possible-world engine selector (see :mod:`repro.engine`).
        ``auto`` vectorises every {MC, LP, RSS} x {edge, clique, pattern
        density} combination; identical estimates across engines for the
        same seed.
    """
    from ..session import Session

    return (
        Session(graph, engine=engine, cache_worlds=False)
        .query()
        .sampler(sampler, theta=theta, seed=seed)
        .measure(measure)
        .top_k(k)
        .min_size(min_size)
        .nds()
    )


def estimate_gamma(
    graph: UncertainGraph,
    nodes: NodeSet,
    theta: int = 640,
    measure: Optional[DensityMeasure] = None,
    seed: Optional[int] = None,
) -> float:
    """Estimate gamma(U) (Definition 5) by Monte Carlo.

    ``U`` is contained in a densest subgraph iff it is contained in the
    maximum-sized densest subgraph of the world (footnote 5).
    """
    measure = measure or EdgeDensity()
    sampler = MonteCarloSampler(graph, seed)
    target = frozenset(nodes)
    hits = 0.0
    total = 0.0
    for weighted in sampler.worlds(theta):
        total += weighted.weight
        maximal = measure.maximum_sized_densest(weighted.graph)
        if maximal is not None and target <= maximal:
            hits += weighted.weight
    return hits / total if total else 0.0
