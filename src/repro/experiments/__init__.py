"""Experiment drivers: one per table / figure of the paper's Section VI.

See DESIGN.md's per-experiment index for the mapping.  Each driver
returns structured rows and has a ``format_*`` companion that renders the
paper-style text table; the ``benchmarks/`` suite times and prints them.
"""

from .table1 import Table1Result, format_table1, run_table1
from .table3_4_baselines import (
    BaselineComparisonRow,
    format_table3_or_4,
    run_table3,
    run_table4,
)
from .table5_6_cohesiveness import (
    CohesivenessRow,
    format_cohesiveness,
    run_cohesiveness,
)
from .table7_dds import DDSRow, format_table7, run_table7
from .table8_9_all_vs_one import (
    AllVsOneRow,
    DensestCountRow,
    format_table8,
    format_table9,
    run_table8,
    run_table9,
)
from .table10_purity import PurityRow, format_table10, run_table10
from .table11_12_heuristics import (
    HeuristicRow,
    format_table11_12,
    run_table11,
    run_table12,
)
from .table13_14_sampling import (
    SamplerRow,
    format_table13_14,
    golden_table13_14,
    run_table13,
    run_table14,
)
from .table15_fig17_18_exact import (
    EdgeProbabilityRow,
    ExactVsApproxRow,
    F1Row,
    format_fig17,
    format_fig18,
    format_table15,
    run_fig17,
    run_fig18,
    run_table15,
    synthetic_graphs,
)
from .fig16_runtimes import (
    RuntimeRow,
    clique_measures,
    format_fig16,
    pattern_measures,
    run_fig16_engine_comparison,
    run_fig16_mpds,
    run_fig16_nds,
)
from .fig19_20_sensitivity import (
    KPoint,
    LmPoint,
    ThetaPoint,
    format_fig19,
    format_fig20,
    run_fig19,
    run_fig20_k,
    run_fig20_lm,
)
from .registry import EXPERIMENTS, experiment_names, run_experiment
from .case_studies import (
    BrainGroupResult,
    KarateCaseResult,
    format_brain_case,
    format_karate_case,
    run_brain_case,
    run_karate_case,
)

__all__ = [
    "EXPERIMENTS", "experiment_names", "run_experiment",
    "Table1Result", "format_table1", "run_table1",
    "BaselineComparisonRow", "format_table3_or_4", "run_table3", "run_table4",
    "CohesivenessRow", "format_cohesiveness", "run_cohesiveness",
    "DDSRow", "format_table7", "run_table7",
    "AllVsOneRow", "DensestCountRow", "format_table8", "format_table9",
    "run_table8", "run_table9",
    "PurityRow", "format_table10", "run_table10",
    "HeuristicRow", "format_table11_12", "run_table11", "run_table12",
    "SamplerRow", "format_table13_14", "golden_table13_14",
    "run_table13", "run_table14",
    "EdgeProbabilityRow", "ExactVsApproxRow", "F1Row",
    "format_fig17", "format_fig18", "format_table15",
    "run_fig17", "run_fig18", "run_table15", "synthetic_graphs",
    "RuntimeRow", "clique_measures", "format_fig16", "pattern_measures",
    "run_fig16_engine_comparison", "run_fig16_mpds", "run_fig16_nds",
    "KPoint", "LmPoint", "ThetaPoint",
    "format_fig19", "format_fig20", "run_fig19", "run_fig20_k", "run_fig20_lm",
    "BrainGroupResult", "KarateCaseResult",
    "format_brain_case", "format_karate_case",
    "run_brain_case", "run_karate_case",
]
