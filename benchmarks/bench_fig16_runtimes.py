"""Fig. 16: MPDS / NDS runtimes across density notions and datasets.

Includes the engine-ablation rider: the same edge-density MPDS run is
timed under both possible-world engines (``repro.engine``), which must
agree on the estimates and differ only in runtime.
"""

from repro.core.measures import CliqueDensity, EdgeDensity, PatternDensity
from repro.experiments import (
    format_fig16,
    run_fig16_engine_comparison,
    run_fig16_mpds,
    run_fig16_nds,
)
from repro.patterns.pattern import Pattern

from .conftest import BENCH_LARGE, BENCH_SMALL, emit


def test_fig16a_edge_clique_mpds(benchmark):
    measures = {
        "edge": EdgeDensity(),
        "3-clique": CliqueDensity(3),
        "4-clique": CliqueDensity(4),
        "5-clique": CliqueDensity(5),
    }
    rows = benchmark.pedantic(
        lambda: run_fig16_mpds(datasets=BENCH_SMALL, measures=measures,
                               panel="a", theta=12),
        rounds=1, iterations=1,
    )
    emit("fig16a_mpds_edge_clique", format_fig16(rows))
    by_key = {(r.dataset, r.notion): r.seconds for r in rows}
    for dataset in BENCH_SMALL:
        # the paper's shape: edge density is the cheapest notion (with a
        # 1.5x tolerance -- wall-clock on a shared machine is noisy)
        cliques = [by_key[(dataset, f"{h}-clique")] for h in (3, 4, 5)]
        assert by_key[(dataset, "edge")] <= 1.5 * max(cliques), dataset


def test_fig16_engine_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig16_engine_comparison(datasets=BENCH_SMALL, theta=24),
        rounds=1, iterations=1,
    )
    emit("fig16_engine_comparison", format_fig16(rows))
    by_key = {(r.dataset, r.notion): r.seconds for r in rows}
    for dataset in BENCH_SMALL:
        python = by_key[(dataset, "edge[python]")]
        vectorized = by_key[(dataset, "edge[vectorized]")]
        # identical estimates are asserted inside the driver; here we only
        # require the vectorized engine not to be slower in any real way
        # (tiny graphs leave little to vectorise -- allow noise headroom)
        assert vectorized <= 1.5 * python, (dataset, python, vectorized)


def test_fig16b_pattern_mpds(benchmark):
    measures = {
        p.name: PatternDensity(p)
        for p in (Pattern.two_star(), Pattern.diamond())
    }
    rows = benchmark.pedantic(
        lambda: run_fig16_mpds(
            datasets={"KarateClub": BENCH_SMALL["KarateClub"]},
            measures=measures, panel="b", theta=12,
        ),
        rounds=1, iterations=1,
    )
    emit("fig16b_mpds_patterns", format_fig16(rows))
    assert all(r.seconds > 0 for r in rows)


def test_fig16c_edge_clique_nds(benchmark):
    measures = {"edge": EdgeDensity(), "3-clique": CliqueDensity(3)}
    rows = benchmark.pedantic(
        lambda: run_fig16_nds(datasets=BENCH_LARGE, measures=measures,
                              panel="c", theta=8),
        rounds=1, iterations=1,
    )
    emit("fig16c_nds_edge_clique", format_fig16(rows))
    assert all(r.seconds > 0 for r in rows)


def test_fig16d_heuristic_pattern_nds(benchmark):
    measures = {
        p.name: PatternDensity(p)
        for p in (Pattern.two_star(), Pattern.three_star())
    }
    rows = benchmark.pedantic(
        lambda: run_fig16_nds(
            datasets={"HomoSapiens": BENCH_LARGE["HomoSapiens"]},
            measures=measures, panel="d", heuristic=True, theta=8,
        ),
        rounds=1, iterations=1,
    )
    emit("fig16d_nds_heuristic_patterns", format_fig16(rows))
    assert all(r.seconds > 0 for r in rows)
