"""Property-based invariants for the uncertain-graph estimators.

Definitional constraints from Section II that must hold for *any* input:
estimates are probabilities, gamma dominates tau on the same node set,
samplers emit subgraphs of the uncertain graph with weights summing to 1,
and the exact solvers respect the possible-world semantics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_candidate_probabilities, exact_gamma, exact_tau
from repro.core.mpds import top_k_mpds
from repro.core.nds import top_k_nds
from repro.graph.uncertain import UncertainGraph
from repro.sampling.lazy_propagation import LazyPropagationSampler
from repro.sampling.monte_carlo import MonteCarloSampler
from repro.sampling.stratified import RecursiveStratifiedSampler


@st.composite
def tiny_uncertain_graphs(draw, max_nodes: int = 5) -> UncertainGraph:
    """An uncertain graph small enough for exact 2^m enumeration."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    probs = draw(
        st.lists(
            st.one_of(
                st.none(),
                st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
            ),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    graph = UncertainGraph()
    for node in range(n):
        graph.add_node(node)
    for (u, v), p in zip(pairs, probs):
        if p is not None:
            graph.add_edge(u, v, p)
    return graph


@settings(max_examples=25, deadline=None)
@given(tiny_uncertain_graphs())
def test_exact_taus_are_probabilities(graph):
    # the sum over candidates can exceed 1 (a world may have several
    # densest subgraphs), but each individual tau is a probability
    taus = exact_candidate_probabilities(graph)
    for tau in taus.values():
        assert 0.0 <= tau <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(tiny_uncertain_graphs())
def test_gamma_dominates_tau(graph):
    """Containment is implied by inducing: gamma(U) >= tau(U) (Defs. 4-5)."""
    taus = exact_candidate_probabilities(graph)
    for nodes, tau in list(taus.items())[:6]:
        gamma = exact_gamma(graph, nodes)
        assert gamma >= tau - 1e-9


@settings(max_examples=15, deadline=None)
@given(tiny_uncertain_graphs())
def test_exact_tau_matches_candidate_table(graph):
    taus = exact_candidate_probabilities(graph)
    for nodes, tau in list(taus.items())[:4]:
        assert abs(exact_tau(graph, nodes) - tau) < 1e-9


@settings(max_examples=15, deadline=None)
@given(tiny_uncertain_graphs(), st.integers(min_value=1, max_value=3))
def test_estimator_outputs_are_sorted_probabilities(graph, k):
    result = top_k_mpds(graph, k=k, theta=30, seed=11)
    probabilities = [scored.probability for scored in result.top]
    assert probabilities == sorted(probabilities, reverse=True)
    for p in probabilities:
        assert 0.0 <= p <= 1.0


@settings(max_examples=15, deadline=None)
@given(tiny_uncertain_graphs())
def test_nds_results_have_min_size_and_sorted(graph):
    result = top_k_nds(graph, k=3, min_size=2, theta=30, seed=11)
    probabilities = [scored.probability for scored in result.top]
    assert probabilities == sorted(probabilities, reverse=True)
    for scored in result.top:
        assert len(scored.nodes) >= 2


@settings(max_examples=15, deadline=None)
@given(tiny_uncertain_graphs(), st.integers(min_value=1, max_value=30))
def test_samplers_emit_subworlds_with_unit_weight(graph, theta):
    edge_set = {frozenset(e) for e in graph.edges()}
    for sampler_cls in (
        MonteCarloSampler,
        LazyPropagationSampler,
        RecursiveStratifiedSampler,
    ):
        sampler = sampler_cls(graph, 7)
        total = 0.0
        count = 0
        for weighted in sampler.worlds(theta):
            count += 1
            total += weighted.weight
            assert weighted.graph.node_set() == frozenset(graph.nodes())
            for u, v in weighted.graph.edges():
                assert frozenset((u, v)) in edge_set
        assert count == theta
        assert abs(total - 1.0) < 1e-6, sampler_cls.__name__
