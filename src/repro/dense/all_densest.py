"""Enumerating *all* edge-densest subgraphs (Chang & Qiao [46]).

Line 5 of Algorithm 1 needs every node set inducing a densest subgraph in a
sampled possible world.  The pipeline (Example 4):

1. shrink to the ceil(rho~)-core (rho~ from Charikar peeling);
2. compute the exact optimum rho*_e with Goldberg's algorithm;
3. rebuild the flow network at exactly ``alpha = rho*_e`` (capacities scaled
   to integers) and compute a maximum flow -- its value is exactly ``2 m q``;
4. condense the residual graph into SCCs, drop the source/sink components,
   and enumerate independent component sets (Algorithm 3).

The maximum-sized densest subgraph (Algorithm 5, line 4) is the maximal
min-cut source side: the graph nodes that cannot reach the sink in the
residual graph; by [59] it equals the union of all densest subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from ..flow.csr import build_edge_density_network_csr
from ..flow.maxflow import (
    max_flow,
    min_cut_maximal_source_side,
    min_cut_source_side,
)
from ..flow.network import FlowNetwork
from ..flow.push_relabel import csr_max_preflow_min_cut, csr_push_relabel
from ..graph.graph import Graph, Node
from .component_enum import (
    ComponentStructure,
    build_component_structure,
    build_component_structure_indexed,
    count_independent_sets,
    enumerate_independent_sets,
)
from .goldberg import SINK, SOURCE, build_edge_density_network, densest_subgraph
from .kcore import k_core
from .peeling import _peel_arrays

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> dense)
    from ..engine.indexed import SubWorldView


@dataclass
class _Prepared:
    """Residual structure of the edge-density network at alpha = rho*."""

    density: Fraction
    structure: Optional[ComponentStructure]
    maximal_nodes: FrozenSet[Node]


def _finalise(
    core: Graph, density: Fraction, network: Optional[FlowNetwork] = None
) -> _Prepared:
    """Residual component structure + maximal min-cut side at alpha = rho*.

    ``core`` must contain every densest subgraph and ``density`` must be
    the exact optimum.  ``network`` may carry an already max-flowed
    Goldberg network at that alpha (its flow is reused); otherwise the
    flow is computed here and checked against ``2 m q``.
    """
    if network is None:
        network = build_edge_density_network(core, density)
        value = max_flow(network, SOURCE, SINK)
        expected = 2 * core.number_of_edges() * density.denominator
        if value != expected:  # pragma: no cover - guarded by exact rho*
            raise AssertionError(
                f"max flow {value} != 2 m q = {expected}; rho* not exact?"
            )
    structure = build_component_structure(
        network, SOURCE, SINK, is_graph_node=lambda label: label in core
    )
    maximal = frozenset(
        label
        for label in min_cut_maximal_source_side(network, SINK)
        if label in core
    )
    return _Prepared(density, structure, maximal)


def _prepare(graph: Graph) -> _Prepared:
    if graph.number_of_edges() == 0:
        return _Prepared(Fraction(0), None, frozenset())
    exact = densest_subgraph(graph)
    ceil_density = -(-exact.density.numerator // exact.density.denominator)
    core = k_core(graph, ceil_density)
    if core.number_of_edges() == 0:
        core = graph
    return _finalise(core, exact.density)


def prepare_from_bound(core: Graph, lower_bound: Fraction) -> _Prepared:
    """Residual structure of a world given a pre-shrunk core and a bound.

    Fast-path twin of :func:`_prepare` used by the vectorised engine
    (:mod:`repro.engine`).  ``core`` must be the ``ceil(lower_bound)``-core
    of some possible world ``W`` and ``lower_bound`` an edge density
    *achieved* by an induced subgraph of ``W`` (so ``core`` contains every
    densest subgraph of ``W``).  Returns exactly what ``_prepare(W)``
    would, but replaces Goldberg's ~``log(n^3)``-step binary search with
    Dinkelbach iteration: run one max flow at the currently achieved
    density; either it certifies optimality, or its min cut is a strictly
    denser subgraph to iterate from.  Achieved densities form a finite
    increasing chain, so this terminates -- in practice within 2-4 flows.

    The candidate sets, the exact density, and the maximum-sized densest
    subgraph are identical to the reference pipeline's; only the *order*
    in which :func:`enumerate_all_densest_subgraphs` emits candidates may
    differ, which is observable solely under a truncating ``limit``.
    """
    if core.number_of_edges() == 0:
        return _Prepared(Fraction(0), None, frozenset())
    alpha = Fraction(lower_bound)
    while True:
        network = build_edge_density_network(core, alpha)
        target = 2 * core.number_of_edges() * alpha.denominator
        value = max_flow(network, SOURCE, SINK)
        if value >= target:
            break
        side = set(min_cut_source_side(network, SOURCE))
        witness = frozenset(node for node in core if node in side)
        alpha = Fraction(
            core.subgraph(witness).number_of_edges(), len(witness)
        )
    # alpha is now the exact rho*; rebuild on the tighter ceil(rho*)-core
    # when it differs from `core` (mirroring _prepare), otherwise reuse
    # the certifying network -- it is already max-flowed at alpha.
    ceil_density = -(-alpha.numerator // alpha.denominator)
    shrunken = k_core(core, ceil_density)
    if shrunken.number_of_edges() == 0:  # pragma: no cover - see _prepare
        shrunken = core
    if shrunken.number_of_nodes() != core.number_of_nodes():
        return _finalise(shrunken, alpha)
    return _finalise(core, alpha, network=network)


def _dinkelbach_component(view: "SubWorldView", bound: Fraction):
    """Exact rho* of one connected component view via Dinkelbach flows.

    ``bound`` must be an edge density achieved by some induced subgraph
    dominated by the component (so that a certifying flow proves
    optimality).  Returns ``(rho*, network, view)`` where ``network`` is
    a max-flowed CSR Goldberg network of ``view`` at ``alpha = rho*``
    (``view`` may have been re-shrunk to the tighter ceil(rho*)-core,
    mirroring :func:`prepare_from_bound`).

    Delegates to the warm reverse-parametric chain
    (:func:`repro.flow.parametric.parametric_dinkelbach`), which runs one
    persistent push-relabel per component instead of one cold flow per
    Dinkelbach iteration; :func:`_dinkelbach_component_cold` keeps the
    classic restart loop for differential testing.
    """
    from ..flow.parametric import parametric_dinkelbach

    return parametric_dinkelbach(view, bound)


def _dinkelbach_component_cold(view: "SubWorldView", bound: Fraction):
    """Classic cold-restart Dinkelbach loop (reference implementation)."""
    alpha = Fraction(bound)
    while True:
        network = build_edge_density_network_csr(
            view.n, view.edge_lu, view.edge_lv, view.degrees(), alpha
        )
        # total source capacity is exactly the certification target, so a
        # value >= target preflow parked no excess and IS a max flow: the
        # network stays valid for residual queries, and the improving case
        # only needs the phase-1 height cut as its witness
        target = 2 * view.m * alpha.denominator
        value, cut = csr_max_preflow_min_cut(network)
        if value >= target:
            break
        member = np.array(cut[: view.n], dtype=bool)
        alpha = Fraction(view.induced_edges(member), int(member.sum()))
    # alpha is now the exact rho*; rebuild on the tighter ceil(rho*)-core
    # when it differs from `view` (mirroring prepare_from_bound),
    # otherwise reuse the certifying network -- it is already max-flowed.
    ceil_density = -(-alpha.numerator // alpha.denominator)
    shrunken = view.k_core(ceil_density)
    if shrunken.m == 0:  # pragma: no cover - see prepare_from_bound
        shrunken = view
    if shrunken.n != view.n:
        view = shrunken
        network = build_edge_density_network_csr(
            view.n, view.edge_lu, view.edge_lv, view.degrees(), alpha
        )
        value = csr_push_relabel(network)
        expected = 2 * view.m * alpha.denominator
        if value != expected:  # pragma: no cover - guarded by exact rho*
            raise AssertionError(
                f"max flow {value} != 2 m q = {expected}; rho* not exact?"
            )
    return alpha, network, view


def _component_residual_structure(network, view: "SubWorldView"):
    """Condense one component's max-flowed network; return its structure
    and the component's maximal min-cut side (as label frozensets).

    The condensation is restricted to the nodes that can no longer reach
    the sink (the maximal min-cut source side plus the source's own
    region): that set is successor-closed in the residual graph and
    contains every kept component -- each kept component's closure is a
    densest subgraph, and densest subgraphs lie inside the maximal
    min-cut source side -- so Tarjan only ever walks the dense pocket
    instead of the whole network.
    """
    coreachable = network.coreachable_to_sink()
    candidates = [i for i, flag in enumerate(coreachable) if not flag]
    adjacency = network.residual_adjacency(candidates)
    structure = build_component_structure_indexed(
        network.num_nodes,
        adjacency.__getitem__,
        network.source,
        network.sink,
        view.label_of,
        lambda label: True,
        vertices=candidates,
    )
    maximal = view.label_set(i for i in candidates if i < view.n)
    return structure, maximal


def _tree_structure(view: "SubWorldView"):
    """Closed-form residual structure of a tree component.

    A tree's unique densest subgraph is the whole tree (any proper
    induced subforest with ``c`` parts has density ``(n' - c) / n' <
    (n - 1) / n``), and the residual condensation of Goldberg's network
    at ``alpha = (n - 1) / n`` is a single kept SCC holding every tree
    node.  Synthesising it skips the flow entirely -- the bulk of the
    components of a sparse sampled world are trees.
    """
    labels = frozenset(view.labels())
    return ComponentStructure([labels], [labels], [set()], [set()]), labels


def _merge_structures(structures) -> ComponentStructure:
    """Concatenate disjoint components' structures (index-shifted).

    The residual SCC DAGs of distinct connected components share no
    edges, so merging is concatenation with renumbered descendant /
    ancestor sets; the enumeration over the merged structure then emits
    exactly the unions of per-component densest subgraphs.
    """
    if len(structures) == 1:
        return structures[0]
    components: List = []
    graph_nodes: List = []
    descendants: List = []
    ancestors: List = []
    offset = 0
    for structure in structures:
        components.extend(structure.components)
        graph_nodes.extend(structure.graph_nodes)
        descendants.extend(
            {child + offset for child in s} for s in structure.descendants
        )
        ancestors.extend(
            {child + offset for child in s} for s in structure.ancestors
        )
        offset += len(structure)
    return ComponentStructure(components, graph_nodes, descendants, ancestors)


def prepare_from_bound_csr(
    view: "SubWorldView", lower_bound: Fraction
) -> _Prepared:
    """Array-native twin of :func:`prepare_from_bound` over a world view.

    Runs the same exact pipeline, but entirely on the CSR/bitmask
    substrate, decomposed by connected component:

    * tree components are solved in closed form (:func:`_tree_structure`);
    * every other component gets a bucketed Charikar peel
      (:func:`repro.dense.peeling._peel_arrays`) for an achieved local
      bound plus its degeneracy, and is skipped outright when the
      degeneracy (an upper bound on any subgraph's density) cannot reach
      the best exact density already found;
    * surviving components run Dinkelbach iteration -- CSR Goldberg
      networks (:func:`repro.flow.csr.build_edge_density_network_csr`),
      flat push-relabel flows, mask k-core re-shrinks;
    * the residual structures of the components achieving ``rho*`` are
      concatenated (:func:`_merge_structures`), which reproduces the
      monolithic network's enumeration family exactly: a densest
      subgraph of a disjoint union is a union of component-densest
      subgraphs over components achieving the global optimum.

    No :class:`~repro.graph.graph.Graph` or
    :class:`~repro.flow.network.FlowNetwork` object is materialised, and
    node labels only re-enter in the returned structure's frozensets.

    The contract matches :func:`prepare_from_bound`: ``view`` must be the
    ``ceil(lower_bound)``-core of some possible world ``W`` (isolated
    nodes are tolerated and ignored) and ``lower_bound`` an edge density
    achieved by an induced subgraph of ``W``.  The returned density,
    candidate family and maximum-sized densest subgraph are
    byte-identical to the reference pipeline's; only the enumeration
    *order* of :attr:`_Prepared.structure` may differ (observable solely
    under a truncating ``limit``, which callers replay).
    """
    if view.m == 0:
        return _Prepared(Fraction(0), None, frozenset())
    components = view.components()
    solved = []  # (rho_c, max-flowed network or None for trees, comp view)
    if len(components) == 1 and components[0].m != components[0].n - 1:
        # single non-tree component: the caller's achieved global bound
        # applies to it directly, no per-component peel needed
        comp = components[0]
        solved.append(_dinkelbach_component(comp, lower_bound))
    else:
        trees = []
        others = []
        for comp in components:
            if comp.m == comp.n - 1:
                trees.append(comp)
            else:
                indptr, neighbors = comp.csr()
                _o, _e, num, den, _size, degeneracy = _peel_arrays(
                    comp.n, indptr, neighbors
                )
                others.append((Fraction(num, den), degeneracy, comp))
        best: Optional[Fraction] = None
        for comp in trees:
            rho_c = Fraction(comp.n - 1, comp.n)
            solved.append((rho_c, None, comp))
            if best is None or rho_c > best:
                best = rho_c
        others.sort(key=lambda item: item[0], reverse=True)
        for bound_c, degeneracy, comp in others:
            if best is not None and degeneracy < best:
                continue  # cannot contain a subgraph at the best density
            core = comp.k_core(-(-bound_c.numerator // bound_c.denominator))
            if core.m == 0:  # pragma: no cover - bound is achieved in comp
                core = comp
            result = _dinkelbach_component(core, bound_c)
            solved.append(result)
            if best is None or result[0] > best:
                best = result[0]
    rho = max(entry[0] for entry in solved)
    structures = []
    maximal = set()
    for rho_c, network, comp in solved:
        if rho_c != rho:
            continue
        if network is None:
            structure, comp_maximal = _tree_structure(comp)
        else:
            structure, comp_maximal = _component_residual_structure(
                network, comp
            )
        structures.append(structure)
        maximal |= comp_maximal
    return _Prepared(rho, _merge_structures(structures), frozenset(maximal))


def enumerate_all_densest_subgraphs(
    graph: Graph, limit: Optional[int] = None
) -> Iterator[FrozenSet[Node]]:
    """Yield the node set of every edge-densest subgraph of ``graph``.

    Each is yielded exactly once (Corollary 2 / [46]).  On an edgeless
    graph nothing is yielded (the paper's convention for empty worlds).
    ``limit`` truncates the enumeration.
    """
    prepared = _prepare(graph)
    if prepared.structure is None:
        return
    yield from enumerate_independent_sets(prepared.structure, limit)


def all_densest_subgraphs(
    graph: Graph, limit: Optional[int] = None
) -> List[FrozenSet[Node]]:
    """Return the list of all edge-densest subgraphs (see enumerate version)."""
    return list(enumerate_all_densest_subgraphs(graph, limit))


def count_densest_subgraphs(graph: Graph) -> int:
    """Return the number of edge-densest subgraphs (Table VIII statistic)."""
    prepared = _prepare(graph)
    if prepared.structure is None:
        return 0
    return count_independent_sets(prepared.structure)


def maximum_sized_densest_subgraph(
    graph: Graph,
) -> Tuple[Fraction, FrozenSet[Node]]:
    """Return ``(rho*_e, nodes)`` of the maximum-sized densest subgraph.

    Equals the union of the node sets of all densest subgraphs ([59]);
    computed directly from the maximal min-cut source side without
    enumerating (Algorithm 5 line 4 for edge density).
    """
    prepared = _prepare(graph)
    return prepared.density, prepared.maximal_nodes
