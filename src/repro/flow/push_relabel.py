"""FIFO push-relabel maximum flow (ablation / cross-check for Dinic).

The library's primary max-flow engine is Dinic's algorithm
(:mod:`repro.flow.maxflow`); this module provides the classic
Goldberg-Tarjan FIFO push-relabel algorithm over the same
:class:`~repro.flow.network.FlowNetwork` so the two can cross-validate each
other (tests) and be compared on the paper's flow networks
(``benchmarks/bench_ablation_maxflow.py``).

Like Dinic, it runs on exact ``int`` / ``Fraction`` capacities and leaves
the network's arcs carrying a valid maximum flow, so all residual-graph
queries (min-cut sides, SCC condensation) work identically afterwards.

Implementation notes: FIFO active-node queue, per-node current-arc
pointers, and the gap heuristic (when a height level empties, every node
above it is lifted past ``n``), which matters on the star-shaped networks
Goldberg's construction produces.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .network import Capacity, FlowNetwork, NetNode


def push_relabel_max_flow(
    network: FlowNetwork, source: NetNode, sink: NetNode
) -> Capacity:
    """Push a maximum flow from ``source`` to ``sink``; return its value.

    Mutates arc flows in place (call ``network.reset_flow()`` to start
    over), exactly like :func:`repro.flow.maxflow.max_flow`.
    """
    s = network.index_of(source)
    t = network.index_of(sink)
    if s == t:
        raise ValueError("source and sink must differ")
    n = network.number_of_nodes()
    height = [0] * n
    excess: List[Capacity] = [0] * n
    height[s] = n
    count_at_height = [0] * (2 * n + 2)
    count_at_height[0] = n - 1
    count_at_height[n] = 1

    active: deque = deque()
    in_queue = [False] * n

    def enqueue(node: int) -> None:
        if not in_queue[node] and node != s and node != t and excess[node] > 0:
            in_queue[node] = True
            active.append(node)

    # saturate every arc out of the source
    for arc in network.arcs_from(s):
        if arc.capacity <= 0:
            continue
        delta = arc.residual()
        if delta <= 0:
            continue
        arc.flow = arc.flow + delta
        arc.reverse.flow = arc.reverse.flow - delta
        excess[arc.head] = excess[arc.head] + delta
        excess[s] = excess[s] - delta
        enqueue(arc.head)

    pointers = [0] * n

    def relabel(node: int) -> None:
        old = height[node]
        smallest = 2 * n
        for arc in network.arcs_from(node):
            if arc.residual() > 0:
                smallest = min(smallest, height[arc.head])
        height[node] = smallest + 1
        count_at_height[old] -= 1
        count_at_height[height[node]] += 1
        pointers[node] = 0
        # gap heuristic: a now-empty level below n disconnects everything
        # above it from the sink; lift those nodes past n in one step
        if count_at_height[old] == 0 and old < n:
            for other in range(n):
                if old < height[other] <= n and other != s:
                    count_at_height[height[other]] -= 1
                    height[other] = n + 1
                    count_at_height[n + 1] += 1

    while active:
        node = active.popleft()
        in_queue[node] = False
        arcs = network.arcs_from(node)
        while excess[node] > 0:
            if pointers[node] >= len(arcs):
                relabel(node)
                if height[node] > 2 * n:  # pragma: no cover - defensive
                    break
                continue
            arc = arcs[pointers[node]]
            if arc.residual() > 0 and height[node] == height[arc.head] + 1:
                delta = min(excess[node], arc.residual())
                arc.flow = arc.flow + delta
                arc.reverse.flow = arc.reverse.flow - delta
                excess[node] = excess[node] - delta
                excess[arc.head] = excess[arc.head] + delta
                enqueue(arc.head)
            else:
                pointers[node] += 1
        if excess[node] > 0:  # pragma: no cover - defensive re-queue
            enqueue(node)
    return excess[t]
