"""Strongly connected components of directed graphs (iterative Tarjan).

Used to condense the residual graph of a maximum flow into its SCC DAG
(line 7 of Algorithms 2 and 4; the [46] enumeration for edge density).

The implementation is iterative so deep residual graphs do not hit Python's
recursion limit.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List

Vertex = Hashable


def strongly_connected_components(
    vertices: Iterable[Vertex],
    successors: Callable[[Vertex], Iterable[Vertex]],
) -> List[List[Vertex]]:
    """Return the SCCs of the graph given by ``vertices`` and ``successors``.

    Components are returned in reverse topological order of the condensation
    (every edge of the SCC DAG goes from a later component to an earlier one
    in the returned list), which is the order Tarjan's algorithm emits.
    """
    index_counter = 0
    indices: Dict[Vertex, int] = {}
    lowlink: Dict[Vertex, int] = {}
    on_stack: Dict[Vertex, bool] = {}
    stack: List[Vertex] = []
    components: List[List[Vertex]] = []

    for root in vertices:
        if root in indices:
            continue
        # each frame: (vertex, iterator over its successors)
        work = [(root, iter(successors(root)))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            vertex, successor_iter = work[-1]
            advanced = False
            for child in successor_iter:
                if child not in indices:
                    indices[child] = lowlink[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(successors(child))))
                    advanced = True
                    break
                if on_stack.get(child, False):
                    lowlink[vertex] = min(lowlink[vertex], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == indices[vertex]:
                component: List[Vertex] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
    return components


def strongly_connected_components_indexed(
    num_nodes: int,
    vertices: Iterable[int],
    successors: Callable[[int], Iterable[int]],
) -> List[List[int]]:
    """Array-backed Tarjan for integer vertices in ``[0, num_nodes)``.

    Semantically identical to :func:`strongly_connected_components`
    (same emission order -- reverse topological), but bookkeeping lives
    in flat lists instead of dicts, which is measurably faster on the
    per-world residual condensations of the CSR flow pipeline.
    """
    UNSEEN = -1
    index_counter = 0
    indices = [UNSEEN] * num_nodes
    lowlink = [0] * num_nodes
    on_stack = [False] * num_nodes
    stack: List[int] = []
    components: List[List[int]] = []

    for root in vertices:
        if indices[root] != UNSEEN:
            continue
        work = [(root, iter(successors(root)))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            vertex, successor_iter = work[-1]
            advanced = False
            for child in successor_iter:
                if indices[child] == UNSEEN:
                    indices[child] = lowlink[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(successors(child))))
                    advanced = True
                    break
                if on_stack[child]:
                    if indices[child] < lowlink[vertex]:
                        lowlink[vertex] = indices[child]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[vertex] < lowlink[parent]:
                    lowlink[parent] = lowlink[vertex]
            if lowlink[vertex] == indices[vertex]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
    return components


def condensation_successors(
    components: List[List[Vertex]],
    successors: Callable[[Vertex], Iterable[Vertex]],
) -> List[List[int]]:
    """Return adjacency lists of the SCC DAG (component index -> indices).

    Component indices refer to positions in ``components``.  Parallel edges
    are deduplicated; self-loops (intra-component edges) are dropped.
    """
    component_of: Dict[Vertex, int] = {}
    for i, component in enumerate(components):
        for vertex in component:
            component_of[vertex] = i
    dag: List[List[int]] = [[] for _ in components]
    seen_pairs = set()
    for i, component in enumerate(components):
        for vertex in component:
            for child in successors(vertex):
                j = component_of[child]
                if j != i and (i, j) not in seen_pairs:
                    seen_pairs.add((i, j))
                    dag[i].append(j)
    return dag
