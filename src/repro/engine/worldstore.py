"""Seed-keyed store of sampled possible worlds, replayable across queries.

The sampling estimators (Algorithms 1 and 5) share one expensive phase:
drawing ``theta`` possible worlds.  A :class:`WorldStore` captures one
such draw as flat arrays -- the world-mask matrix, the ``(T,)``
estimator weights, and the LP/RSS per-world edge insertion orders --
exactly the representation the parallel substrate already ships to
workers (:func:`repro.engine.blocks.drain_mask_stream`).  The store can
then be *replayed* any number of times, by any query (MPDS or NDS, any
``k`` / ``min_size`` / measure / engine / worker count), without
touching a sampler again.

Packed substrate
----------------
By default the mask matrix is held **bit-packed**
(:class:`repro.engine.bitset.PackedMasks`: uint64 words, 8x less memory
than the boolean ``(T, m)`` byte matrix) and unpacked lazily, one world
row at a time, only at the python-replay boundary --
:class:`MaskWorld` construction and ``world_graph`` materialisation.
``packed=False`` keeps the historical byte matrix (the differential
harness ``tests/test_bitset_differential.py`` pins both
representations byte-identical cell by cell).

An explicit ``memory_budget`` (bytes) additionally caps the *resident*
packed mask blocks: the rows are sharded over the same fixed <=64-block
chunk grid the parallel substrate uses
(:func:`repro.engine.blocks.plan_blocks`), spilled to a private
temporary file, and streamed back in block by block as replay touches
them, with least-recently-used blocks evicted whenever residency would
exceed the budget.  Spilled blocks only change under dynamic-store
surgery, which writes through to the spill file immediately
(:meth:`_MaskPager.write_block`), so eviction never writes back.
:attr:`WorldStore.peak_mask_bytes` tracks the high-water mark the
budget is asserted against.

Byte-identity contract
----------------------
:meth:`world_stream` rebuilds, world by world, the very objects the
one-shot estimators would have evaluated for the same seed:

* vectorised engines get fresh :class:`MaskWorld` views over the stored
  mask rows (with the original insertion orders attached);
* the pure-Python engine gets :meth:`IndexedGraph.world_graph`
  materialisations replaying the exact insertion sequence of the
  originating sampler.

Since the stored arrays are drained from the sampler's *continuous* RNG
stream (the same drain the parallel substrate uses, whose
worker-count-invariance tests pin this replay), estimates computed from
a store are **byte-identical** to the equivalent one-shot
``top_k_mpds`` / ``top_k_nds`` call -- the property
``tests/test_session_differential.py`` asserts cell by cell -- and
packing / budgeting never enters the contract: a packed or budgeted
store replays the same bytes an unpacked resident store replays.

*Dynamic* stores (``dynamic=True``, drawn by
:func:`repro.delta.draw_dynamic_store`) trade the continuous-stream
contract for maintainability: each mask column comes from a per-edge
substream, so :meth:`set_column` / :meth:`replace_contents` can
surgically apply a :class:`repro.delta.GraphDelta` while staying
byte-identical to a from-scratch dynamic draw on the mutated graph.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..sampling.base import WeightedWorld
from .bitset import PackedMasks
from .indexed import IndexedGraph, MaskWorld

#: world-mask storage: the packed words or the historical byte matrix
MaskMatrix = Union[PackedMasks, np.ndarray]


class _MaskPager:
    """Spill/stream packed mask blocks under an explicit byte budget.

    Blocks follow the parallel substrate's fixed chunk grid
    (:func:`repro.engine.blocks.plan_blocks` over the world count), so
    the streaming unit is the same unit workers claim.  All blocks are
    written once to an anonymous temporary file at construction; reads
    load a block's words back and evict least-recently-used blocks
    until residency fits the budget again.  The budget must fit the
    largest single block -- streaming is per-block, not per-row.
    """

    __slots__ = (
        "m", "blocks", "budget", "path", "_file", "_offsets", "_nbytes",
        "_shape", "_resident", "resident_bytes", "peak_resident_bytes",
        "block_loads", "block_evictions",
    )

    def __init__(
        self, packed: PackedMasks, blocks: List[Tuple[int, int]], budget: int
    ) -> None:
        words = packed.words
        self.m = packed.m
        self.blocks = blocks
        largest = max(
            (stop - start) * words.shape[1] * 8 for start, stop in blocks
        )
        if budget < largest:
            raise ValueError(
                f"memory_budget={budget} bytes cannot hold the largest "
                f"mask block ({largest} bytes); raise the budget or "
                "shrink theta"
            )
        self.budget = budget
        # named (not anonymous) so an I/O failure can point at the file
        self._file = tempfile.NamedTemporaryFile(
            prefix="repro-worldstore-", suffix=".spill"
        )
        self.path = self._file.name
        self._offsets: List[int] = []
        self._nbytes: List[int] = []
        self._shape: List[Tuple[int, int]] = []
        offset = 0
        for start, stop in blocks:
            chunk = np.ascontiguousarray(words[start:stop])
            self._file.write(chunk.tobytes())
            self._offsets.append(offset)
            self._nbytes.append(chunk.nbytes)
            self._shape.append(chunk.shape)
            offset += chunk.nbytes
        #: block index -> resident words, in least-recently-used order
        self._resident: Dict[int, np.ndarray] = {}
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.block_loads = 0
        self.block_evictions = 0

    def block_words(self, index: int) -> np.ndarray:
        """Return block ``index``'s words, streaming them in on a miss."""
        resident = self._resident
        words = resident.pop(index, None)
        if words is not None:
            resident[index] = words  # refresh recency
            return words
        nbytes = self._nbytes[index]
        # evict before loading so the budget bounds true co-residency
        while resident and self.resident_bytes + nbytes > self.budget:
            oldest = next(iter(resident))
            self.resident_bytes -= resident.pop(oldest).nbytes
            self.block_evictions += 1
        self._file.seek(self._offsets[index])
        data = self._file.read(nbytes)
        if len(data) != nbytes:
            # a short read used to flow straight into reshape and fail
            # far from the cause; name the file and block instead
            raise IOError(
                f"short read from world-store spill file {self.path}: "
                f"block {index} expected {nbytes} bytes, "
                f"got {len(data)}"
            )
        words = np.frombuffer(data, dtype=np.uint64).reshape(
            self._shape[index]
        )
        resident[index] = words
        self.resident_bytes += nbytes
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes
        )
        self.block_loads += 1
        return words

    def write_block(self, index: int, words: np.ndarray) -> None:
        """Overwrite block ``index``'s spilled words (same-shape surgery).

        Write-through: the spill file is updated immediately, so the
        no-write-back eviction invariant holds even after surgery.  The
        block's size never changes, so the residency ledger only swaps
        the resident copy (if any) and the budget stays truthful.
        """
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.shape != self._shape[index]:
            raise ValueError(
                f"block {index} surgery must preserve shape "
                f"{self._shape[index]}, got {words.shape}"
            )
        self._file.seek(self._offsets[index])
        self._file.write(words.tobytes())
        self._file.flush()
        if index in self._resident:
            self._resident[index] = words

    def block_of(self, i: int) -> int:
        """Grid block index containing world row ``i`` (equal-size grid)."""
        start, stop = self.blocks[0]
        return min(i // (stop - start), len(self.blocks) - 1)

    def row(self, i: int) -> np.ndarray:
        """World row ``i``'s packed words, streamed via its block."""
        index = self.block_of(i)
        start, _stop = self.blocks[index]
        return self.block_words(index)[i - start]

    def close(self) -> None:
        """Drop resident blocks and delete the spill file (idempotent)."""
        self._resident.clear()
        self.resident_bytes = 0
        if self._file is not None:
            self._file.close()
            self._file = None

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


class WorldStore:
    """One draw of sampled worlds, held as replayable flat arrays."""

    __slots__ = (
        "indexed", "weights", "order_data", "order_indptr",
        "kind", "theta", "seed", "memory_budget", "dynamic",
        "_masks", "_pager",
    )

    def __init__(
        self,
        indexed: IndexedGraph,
        masks: MaskMatrix,
        weights: np.ndarray,
        order_data: Optional[np.ndarray],
        order_indptr: Optional[np.ndarray],
        kind: str = "mc",
        theta: Optional[int] = None,
        seed: Optional[int] = None,
        packed: Optional[bool] = None,
        memory_budget: Optional[int] = None,
        dynamic: bool = False,
    ) -> None:
        self.indexed = indexed
        self.weights = weights
        self.order_data = order_data
        self.order_indptr = order_indptr
        self.kind = kind
        self.theta = len(weights) if theta is None else theta
        self.seed = seed
        self.memory_budget = memory_budget
        self.dynamic = bool(dynamic)
        if packed is None:
            packed = not isinstance(masks, np.ndarray)
        if packed and isinstance(masks, np.ndarray):
            masks = PackedMasks.from_bool(masks)
        elif not packed and isinstance(masks, PackedMasks):
            masks = masks.to_bool()
        self._masks: MaskMatrix = masks
        self._pager: Optional[_MaskPager] = None
        if memory_budget is not None:
            if not isinstance(masks, PackedMasks):
                raise ValueError(
                    "memory_budget requires a packed store "
                    "(packed=False holds the full byte matrix resident)"
                )
            if len(weights) > 0 and self.indexed.m > 0:
                from .blocks import plan_blocks

                self._pager = _MaskPager(
                    masks, plan_blocks(len(weights)), memory_budget
                )
                # the full word matrix is dropped: from here on at most
                # `memory_budget` bytes of mask blocks are resident
                self._masks = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_vectorized(
        cls,
        sampler,
        theta: int,
        kind: str = "mc",
        seed: Optional[int] = None,
        packed: bool = True,
        memory_budget: Optional[int] = None,
    ) -> "WorldStore":
        """Drain a vectorised sampler's continuous stream into a store."""
        from .blocks import drain_mask_stream

        masks, weights, order_data, order_indptr = drain_mask_stream(
            sampler, theta
        )
        return cls(
            sampler.indexed, masks, weights, order_data, order_indptr,
            kind=kind, theta=theta, seed=seed, packed=packed,
            memory_budget=memory_budget,
        )

    @classmethod
    def from_sampler(
        cls,
        graph,
        sampler,
        theta: int,
        seed: Optional[int] = None,
        packed: bool = True,
        memory_budget: Optional[int] = None,
    ) -> "WorldStore":
        """Drain a pure-Python (or vectorised) sampler via its twin.

        ``sampler=None`` replicates ``MonteCarloSampler(graph, seed)``,
        exactly as the one-shot estimators do.
        """
        from .estimators import vectorized_sampler

        vec = vectorized_sampler(graph, sampler, seed)
        kind = getattr(sampler, "name", None) or "mc"
        return cls.from_vectorized(
            vec, theta, kind=str(kind).lower(), seed=seed, packed=packed,
            memory_budget=memory_budget,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Actual number of stored worlds (RSS may differ from theta)."""
        return len(self.weights)

    @property
    def packed(self) -> bool:
        """Whether the mask matrix is held as uint64 words."""
        return self._pager is not None or isinstance(
            self._masks, PackedMasks
        )

    @property
    def masks(self) -> np.ndarray:
        """The boolean ``(T, m)`` mask matrix (compat / oracle boundary).

        For a packed store this *materialises* a fresh byte matrix --
        use :meth:`mask_row` / the replay iterators on hot paths.
        """
        matrix = self.mask_matrix()
        if isinstance(matrix, PackedMasks):
            return matrix.to_bool()
        return matrix

    def mask_matrix(self) -> MaskMatrix:
        """The stored mask matrix: :class:`PackedMasks` or a byte matrix.

        Both support ``matrix[i]`` -> boolean row, which is all the
        replay and fan-out paths need.  A budgeted store re-assembles
        one full (packed) matrix here -- the entry point shared-memory
        publication uses, documented as outside the residency budget
        (the segment is shared across processes, not store-resident).
        """
        if self._pager is not None:
            pager = self._pager
            words = np.concatenate(
                [
                    np.asarray(pager.block_words(index))
                    for index in range(len(pager.blocks))
                ]
            ) if pager.blocks else np.zeros((0, 0), dtype=np.uint64)
            return PackedMasks(words, pager.m)
        return self._masks

    @property
    def mask_nbytes(self) -> int:
        """Resident bytes of the mask representation (packed counts words,
        a budgeted store counts its currently resident blocks)."""
        if self._pager is not None:
            return self._pager.resident_bytes
        return self._masks.nbytes

    @property
    def peak_mask_bytes(self) -> int:
        """High-water mark of resident mask bytes (what a
        ``memory_budget`` bounds; equals :attr:`mask_nbytes` for
        unbudgeted stores)."""
        if self._pager is not None:
            return self._pager.peak_resident_bytes
        return self._masks.nbytes

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the stored world arrays."""
        total = self.mask_nbytes + self.weights.nbytes
        if self.order_data is not None:
            total += self.order_data.nbytes + self.order_indptr.nbytes
        return total

    def memory_units(self) -> int:
        """Resident mask storage in sampler-style abstract units (bytes).

        Extends the samplers' ``memory_units`` bookkeeping to the store
        tier: the figure a ``memory_budget`` bounds at every step.
        """
        return self.mask_nbytes

    def mask_row(self, i: int) -> np.ndarray:
        """World ``i``'s boolean edge mask (unpacked lazily)."""
        if self._pager is not None:
            from .bitset import unpack_row

            return unpack_row(self._pager.row(i), self._pager.m)
        return self._masks[i]

    def order(self, i: int) -> Optional[np.ndarray]:
        """Edge insertion order of world ``i`` (None = edge-index order)."""
        if self.order_data is None:
            return None
        return self.order_data[self.order_indptr[i]:self.order_indptr[i + 1]]

    # ------------------------------------------------------------------
    # surgery (dynamic-store maintenance; see repro.delta)
    # ------------------------------------------------------------------
    def set_column(self, j: int, column: np.ndarray) -> np.ndarray:
        """Overwrite edge ``j``'s outcome column; return flipped worlds.

        The probability-update fast path: one ``(T,)`` boolean column
        is written in place -- directly for an unpacked store, via
        single-word surgery for a packed one
        (:meth:`PackedMasks.set_column`, which also invalidates its row
        cache), and block by block through the pager for a budgeted
        store (each block is loaded, patched and written through, so
        residency never exceeds the budget).  Returns the indices of
        the worlds whose bit actually changed -- the evaluation-cache
        invalidation set.
        """
        column = np.asarray(column)
        if column.dtype != np.bool_:
            column = column.astype(bool)
        if column.shape != (self.count,):
            raise ValueError(
                f"column must have shape ({self.count},), "
                f"got {column.shape}"
            )
        if self._pager is not None:
            from .bitset import WORD_BITS

            word, bitpos = divmod(range(self.indexed.m)[j], WORD_BITS)
            bit = np.uint64(1 << bitpos)
            clear = np.uint64(~(1 << bitpos) & (2**64 - 1))
            pager = self._pager
            flipped: List[np.ndarray] = []
            for index, (start, stop) in enumerate(pager.blocks):
                # spilled words come off np.frombuffer read-only views;
                # surgery needs a private writable copy
                words = np.array(pager.block_words(index))
                old = (words[:, word] & bit) != 0
                part = column[start:stop]
                changed = np.flatnonzero(old != part)
                if len(changed):
                    words[:, word] &= clear
                    words[:, word] |= np.where(part, bit, np.uint64(0))
                    pager.write_block(index, words)
                    flipped.append(changed + start)
            if not flipped:
                return np.zeros(0, dtype=np.int64)
            return np.concatenate(flipped)
        if isinstance(self._masks, PackedMasks):
            old = self._masks.set_column(j, column)
        else:
            if not self._masks.flags.writeable:
                self._masks = self._masks.copy()
            old = self._masks[:, j].copy()
            self._masks[:, j] = column
        return np.flatnonzero(old != column)

    def rebuild_orders(self) -> None:
        """Recompute the insertion-order sidecar from the mask rows.

        Dynamic stores define per-world insertion order as ascending
        edge id -- a pure function of each mask row -- so after column
        surgery the sidecar is rebuilt by streaming the rows (budgeted
        stores stay within budget).  No-op for stores without orders.
        """
        if self.order_data is None:
            return
        data: List[np.ndarray] = []
        indptr = np.zeros(self.count + 1, dtype=np.int64)
        total = 0
        for i, row in enumerate(self._iter_mask_rows()):
            alive = np.flatnonzero(row).astype(np.int64)
            data.append(alive)
            total += len(alive)
            indptr[i + 1] = total
        self.order_data = (
            np.concatenate(data) if data else np.zeros(0, dtype=np.int64)
        )
        self.order_indptr = indptr

    def replace_contents(
        self,
        masks: np.ndarray,
        order_data: Optional[np.ndarray],
        order_indptr: Optional[np.ndarray],
        indexed: IndexedGraph,
    ) -> None:
        """Swap in post-surgery contents (structural-delta rebuilds).

        Insertions and deletions change the mask width, which in-place
        word surgery cannot express; the caller rebuilds the boolean
        matrix and this method re-packs / re-pages it under the store's
        own representation and budget, closing the previous spill file.
        """
        masks = np.asarray(masks)
        if masks.dtype != np.bool_:
            masks = masks.astype(bool)
        if masks.shape != (self.count, indexed.m):
            raise ValueError(
                f"replacement masks must have shape "
                f"({self.count}, {indexed.m}), got {masks.shape}"
            )
        was_packed = self.packed
        if self._pager is not None:
            self._pager.close()
            self._pager = None
        self.indexed = indexed
        self.order_data = order_data
        self.order_indptr = order_indptr
        if not was_packed:
            self._masks = masks
            return
        packed = PackedMasks.from_bool(masks)
        self._masks = packed
        if (
            self.memory_budget is not None
            and self.count > 0
            and indexed.m > 0
        ):
            from .blocks import plan_blocks

            self._pager = _MaskPager(
                packed, plan_blocks(self.count), self.memory_budget
            )
            self._masks = None

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _iter_mask_rows(self) -> Iterator[np.ndarray]:
        """Yield every world's boolean mask row, in stream order.

        Budgeted stores stream block by block through the pager (at
        most ``memory_budget`` bytes of packed blocks resident);
        resident stores unpack row by row.
        """
        if self._pager is not None:
            from .bitset import unpack_rows

            pager = self._pager
            for index, (start, stop) in enumerate(pager.blocks):
                rows = unpack_rows(pager.block_words(index), pager.m)
                for offset in range(stop - start):
                    yield rows[offset]
        else:
            for i in range(self.count):
                yield self._masks[i]

    def mask_worlds(
        self, subset: Optional[np.ndarray] = None
    ) -> Iterator[WeightedWorld]:
        """Yield the stored worlds as fresh :class:`MaskWorld` views.

        ``subset`` restricts replay to those world indices (ascending
        by convention) -- the seam stale-evaluation patching uses to
        re-evaluate only flipped worlds after a delta.
        """
        if subset is None:
            for i, mask in enumerate(self._iter_mask_rows()):
                yield WeightedWorld(
                    MaskWorld(self.indexed, mask, self.order(i)),
                    float(self.weights[i]),
                )
            return
        for i in subset:
            i = int(i)
            yield WeightedWorld(
                MaskWorld(self.indexed, self.mask_row(i), self.order(i)),
                float(self.weights[i]),
            )

    def graph_worlds(
        self, subset: Optional[np.ndarray] = None
    ) -> Iterator[WeightedWorld]:
        """Yield the stored worlds materialised as :class:`Graph` objects,
        replaying each world's exact insertion sequence."""
        if subset is None:
            for i, mask in enumerate(self._iter_mask_rows()):
                yield WeightedWorld(
                    self.indexed.world_graph(mask, self.order(i)),
                    float(self.weights[i]),
                )
            return
        for i in subset:
            i = int(i)
            yield WeightedWorld(
                self.indexed.world_graph(self.mask_row(i), self.order(i)),
                float(self.weights[i]),
            )

    def world_stream(
        self,
        measure,
        engine: str = "auto",
        subset: Optional[np.ndarray] = None,
    ) -> Tuple:
        """Build one query's ``(worlds, loop_measure, engine_measure)``.

        The store-backed twin of
        :func:`repro.engine.estimators.prepare_world_stream`: resolves
        the engine for ``measure`` (stored streams are always
        replayable, so only the measure matters) and returns the world
        iterator plus the measure the estimator loop should query.
        ``subset`` replays only those world indices.
        """
        from .estimators import (
            VECTOR_ENGINES,
            EngineMeasure,
            primed_world_stream,
            resolve_engine,
        )

        resolved = resolve_engine(engine, None, measure)
        if resolved in VECTOR_ENGINES:
            engine_measure = EngineMeasure(measure, tier=resolved)
            return (
                primed_world_stream(
                    self.mask_worlds(subset), engine_measure
                ),
                engine_measure,
                engine_measure,
            )
        return self.graph_worlds(subset), measure, None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the spill file of a budgeted store (idempotent)."""
        if self._pager is not None:
            self._pager.close()

    def __repr__(self) -> str:
        budget = (
            f", memory_budget={self.memory_budget}"
            if self.memory_budget is not None
            else ""
        )
        dynamic = ", dynamic=True" if self.dynamic else ""
        return (
            f"WorldStore(kind={self.kind!r}, worlds={self.count}, "
            f"m={self.indexed.m}, seed={self.seed!r}, "
            f"packed={self.packed}{budget}{dynamic})"
        )
