"""Max-flow substrate: networks with residual access, Dinic, SCCs."""

from .network import Arc, Capacity, FlowNetwork, NetNode
from .maxflow import max_flow, min_cut_maximal_source_side, min_cut_source_side
from .push_relabel import push_relabel_max_flow
from .scc import condensation_successors, strongly_connected_components

__all__ = [
    "Arc",
    "Capacity",
    "FlowNetwork",
    "NetNode",
    "max_flow",
    "min_cut_maximal_source_side",
    "min_cut_source_side",
    "push_relabel_max_flow",
    "condensation_successors",
    "strongly_connected_components",
]
