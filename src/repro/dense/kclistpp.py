"""kClist++-style Frank-Wolfe solver for the h-clique densest subgraph [57].

Algorithm 2 (line 4) cites Sun et al.'s convex-programming method to obtain
``rho*_h``.  Our primary implementation computes ``rho*_h`` exactly by
binary-searching the Algorithm 6 flow network (see
:mod:`repro.dense.clique_density`); this module provides the cited
sequential-update solver so the two can be compared (ablation bench).

The solver distributes one unit of weight per h-clique to its currently
lightest member, repeated for ``iterations`` rounds; sorting nodes by final
weight and sweeping prefixes extracts a candidate subgraph whose density
converges to ``rho*_h``.  It is an anytime approximation: the returned
density is always achieved (a valid lower bound), reaching the exact
optimum once the weights have stabilised enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Tuple

from ..cliques.enumeration import enumerate_cliques
from ..graph.graph import Graph, Node


@dataclass(frozen=True)
class KClistResult:
    """Result of the sequential kClist++ solver.

    ``density`` is the best h-clique density found (a certified lower bound
    on rho*_h); ``nodes`` achieves it; ``iterations`` is the number of
    rounds performed.
    """

    density: Fraction
    nodes: FrozenSet[Node]
    iterations: int


def kclistpp_densest(graph: Graph, h: int, iterations: int = 32) -> KClistResult:
    """Approximate the h-clique densest subgraph by sequential updates.

    ``iterations`` trades accuracy for time (the paper reports T* = 11
    sufficing on Twitter).
    """
    cliques: List[Tuple[Node, ...]] = list(enumerate_cliques(graph, h))
    if not cliques:
        return KClistResult(Fraction(0), frozenset(), 0)
    weight: Dict[Node, float] = {node: 0.0 for node in graph}
    for _ in range(iterations):
        for clique in cliques:
            lightest = min(clique, key=lambda v: (weight[v], repr(v)))
            weight[lightest] += 1.0
    ranked = sorted(graph.nodes(), key=lambda v: (-weight[v], repr(v)))
    rank = {node: i for i, node in enumerate(ranked)}
    # prefix_cliques[i]: cliques fully inside the first i+1 ranked nodes
    last_rank = [max(rank[v] for v in clique) for clique in cliques]
    counts = [0] * len(ranked)
    for r in last_rank:
        counts[r] += 1
    best = Fraction(0)
    best_size = 1
    running = 0
    for i, _node in enumerate(ranked):
        running += counts[i]
        density = Fraction(running, i + 1)
        if density > best:
            best = density
            best_size = i + 1
    return KClistResult(best, frozenset(ranked[:best_size]), iterations)
