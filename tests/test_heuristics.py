"""Tests for the Section III-C core-decomposition heuristics."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.heuristics import HeuristicMeasure, heuristic_dense_sets
from repro.core.measures import CliqueDensity, EdgeDensity, PatternDensity
from repro.core.nds import top_k_nds
from repro.dense.goldberg import maximum_edge_density
from repro.dense.pattern_density import maximum_pattern_density
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern

from .conftest import random_graph, random_uncertain_graph


class TestHeuristicDenseSets:
    def test_empty_world(self):
        world = Graph(nodes=[1, 2])
        assert heuristic_dense_sets(world, EdgeDensity()) == []

    def test_best_candidate_is_peeling_optimum(self, rng):
        measure = EdgeDensity()
        for _ in range(10):
            world = random_graph(rng, 10, 0.4)
            sets = heuristic_dense_sets(world, measure)
            if not sets:
                continue
            densities = [measure.density(world, s) for s in sets]
            # densest-first ordering
            assert densities == sorted(densities, reverse=True)
            # half-approximation guarantee carries over from peeling
            assert densities[0] >= maximum_edge_density(world) / 2

    def test_pattern_approximation_guarantee(self, rng):
        pattern = Pattern.two_star()
        measure = PatternDensity(pattern)
        for _ in range(5):
            world = random_graph(rng, 7, 0.5)
            sets = heuristic_dense_sets(world, measure)
            optimum = maximum_pattern_density(world, pattern)
            if optimum == 0:
                assert sets == []
                continue
            best = max(measure.density(world, s) for s in sets)
            assert best >= optimum / pattern.number_of_nodes()

    def test_max_sets_cap(self, rng):
        world = random_graph(rng, 12, 0.4)
        sets = heuristic_dense_sets(world, EdgeDensity(), max_sets=2)
        assert len(sets) <= 2

    def test_unsupported_measure_rejected(self):
        class Bogus:
            pass
        with pytest.raises(TypeError):
            heuristic_dense_sets(Graph.from_edges([(1, 2)]), Bogus())


class TestHeuristicMeasure:
    def test_wraps_base_density(self, rng):
        world = random_graph(rng, 8, 0.5)
        base = EdgeDensity()
        wrapped = HeuristicMeasure(base)
        nodes = list(world.nodes())[:4]
        assert wrapped.density(world, nodes) == base.density(world, nodes)

    def test_one_densest(self, rng):
        world = random_graph(rng, 8, 0.5)
        wrapped = HeuristicMeasure(EdgeDensity())
        one = wrapped.one_densest(world)
        if world.number_of_edges():
            assert one is not None

    def test_heuristic_nds_quality(self, rng):
        """Heuristic NDS containment close to exact-enumeration NDS."""
        from repro.core.exact import exact_gamma
        graph = random_uncertain_graph(rng, 6, 0.6, low=0.4, high=0.95)
        exact_based = top_k_nds(graph, k=1, min_size=2, theta=1500, seed=3)
        heuristic_based = top_k_nds(
            graph, k=1, min_size=2, theta=1500, seed=3,
            measure=HeuristicMeasure(EdgeDensity()),
        )
        if exact_based.top and heuristic_based.top:
            exact_gamma_value = exact_gamma(graph, exact_based.best().nodes)
            heuristic_gamma_value = exact_gamma(
                graph, heuristic_based.best().nodes
            )
            assert heuristic_gamma_value >= exact_gamma_value - 0.35

    def test_clique_heuristic_runs(self, rng):
        world = random_graph(rng, 8, 0.6)
        wrapped = HeuristicMeasure(CliqueDensity(3))
        sets = wrapped.all_densest(world)
        for nodes in sets:
            assert nodes <= world.node_set()
