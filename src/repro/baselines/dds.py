"""Deterministic densest subgraph baseline (Section VI-C, Table VII).

The DDS ignores edge probabilities entirely: it is the densest subgraph of
the deterministic version of the uncertain graph.  The paper shows its
densest subgraph *probability* is far below the MPDS's because noisy
low-probability edges inflate it (Fig. 7).
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, Tuple

from ..dense.clique_density import clique_densest_subgraph
from ..dense.goldberg import densest_subgraph
from ..dense.pattern_density import pattern_densest_subgraph
from ..graph.graph import Node
from ..graph.uncertain import UncertainGraph
from ..patterns.pattern import Pattern


def deterministic_densest_subgraph(
    graph: UncertainGraph,
) -> Tuple[Fraction, FrozenSet[Node]]:
    """Return ``(rho*_e, nodes)`` of the deterministic version's densest subgraph."""
    result = densest_subgraph(graph.deterministic_version())
    return result.density, result.nodes


def deterministic_clique_densest_subgraph(
    graph: UncertainGraph, h: int
) -> Tuple[Fraction, FrozenSet[Node]]:
    """Return the deterministic h-clique densest subgraph."""
    result = clique_densest_subgraph(graph.deterministic_version(), h)
    return result.density, result.nodes


def deterministic_pattern_densest_subgraph(
    graph: UncertainGraph, pattern: Pattern
) -> Tuple[Fraction, FrozenSet[Node]]:
    """Return the deterministic pattern-densest subgraph."""
    result = pattern_densest_subgraph(graph.deterministic_version(), pattern)
    return result.density, result.nodes
