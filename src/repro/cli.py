"""Command-line interface: run MPDS / NDS queries on edge-list files.

Usage (after ``pip install -e .``)::

    repro-mpds mpds graph.txt --k 3 --theta 200
    repro-mpds nds graph.txt --k 5 --min-size 3 --theta 400
    repro-mpds exact graph.txt --k 3
    repro-mpds stats graph.txt

``graph.txt`` is a probabilistic edge list (one ``u v p`` per line; ``#``
comments allowed).  Density notions: ``--density edge`` (default),
``--density clique --h 3``, ``--density pattern --pattern diamond``
(2-star / 3-star / c3-star / diamond), or ``--density surplus --alpha
0.33`` (edge-surplus quasi-cliques; extension).

``mpds`` and ``nds`` accept ``--engine {auto,python,vectorized}`` to pick
the possible-world engine (:mod:`repro.engine`); estimates are identical
across engines for a fixed ``--seed``.  ``--workers N`` fans the sampled
worlds out over the shared-memory parallel substrate
(:mod:`repro.core.parallel`); for a fixed ``--seed`` the estimates are
byte-identical to the sequential run for any worker count, with every
sampler (MC, LP, RSS).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.exact import exact_top_k_mpds
from .core.extensions import EdgeSurplus
from .core.heuristics import HeuristicMeasure
from .core.measures import CliqueDensity, DensityMeasure, EdgeDensity, PatternDensity
from .core.mpds import top_k_mpds
from .core.nds import top_k_nds
from .core.parallel import parallel_top_k_mpds, parallel_top_k_nds
from .graph.io import read_uncertain_edge_list
from .graph.uncertain import edge_probability_statistics
from .patterns.pattern import Pattern
from .sampling import SAMPLERS

_PATTERNS = {
    "2-star": Pattern.two_star,
    "3-star": Pattern.three_star,
    "c3-star": Pattern.c3_star,
    "diamond": Pattern.diamond,
}


def _build_measure(args: argparse.Namespace) -> DensityMeasure:
    if args.density == "edge":
        measure: DensityMeasure = EdgeDensity()
    elif args.density == "clique":
        measure = CliqueDensity(args.h)
    elif args.density == "surplus":
        measure = EdgeSurplus(alpha=args.alpha)
    else:
        measure = PatternDensity(_PATTERNS[args.pattern]())
    if getattr(args, "heuristic", False):
        measure = HeuristicMeasure(measure)
    return measure


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="probabilistic edge list file (u v p)")
    parser.add_argument("--k", type=int, default=1, help="how many results")
    parser.add_argument(
        "--density",
        choices=("edge", "clique", "pattern", "surplus"),
        default="edge",
    )
    parser.add_argument("--h", type=int, default=3, help="clique size")
    parser.add_argument(
        "--alpha", type=float, default=1 / 3,
        help="edge-surplus trade-off (only with --density surplus)",
    )
    parser.add_argument(
        "--pattern", choices=sorted(_PATTERNS), default="diamond"
    )
    parser.add_argument("--seed", type=int, default=None)


def _print_scored(scored_sets, label: str) -> None:
    for rank, scored in enumerate(scored_sets, 1):
        nodes = " ".join(map(str, sorted(scored.nodes, key=repr)))
        print(f"{rank}\t{scored.probability:.6f}\t{label}\t{nodes}")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mpds",
        description="Most Probable Densest Subgraphs in uncertain graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mpds = sub.add_parser("mpds", help="top-k MPDS (Algorithm 1)")
    _add_common(mpds)
    mpds.add_argument("--theta", type=int, default=160, help="sample count")
    mpds.add_argument("--sampler", choices=("MC", "LP", "RSS"), default="MC")
    mpds.add_argument(
        "--engine", choices=("auto", "python", "vectorized"), default="auto",
        help="possible-world engine (auto picks the vectorized fast path "
        "whenever it is byte-identical; see repro.engine)",
    )
    mpds.add_argument(
        "--heuristic", action="store_true",
        help="use the Section III-C core heuristic instead of enumeration",
    )
    mpds.add_argument(
        "--one-per-world", action="store_true",
        help="record only one densest subgraph per world (Table IX ablation)",
    )
    mpds.add_argument(
        "--workers", type=int, default=1,
        help="fan the sampled worlds out over this many processes "
        "(shared-memory substrate; estimates are byte-identical to a "
        "sequential run for a fixed --seed, for any worker count)",
    )

    nds = sub.add_parser("nds", help="top-k NDS (Algorithm 5)")
    _add_common(nds)
    nds.add_argument("--theta", type=int, default=640, help="sample count")
    nds.add_argument("--sampler", choices=("MC", "LP", "RSS"), default="MC")
    nds.add_argument(
        "--engine", choices=("auto", "python", "vectorized"), default="auto",
        help="possible-world engine (auto picks the vectorized fast path "
        "whenever it is byte-identical; see repro.engine)",
    )
    nds.add_argument("--min-size", type=int, default=2, help="l_m")
    nds.add_argument("--heuristic", action="store_true")
    nds.add_argument(
        "--workers", type=int, default=1,
        help="fan the sampled worlds out over this many processes "
        "(shared-memory substrate; estimates are byte-identical to a "
        "sequential run for a fixed --seed, for any worker count)",
    )

    exact = sub.add_parser(
        "exact", help="exact top-k MPDS by 2^m world enumeration (tiny graphs)"
    )
    _add_common(exact)

    stats = sub.add_parser("stats", help="dataset statistics (Table II style)")
    stats.add_argument("graph")

    reproduce = sub.add_parser(
        "reproduce",
        help="regenerate one of the paper's tables / figures by name",
    )
    reproduce.add_argument(
        "experiment",
        help="experiment id (e.g. table1, fig16a, karate-case); "
        "use 'list' to see all",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)

    if args.command == "reproduce":
        from .experiments.registry import experiment_names, run_experiment

        if args.experiment == "list":
            for name in experiment_names():
                print(name)
            return 0
        try:
            print(run_experiment(args.experiment))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0

    graph = read_uncertain_edge_list(args.graph)

    if args.command == "stats":
        stats = edge_probability_statistics(graph)
        print(f"nodes\t{graph.number_of_nodes()}")
        print(f"edges\t{graph.number_of_edges()}")
        print(f"prob_mean\t{stats['mean']:.4f}")
        print(f"prob_std\t{stats['std']:.4f}")
        print(
            "prob_quartiles\t"
            f"{stats['q1']:.4f} {stats['q2']:.4f} {stats['q3']:.4f}"
        )
        return 0

    measure = _build_measure(args)
    if args.command == "mpds":
        if args.workers > 1:
            # MC ships seed only, so unseeded runs shard sampling too;
            # LP/RSS samplers are drained stream-identically by the parent
            sampler = (
                None if args.sampler == "MC"
                else SAMPLERS[args.sampler](graph, args.seed)
            )
            result = parallel_top_k_mpds(
                graph, k=args.k, theta=args.theta, measure=measure,
                sampler=sampler, seed=args.seed, workers=args.workers,
                enumerate_all=not args.one_per_world, engine=args.engine,
            )
        else:
            sampler = SAMPLERS[args.sampler](graph, args.seed)
            result = top_k_mpds(
                graph, k=args.k, theta=args.theta, measure=measure,
                sampler=sampler, enumerate_all=not args.one_per_world,
                engine=args.engine,
            )
        _print_scored(result.top, "tau-hat")
    elif args.command == "nds":
        if args.workers > 1:
            sampler = (
                None if args.sampler == "MC"
                else SAMPLERS[args.sampler](graph, args.seed)
            )
            result = parallel_top_k_nds(
                graph, k=args.k, min_size=args.min_size, theta=args.theta,
                measure=measure, sampler=sampler, seed=args.seed,
                workers=args.workers, engine=args.engine,
            )
        else:
            sampler = SAMPLERS[args.sampler](graph, args.seed)
            result = top_k_nds(
                graph, k=args.k, min_size=args.min_size, theta=args.theta,
                measure=measure, sampler=sampler, engine=args.engine,
            )
        _print_scored(result.top, "gamma-hat")
    else:  # exact
        if graph.number_of_edges() > 22:
            print(
                "refusing exact enumeration on > 22 edges "
                f"(got {graph.number_of_edges()}); use `mpds`",
                file=sys.stderr,
            )
            return 2
        result = exact_top_k_mpds(graph, k=args.k, measure=measure)
        _print_scored(result.top, "tau")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
