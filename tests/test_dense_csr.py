"""Differential gate for the array-native (CSR) densest-subgraph layer.

Every port in the substrate swap -- bucketed Charikar peeling, mask
k-core, the CSR flow solvers, and the Dinkelbach exact stage -- is pinned
against its pure-Python oracle on random worlds with fixed seeds:
identical densities, node sets, trajectories, flow values and min-cut
sides, including empty, single-node and disconnected worlds.
"""

from __future__ import annotations

import random
from fractions import Fraction

import numpy as np
import pytest

from repro.dense.all_densest import (
    prepare_from_bound,
    prepare_from_bound_csr,
)
from repro.dense.component_enum import enumerate_independent_sets
from repro.dense.kcore import k_core
from repro.dense.peeling import peel_edge_density, peel_edge_density_csr
from repro.engine.indexed import IndexedGraph, MaskWorld, SubWorldView
from repro.engine.kernels import k_core_alive
from repro.flow.csr import CSRFlowNetwork, build_edge_density_network_csr
from repro.flow.maxflow import csr_max_flow, max_flow
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import (
    csr_max_preflow_min_cut,
    csr_push_relabel,
    push_relabel_max_flow,
)
from repro.graph.uncertain import UncertainGraph


def random_world(rng: random.Random, n: int, p: float) -> MaskWorld:
    """A certain uncertain graph + full mask = one deterministic world."""
    graph = UncertainGraph()
    for node in range(n):
        graph.add_node(node)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v, 1.0)
    indexed = IndexedGraph.from_uncertain(graph)
    return MaskWorld(indexed, np.ones(indexed.m, dtype=bool))


def masked_world(rng: random.Random, n: int, p: float, keep: float) -> MaskWorld:
    """A random world with a random sub-mask (exercises dead edges)."""
    world = random_world(rng, n, p)
    mask = np.array(
        [rng.random() < keep for _ in range(world.indexed.m)], dtype=bool
    )
    return MaskWorld(world.indexed, mask)


class TestCSRPeeling:
    """peel_edge_density_csr must replay peel_edge_density bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("density", [0.1, 0.3, 0.6])
    def test_identical_on_random_worlds(self, seed, density):
        rng = random.Random(seed)
        for _ in range(12):
            world = masked_world(rng, rng.randint(2, 14), density, 0.7)
            expected = peel_edge_density(world.to_graph())
            actual = peel_edge_density_csr(world.view())
            assert actual.density == expected.density
            assert actual.nodes == expected.nodes
            assert actual.trajectory == expected.trajectory
            assert actual.order == expected.order

    def test_empty_and_singleton(self):
        rng = random.Random(0)
        empty = random_world(rng, 0, 0.0)
        assert peel_edge_density_csr(empty.view()).density == Fraction(0)
        single = random_world(rng, 1, 0.0)
        result = peel_edge_density_csr(single.view())
        assert result.density == Fraction(0)
        assert result.trajectory == ((Fraction(0), 1),)
        assert result.order == (0,)

    def test_disconnected_world(self):
        # two triangles and an isolated node: peel must match exactly
        graph = UncertainGraph()
        for node in range(7):
            graph.add_node(node)
        for u, v in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            graph.add_edge(u, v, 1.0)
        indexed = IndexedGraph.from_uncertain(graph)
        world = MaskWorld(indexed, np.ones(indexed.m, dtype=bool))
        expected = peel_edge_density(world.to_graph())
        actual = peel_edge_density_csr(world.view())
        assert actual == expected


class TestCSRKCore:
    """SubWorldView.k_core must equal the bucket-peeling k-core."""

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_node_sets_match(self, seed, k):
        rng = random.Random(seed)
        for _ in range(10):
            world = masked_world(rng, rng.randint(2, 16), 0.35, 0.8)
            core_view = world.view().k_core(k)
            expected = k_core(world.to_graph(), k)
            assert frozenset(core_view.labels()) == frozenset(
                expected.nodes()
            )
            assert core_view.m == expected.number_of_edges()

    def test_kernel_alive_masks_match_graph_core(self):
        rng = random.Random(5)
        world = masked_world(rng, 12, 0.4, 0.9)
        for k in (1, 2, 3):
            node_alive, edge_alive = k_core_alive(world.indexed, world.mask, k)
            expected = k_core(world.to_graph(), k)
            alive_labels = {
                world.indexed.nodes[i] for i in np.flatnonzero(node_alive)
            }
            # the kernel keeps isolated survivors implicit; compare cores
            assert alive_labels == set(expected.nodes()) or k <= 0


class TestCSRMaxFlow:
    """CSR solvers vs object solvers on random integer networks."""

    def random_network(self, rng: random.Random):
        n = rng.randint(2, 10)
        pairs = []
        for _ in range(rng.randint(1, 24)):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                pairs.append((a, b, rng.randint(0, 9), rng.randint(0, 9)))
        return n, pairs

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_values_and_cut_sides_match(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            n, pairs = self.random_network(rng)
            if not pairs:
                continue
            s, t = 0, n - 1
            obj = FlowNetwork()
            for i in range(n):
                obj.add_node(i)
            for a, b, cf, cb in pairs:
                obj.add_arc_pair(a, b, cf, cb)
            value_dinic = max_flow(obj, s, t)
            obj.reset_flow()
            value_pr_obj = push_relabel_max_flow(obj, s, t)

            tails = np.array([p[0] for p in pairs])
            heads = np.array([p[1] for p in pairs])
            caps_f = np.array([p[2] for p in pairs])
            caps_b = np.array([p[3] for p in pairs])
            nets = [
                CSRFlowNetwork.from_pairs(n, s, t, tails, heads, caps_f, caps_b)
                for _ in range(3)
            ]
            value_pr = csr_push_relabel(nets[0])
            value_dinic_csr = csr_max_flow(nets[1])
            value_phase1, cut = csr_max_preflow_min_cut(nets[2])
            assert (
                value_dinic
                == value_pr_obj
                == value_pr
                == value_dinic_csr
                == value_phase1
            )
            # min-cut sides are flow-invariant: all full solvers agree
            assert (
                nets[0].reachable_from_source()
                == nets[1].reachable_from_source()
            )
            assert nets[0].coreachable_to_sink() == nets[1].coreachable_to_sink()
            # the phase-1 height cut is a minimum cut: capacity == value
            assert cut[s] and not cut[t]
            capacity = sum(
                cf for a, b, cf, _cb in pairs if cut[a] and not cut[b]
            ) + sum(cb for a, b, _cf, cb in pairs if cut[b] and not cut[a])
            assert capacity == value_phase1

    def test_twin_layout_invariants(self):
        rng = random.Random(9)
        n, pairs = self.random_network(rng)
        tails = np.array([p[0] for p in pairs])
        heads = np.array([p[1] for p in pairs])
        caps_f = np.array([p[2] for p in pairs])
        caps_b = np.array([p[3] for p in pairs])
        net = CSRFlowNetwork.from_pairs(
            n, 0, n - 1, tails, heads, caps_f, caps_b
        )
        arcs = len(net.to)
        assert arcs == 2 * len(pairs)
        for e in range(arcs):
            twin = net.twin[e]
            assert net.twin[twin] == e
            # twin of x -> y runs y -> x: its head is e's tail slice owner
            lo = np.searchsorted(net.indptr, e, side="right") - 1
            assert net.to[twin] == lo


class TestPreparedDifferential:
    """prepare_from_bound_csr vs prepare_from_bound on world cores."""

    def both_prepared(self, world: MaskWorld):
        """Build the ceil(peel)-core both ways and run both pipelines."""
        peel = peel_edge_density(world.to_graph())
        bound = peel.density
        if bound <= 0:
            return None
        k = -(-bound.numerator // bound.denominator)
        node_alive, edge_alive = k_core_alive(world.indexed, world.mask, k)
        view = SubWorldView(world.indexed, edge_alive, node_alive)
        core_graph = world.indexed.subworld_graph(edge_alive, node_alive)
        reference = prepare_from_bound(core_graph, bound)
        actual = prepare_from_bound_csr(view, bound)
        return reference, actual

    def assert_equivalent(self, reference, actual):
        assert actual.density == reference.density
        assert actual.maximal_nodes == reference.maximal_nodes
        expected_family = set(
            enumerate_independent_sets(reference.structure)
        ) if reference.structure else set()
        actual_family = set(
            enumerate_independent_sets(actual.structure)
        ) if actual.structure else set()
        assert actual_family == expected_family
        assert len(actual_family) == len(expected_family)

    @pytest.mark.parametrize("seed", [0, 2, 5, 13, 21])
    @pytest.mark.parametrize("density", [0.15, 0.3, 0.55])
    def test_random_world_cores(self, seed, density):
        rng = random.Random(seed)
        checked = 0
        for _ in range(14):
            world = masked_world(rng, rng.randint(3, 13), density, 0.75)
            pair = self.both_prepared(world)
            if pair is None:
                continue
            self.assert_equivalent(*pair)
            checked += 1
        assert checked > 0

    def test_empty_world(self):
        rng = random.Random(1)
        world = random_world(rng, 5, 0.0)
        prepared = prepare_from_bound_csr(world.view(), Fraction(0))
        assert prepared.density == Fraction(0)
        assert prepared.structure is None
        assert prepared.maximal_nodes == frozenset()

    def test_disconnected_tied_components(self):
        # two disjoint triangles tie at density 1: the family must contain
        # each triangle AND their union (cross-component merge)
        graph = UncertainGraph()
        for node in range(6):
            graph.add_node(node)
        for u, v in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            graph.add_edge(u, v, 1.0)
        indexed = IndexedGraph.from_uncertain(graph)
        world = MaskWorld(indexed, np.ones(indexed.m, dtype=bool))
        reference, actual = self.both_prepared(world)
        self.assert_equivalent(reference, actual)
        family = set(enumerate_independent_sets(actual.structure))
        assert frozenset({0, 1, 2}) in family
        assert frozenset({3, 4, 5}) in family
        assert frozenset(range(6)) in family
        assert actual.maximal_nodes == frozenset(range(6))

    def test_tree_world_closed_form(self):
        # a path world is a tree component: solved without any flow
        graph = UncertainGraph()
        for node in range(5):
            graph.add_node(node)
        for u in range(4):
            graph.add_edge(u, u + 1, 1.0)
        indexed = IndexedGraph.from_uncertain(graph)
        world = MaskWorld(indexed, np.ones(indexed.m, dtype=bool))
        reference, actual = self.both_prepared(world)
        self.assert_equivalent(reference, actual)
        assert actual.density == Fraction(4, 5)

    def test_mixed_tree_and_dense_components(self):
        # a triangle (density 1) plus a path (density 3/4): only the
        # triangle's component survives into the structure
        graph = UncertainGraph()
        for node in range(7):
            graph.add_node(node)
        for u, v in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6)]:
            graph.add_edge(u, v, 1.0)
        indexed = IndexedGraph.from_uncertain(graph)
        world = MaskWorld(indexed, np.ones(indexed.m, dtype=bool))
        reference, actual = self.both_prepared(world)
        self.assert_equivalent(reference, actual)
        family = set(enumerate_independent_sets(actual.structure))
        assert family == {frozenset({0, 1, 2})}


class TestSubWorldView:
    def test_components_split_and_cover(self):
        rng = random.Random(8)
        for _ in range(10):
            world = masked_world(rng, rng.randint(2, 14), 0.25, 0.7)
            view = world.view()
            components = view.components()
            # components partition exactly the non-isolated nodes
            seen = set()
            for comp in components:
                labels = set(comp.labels())
                assert not labels & seen
                seen |= labels
            graph = world.to_graph()
            non_isolated = {
                node for node in graph if graph.degree(node) > 0
            }
            assert seen == non_isolated
            assert sum(comp.m for comp in components) == view.m

    def test_materialize_matches_subworld_graph(self):
        rng = random.Random(4)
        world = masked_world(rng, 10, 0.4, 0.8)
        node_alive, edge_alive = k_core_alive(world.indexed, world.mask, 1)
        view = SubWorldView(world.indexed, edge_alive, node_alive)
        assert view.materialize() == world.indexed.subworld_graph(
            edge_alive, node_alive
        )

    def test_restrict_and_induced_edges(self):
        rng = random.Random(6)
        world = masked_world(rng, 9, 0.5, 0.9)
        view = world.view()
        keep = np.zeros(view.n, dtype=bool)
        keep[: view.n // 2] = True
        sub = view.restrict(keep)
        graph = world.to_graph().subgraph(sub.labels())
        assert sub.m == graph.number_of_edges()
        assert view.induced_edges(keep) == graph.number_of_edges()

    def test_full_graph_csr_slicing(self):
        rng = random.Random(12)
        world = masked_world(rng, 8, 0.5, 0.75)
        indexed = world.indexed
        indptr, adj_nodes, adj_edges = indexed.csr()
        graph = world.to_graph()
        for i, node in enumerate(indexed.nodes):
            alive = [
                indexed.nodes[adj_nodes[pos]]
                for pos in range(indptr[i], indptr[i + 1])
                if world.mask[adj_edges[pos]]
            ]
            assert set(alive) == set(graph.neighbors(node))
            assert len(alive) == graph.degree(node)
