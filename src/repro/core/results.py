"""Result containers for the MPDS / NDS estimators.

Both result types implement one serializable protocol
(:class:`SerializableResult`: ``to_dict`` / ``to_json`` /
``from_dict`` / ``from_json``) so a serving layer can ship estimates
over the wire and rebuild them loss-free: node sets, probabilities,
world counters and the ``replayed_worlds`` bookkeeping all round-trip
(``tests/test_session.py`` pins it).  Node labels must be
JSON-representable for ``to_json`` (ints and strings are; tuples would
come back as lists) -- ``to_dict`` itself keeps the raw labels.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Tuple

NodeSet = FrozenSet[Hashable]


def _node_list(nodes: NodeSet) -> list:
    """A frozenset's canonical (repr-sorted) list form for serialization."""
    return sorted(nodes, key=repr)


@dataclass(frozen=True)
class ScoredNodeSet:
    """A node set with its estimated probability (tau-hat or gamma-hat)."""

    nodes: NodeSet
    probability: float

    def to_dict(self) -> dict:
        return {
            "nodes": _node_list(self.nodes),
            "probability": self.probability,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScoredNodeSet":
        return cls(frozenset(data["nodes"]), float(data["probability"]))


class SerializableResult:
    """Shared wire protocol of the estimator results.

    Subclasses set ``kind`` and implement ``to_dict`` / ``from_dict``;
    the JSON forms and the ``kind`` dispatch of
    :func:`result_from_dict` come for free.
    """

    kind: str = "abstract"

    def to_dict(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict) -> "SerializableResult":
        raise NotImplementedError

    def to_json(self, **kwargs) -> str:
        """Serialize to a JSON string (``kwargs`` pass to ``json.dumps``)."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SerializableResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def _check_kind(cls, data: dict) -> None:
        kind = data.get("kind")
        if kind != cls.kind:
            raise ValueError(
                f"cannot rebuild a {cls.kind!r} result from kind {kind!r}"
            )


@dataclass
class MPDSResult(SerializableResult):
    """Output of the top-k MPDS estimator (Algorithm 1).

    Attributes
    ----------
    top:
        The top-k node sets with their estimated densest subgraph
        probabilities, sorted by decreasing probability.
    candidates:
        Estimated probability of *every* candidate node set (those that
        induced a densest subgraph in at least one sampled world).
    theta:
        Number of sampled possible worlds.
    worlds_with_densest:
        Number of sampled worlds that had a (non-trivial) densest subgraph.
    densest_counts:
        Per sampled world, the number of densest subgraphs found -- the
        statistic summarised in Table VIII.
    replayed_worlds:
        Number of worlds the vectorised engine replayed through the
        pure-Python path because their densest-subgraph enumeration hit
        ``per_world_limit`` (the truncated subset is order-sensitive, so
        the replay keeps it byte-identical across engines).  Always 0 on
        the pure-Python engine.
    """

    kind = "mpds"

    top: List[ScoredNodeSet]
    candidates: Dict[NodeSet, float]
    theta: int
    worlds_with_densest: int
    densest_counts: List[int] = field(default_factory=list)
    replayed_worlds: int = 0

    def top_sets(self) -> List[NodeSet]:
        """Return just the node sets of the top-k, in rank order."""
        return [scored.nodes for scored in self.top]

    def best(self) -> ScoredNodeSet:
        """Return the rank-1 MPDS estimate (raises on empty result)."""
        if not self.top:
            raise ValueError("no candidate induced a densest subgraph")
        return self.top[0]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "top": [scored.to_dict() for scored in self.top],
            "candidates": [
                [_node_list(nodes), probability]
                for nodes, probability in self.candidates.items()
            ],
            "theta": self.theta,
            "worlds_with_densest": self.worlds_with_densest,
            "densest_counts": list(self.densest_counts),
            "replayed_worlds": self.replayed_worlds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MPDSResult":
        cls._check_kind(data)
        return cls(
            top=[ScoredNodeSet.from_dict(item) for item in data["top"]],
            candidates={
                frozenset(nodes): float(probability)
                for nodes, probability in data["candidates"]
            },
            theta=int(data["theta"]),
            worlds_with_densest=int(data["worlds_with_densest"]),
            densest_counts=[int(c) for c in data.get("densest_counts", [])],
            replayed_worlds=int(data.get("replayed_worlds", 0)),
        )


@dataclass
class NDSResult(SerializableResult):
    """Output of the top-k NDS estimator (Algorithm 5).

    ``top`` holds the closed node sets of size >= l_m with the highest
    estimated containment probabilities; ``transactions`` is the number of
    candidate maximum-sized densest subgraphs fed to the TFP miner.
    """

    kind = "nds"

    top: List[ScoredNodeSet]
    theta: int
    transactions: int

    def top_sets(self) -> List[NodeSet]:
        """Return just the node sets of the top-k, in rank order."""
        return [scored.nodes for scored in self.top]

    def best(self) -> ScoredNodeSet:
        """Return the rank-1 NDS estimate (raises on empty result)."""
        if not self.top:
            raise ValueError("no closed node set of the requested size found")
        return self.top[0]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "top": [scored.to_dict() for scored in self.top],
            "theta": self.theta,
            "transactions": self.transactions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NDSResult":
        cls._check_kind(data)
        return cls(
            top=[ScoredNodeSet.from_dict(item) for item in data["top"]],
            theta=int(data["theta"]),
            transactions=int(data["transactions"]),
        )


#: result classes by wire kind
RESULT_KINDS = {cls.kind: cls for cls in (MPDSResult, NDSResult)}


def result_from_dict(data: dict) -> SerializableResult:
    """Rebuild whichever result type ``data`` serializes (kind dispatch)."""
    kind = data.get("kind")
    cls = RESULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown result kind {kind!r}; known kinds: "
            f"{sorted(RESULT_KINDS)}"
        )
    return cls.from_dict(data)


def result_from_json(text: str) -> SerializableResult:
    """Rebuild whichever result type ``text`` serializes."""
    return result_from_dict(json.loads(text))
