"""Tests for k-clique listing (kClist-style substrate)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cliques.enumeration import (
    clique_degrees,
    count_cliques,
    enumerate_cliques,
    sub_cliques_of_h_cliques,
)
from repro.graph.graph import Graph

from .conftest import random_graph


def brute_force_cliques(graph: Graph, h: int):
    """All h-subsets that are cliques."""
    out = set()
    for subset in itertools.combinations(sorted(graph.nodes(), key=repr), h):
        if all(
            graph.has_edge(u, v) for u, v in itertools.combinations(subset, 2)
        ):
            out.add(tuple(sorted(subset, key=repr)))
    return out


class TestEnumeration:
    def test_h1_yields_nodes(self, triangle_graph):
        assert {c[0] for c in enumerate_cliques(triangle_graph, 1)} == {1, 2, 3}

    def test_h2_yields_edges(self, triangle_graph):
        assert count_cliques(triangle_graph, 2) == 3

    def test_triangle(self, triangle_graph):
        assert list(enumerate_cliques(triangle_graph, 3)) == [(1, 2, 3)]

    def test_k5_counts(self):
        k5 = Graph.from_edges(itertools.combinations(range(5), 2))
        # C(5, h) cliques of each size
        assert count_cliques(k5, 2) == 10
        assert count_cliques(k5, 3) == 10
        assert count_cliques(k5, 4) == 5
        assert count_cliques(k5, 5) == 1
        assert count_cliques(k5, 6) == 0

    def test_invalid_h(self, triangle_graph):
        with pytest.raises(ValueError):
            list(enumerate_cliques(triangle_graph, 0))

    def test_no_duplicates_random(self, rng):
        for _ in range(10):
            graph = random_graph(rng, 10, 0.5)
            for h in (2, 3, 4):
                cliques = list(enumerate_cliques(graph, h))
                assert len(cliques) == len(set(cliques))
                assert set(cliques) == brute_force_cliques(graph, h)

    def test_against_networkx_triangles(self, rng):
        nx = pytest.importorskip("networkx")
        for _ in range(5):
            graph = random_graph(rng, 14, 0.4)
            nxg = nx.Graph(list(graph.edges()))
            nxg.add_nodes_from(graph.nodes())
            expected = sum(nx.triangles(nxg).values()) // 3
            assert count_cliques(graph, 3) == expected


class TestDegreesAndSubCliques:
    def test_clique_degrees_triangle_plus_tail(self):
        graph = Graph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4)])
        degrees = clique_degrees(graph, 3)
        assert degrees == {1: 1, 2: 1, 3: 1, 4: 0}

    def test_degree_sum_is_h_times_count(self, rng):
        for _ in range(8):
            graph = random_graph(rng, 10, 0.5)
            for h in (3, 4):
                degrees = clique_degrees(graph, h)
                assert sum(degrees.values()) == h * count_cliques(graph, h)

    def test_sub_cliques_structure(self):
        graph = Graph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4), (2, 4)])
        lambdas, completions = sub_cliques_of_h_cliques(graph, 3)
        # triangles: (1,2,3) and (2,3,4); (h-1)-cliques are their edges
        assert set(lambdas) == {(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)}
        assert completions[(2, 3)] == [1, 4]
        assert completions[(1, 2)] == [3]

    def test_sub_cliques_pair_count(self, rng):
        """Total (lambda, completer) pairs == h * number of h-cliques."""
        for _ in range(8):
            graph = random_graph(rng, 9, 0.55)
            for h in (3, 4):
                _lams, completions = sub_cliques_of_h_cliques(graph, h)
                pairs = sum(len(v) for v in completions.values())
                assert pairs == h * count_cliques(graph, h)


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=2**15 - 1))
@settings(max_examples=40, deadline=None)
def test_enumeration_matches_brute_force(h, mask):
    """Random 6-node graphs encoded by bitmask: listing == brute force."""
    nodes = list(range(6))
    pairs = list(itertools.combinations(nodes, 2))
    graph = Graph(nodes=nodes)
    for bit, (u, v) in enumerate(pairs):
        if mask >> bit & 1:
            graph.add_edge(u, v)
    assert set(enumerate_cliques(graph, h)) == brute_force_cliques(graph, h)
