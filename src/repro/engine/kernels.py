"""Array-native hot kernels over (index arrays, edge masks).

These replace the per-world Python loops of the estimator pipeline with
``np.bincount``-based array passes:

* :func:`world_degrees` / :func:`batch_world_degrees` -- degree counts of
  one world / a whole batch of worlds;
* :func:`k_core_alive` / :func:`batch_k_core_alive` -- iterative k-core
  peeling as boolean masks, per world (the pre-filter for mask-native
  clique/pattern density evaluation) or over a whole batch;
* :func:`batched_greedypp` -- load-aware Greedy++-style peeling rounds
  yielding a certified density lower bound (an *achieved* density, valid
  as a Dinkelbach seed; the engine's default bound is the sequential
  bucketed peel in :func:`repro.dense.peeling._peel_arrays`, which is as
  tight in practice and cheaper per world).

All kernels take an :class:`~repro.engine.indexed.IndexedGraph` plus a
boolean edge mask and never materialise :class:`Graph` objects.  The
batch kernels also accept a bit-packed matrix
(:class:`repro.engine.bitset.PackedMasks`); cross-world aggregates
(per-world edge counts, per-edge world counts, expected degrees) then
run straight off the uint64 words -- 8x less memory traffic than the
boolean byte matrix -- while the per-world peels unpack in bounded
blocks.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from .bitset import PackedMasks, column_counts, row_popcounts
from .indexed import IndexedGraph

_INF = np.iinfo(np.int64).max

#: a batch of world masks: boolean ``(theta, m)`` or packed words
EdgeMasks = Union[np.ndarray, PackedMasks]


def world_degrees(indexed: IndexedGraph, edge_mask: np.ndarray) -> np.ndarray:
    """Return the per-node degree vector of one world (``np.bincount``)."""
    n = indexed.n
    u = indexed.edge_u[edge_mask]
    v = indexed.edge_v[edge_mask]
    return np.bincount(u, minlength=n) + np.bincount(v, minlength=n)


def batch_world_degrees(
    indexed: IndexedGraph, edge_masks: EdgeMasks
) -> np.ndarray:
    """Return a ``(theta, n)`` degree matrix for a batch of worlds.

    Packed batches are unpacked in bounded row blocks, so the transient
    boolean matrix stays small regardless of ``theta``.
    """
    if isinstance(edge_masks, PackedMasks):
        theta = len(edge_masks)
        counts = np.zeros((theta, indexed.n), dtype=np.int64)
        block = max(1, min(theta, 1024))
        for lo in range(0, theta, block):
            rows = edge_masks.rows(lo, min(lo + block, theta))
            counts[lo:lo + block] = batch_world_degrees(indexed, rows)
        return counts
    theta = edge_masks.shape[0]
    counts = np.zeros((theta, indexed.n), dtype=np.int64)
    world_idx, edge_idx = np.nonzero(edge_masks)
    np.add.at(counts, (world_idx, indexed.edge_u[edge_idx]), 1)
    np.add.at(counts, (world_idx, indexed.edge_v[edge_idx]), 1)
    return counts


def batch_world_edge_counts(edge_masks: EdgeMasks) -> np.ndarray:
    """Alive-edge count of every world: ``(theta,)`` ``int64``.

    The cross-world aggregate where packing pays off most: packed
    batches answer with word popcounts
    (:func:`repro.engine.bitset.row_popcounts`) and never touch a
    boolean byte, matching ``masks.sum(axis=1)`` exactly.
    """
    if isinstance(edge_masks, PackedMasks):
        return edge_masks.row_popcounts()
    return np.asarray(edge_masks).sum(axis=1, dtype=np.int64)


def edge_world_counts(edge_masks: EdgeMasks) -> np.ndarray:
    """Per-edge world counts: in how many sampled worlds is each edge alive?

    ``(m,)`` ``int64``; the packed twin of ``masks.sum(axis=0)``
    (:func:`repro.engine.bitset.column_counts` unpacks in bounded
    blocks).  ``counts / theta`` is each edge's empirical marginal --
    the cross-world frequency vector the degree aggregates build on.
    """
    if isinstance(edge_masks, PackedMasks):
        return column_counts(edge_masks.words, edge_masks.m)
    return np.asarray(edge_masks).sum(axis=0, dtype=np.int64)


def expected_world_degrees(
    indexed: IndexedGraph, edge_masks: EdgeMasks
) -> np.ndarray:
    """Mean per-node degree across a batch of worlds: ``(n,)`` ``float64``.

    Bins the per-edge world counts onto both endpoints, so the packed
    path never materialises a ``(theta, n)`` degree matrix *or* the
    boolean masks -- one column-count pass over the words suffices.
    Equals ``batch_world_degrees(...).mean(axis=0)`` exactly.
    """
    theta = len(edge_masks)
    if theta == 0:
        return np.zeros(indexed.n, dtype=np.float64)
    counts = edge_world_counts(edge_masks).astype(np.float64)
    n = indexed.n
    per_node = np.bincount(
        indexed.edge_u, weights=counts, minlength=n
    ) + np.bincount(indexed.edge_v, weights=counts, minlength=n)
    return per_node / theta


def batch_k_core_alive(
    indexed: IndexedGraph, edge_masks: EdgeMasks, k: Union[int, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Peel a whole ``(theta, m)`` batch of worlds to their k-cores at once.

    Returns ``(node_alive, edge_alive)`` of shapes ``(theta, n)`` and
    ``(theta, m)``; row ``t`` equals :func:`k_core_alive` on world ``t``.
    All worlds peel in lockstep (a world that has converged simply stops
    changing), so the pass count is the maximum peel depth of the batch.
    ``k`` may be a scalar or a ``(theta,)`` vector of per-world orders
    (the batched estimator pre-pass peels each world to the core of its
    own ceil(peel bound)).

    The streaming estimator loop pre-filters clique/pattern worlds one at
    a time via :func:`k_core_alive` (worlds are consumed lazily to keep
    adopted sampler RNGs in sync); this batch variant serves pipelines
    that already hold a full ``(theta, m)`` mask matrix.  A packed batch
    is unpacked once up front -- the peel mutates its working copy, so
    the boolean matrix is the working representation either way.
    """
    if isinstance(edge_masks, PackedMasks):
        edge_masks = edge_masks.to_bool()
    u, v = indexed.edge_u, indexed.edge_v
    theta = edge_masks.shape[0]
    edge_alive = edge_masks.copy()
    node_alive = np.ones((theta, indexed.n), dtype=bool)
    k = np.asarray(k, dtype=np.int64)
    if not (k > 0).any():
        return node_alive, edge_alive
    threshold = k if k.ndim else np.full(theta, int(k), dtype=np.int64)
    while True:
        degree = batch_world_degrees(indexed, edge_alive)
        dead = node_alive & (degree < threshold[:, None])
        if not dead.any():
            return node_alive, edge_alive
        node_alive &= ~dead
        edge_alive &= node_alive[:, u] & node_alive[:, v]


def batch_peel_bounds(
    indexed: IndexedGraph, edge_masks: EdgeMasks
) -> Tuple[np.ndarray, np.ndarray]:
    """Bucketed Charikar peel bounds for a whole batch of worlds at once.

    Lockstep across worlds: every round, each unfinished world deletes
    *all* of its alive minimum-degree nodes (the batched variant of the
    sequential bucket peel -- same family of achieved densities, removal
    granularity one bucket instead of one node).  Returns ``(nums,
    dens)`` ``(theta,)`` ``int64`` arrays where ``nums[t] / dens[t]`` is
    the densest prefix seen for world ``t`` -- an **achieved** edge
    density of an induced subgraph, hence a valid Dinkelbach seed that
    the bound-independence contract of
    :func:`repro.dense.all_densest.prepare_from_bound_csr` accepts
    without changing any result.  Edgeless worlds report ``0 / 1``.

    Degree updates are incremental (only edges deleted this round are
    re-binned), so total work is ``O(rounds * theta * n + theta * m)``.
    """
    if isinstance(edge_masks, PackedMasks):
        edge_masks = edge_masks.to_bool()
    u, v = indexed.edge_u, indexed.edge_v
    theta = edge_masks.shape[0]
    n = indexed.n
    edge_alive = edge_masks.copy()
    node_alive = np.ones((theta, n), dtype=bool)
    degree = batch_world_degrees(indexed, edge_alive)
    edges_left = edge_alive.sum(axis=1, dtype=np.int64)
    nodes_left = np.full(theta, n, dtype=np.int64)
    nums = edges_left.copy()
    dens = nodes_left.copy()
    live = edges_left > 0
    nums[~live] = 0
    dens[~live] = 1
    while live.any():
        # per-world minimum alive degree (finished worlds stay put)
        masked = np.where(node_alive, degree, _INF)
        min_degree = masked.min(axis=1)
        kill = node_alive & (degree == min_degree[:, None]) & live[:, None]
        node_alive &= ~kill
        gone = edge_alive & ~(node_alive[:, u] & node_alive[:, v])
        edge_alive &= ~gone
        world_idx, edge_idx = np.nonzero(gone)
        np.subtract.at(degree, (world_idx, u[edge_idx]), 1)
        np.subtract.at(degree, (world_idx, v[edge_idx]), 1)
        edges_left -= np.bincount(world_idx, minlength=theta)
        nodes_left -= kill.sum(axis=1, dtype=np.int64)
        better = live & (edges_left * dens > nums * nodes_left)
        nums[better] = edges_left[better]
        dens[better] = nodes_left[better]
        live &= edges_left > 0
    return nums, dens


def k_core_alive(
    indexed: IndexedGraph, edge_mask: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(node_alive, edge_alive)`` masks of the world's k-core.

    Iteratively deletes nodes of degree < k (isolated nodes included for
    any k >= 1), which converges to the same node set as the bucket
    peeling in :func:`repro.dense.kcore.k_core`.
    """
    u, v = indexed.edge_u, indexed.edge_v
    edge_alive = edge_mask.copy()
    node_alive = np.ones(indexed.n, dtype=bool)
    if k <= 0:
        return node_alive, edge_alive
    while True:
        degree = world_degrees(indexed, edge_alive)
        dead = node_alive & (degree < k)
        if not dead.any():
            return node_alive, edge_alive
        node_alive &= ~dead
        edge_alive &= node_alive[u] & node_alive[v]


def batched_greedypp(
    indexed: IndexedGraph,
    edge_mask: np.ndarray,
    rounds: int = 2,
) -> Tuple[int, int, np.ndarray, List[Tuple[int, int]]]:
    """Load-aware batched peeling; returns a certified density bound.

    Each round peels the world to nothing, repeatedly deleting *all*
    nodes minimising ``load(v) + degree(v)`` at once (a batched variant
    of Greedy++: Boob et al., WWW 2020; round 1 with zero loads is
    batched Charikar peeling).  A removed node's load grows by its
    degree, so later rounds peel in a different order and can expose
    denser prefixes.

    Returns ``(best_num, best_den, best_alive, history)`` where
    ``best_num / best_den`` is the densest intermediate subgraph seen
    across all rounds (an exact, *achieved* edge density -- the induced
    subgraph on ``best_alive`` realises it) and ``history`` holds the
    best ``(num, den)`` after each round, non-decreasing.  On an edgeless
    world the bound is ``0/1`` with an empty node mask.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    u, v = indexed.edge_u, indexed.edge_v
    n = indexed.n
    load = np.zeros(n, dtype=np.int64)
    best_num, best_den = 0, 1
    best_alive = np.zeros(n, dtype=bool)
    history: List[Tuple[int, int]] = []
    for _ in range(rounds):
        edge_alive = edge_mask.copy()
        node_alive = np.zeros(n, dtype=bool)
        node_alive[u[edge_alive]] = True
        node_alive[v[edge_alive]] = True
        edges_left = int(edge_alive.sum())
        nodes_left = int(node_alive.sum())
        if nodes_left and edges_left * best_den > best_num * nodes_left:
            best_num, best_den = edges_left, nodes_left
            best_alive = node_alive.copy()
        while nodes_left > 0:
            degree = world_degrees(indexed, edge_alive)
            key = np.where(node_alive, load + degree, _INF)
            batch = key == key.min()
            load[batch] += degree[batch]
            node_alive &= ~batch
            edge_alive &= node_alive[u] & node_alive[v]
            edges_left = int(edge_alive.sum())
            nodes_left = int(node_alive.sum())
            if nodes_left and edges_left * best_den > best_num * nodes_left:
                best_num, best_den = edges_left, nodes_left
                best_alive = node_alive.copy()
        history.append((best_num, best_den))
    return best_num, best_den, best_alive, history
