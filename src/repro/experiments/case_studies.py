"""Case studies: Karate Club communities (Figs. 6-7) and brain networks
(Figs. 8-15, Section VI-F).

Karate Club: the MPDSs stay within one ground-truth faction and use
high-probability edges; the deterministic densest subgraph, the EDS, and
the innermost core/truss mix factions.

Brain networks: the 3-clique MPDS of the ASD group lies entirely in the
occipital lobe and is nearly hemisphere-symmetric (one unpaired ROI),
while the TD group's MPDS spans into the temporal lobe and cerebellum with
two unpaired ROIs -- matching the neuroscience findings the paper cites
[95]-[97].  The EDS / core / truss span many regions for both groups and
fail to distinguish them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from ..baselines.eds import expected_densest_subgraph
from ..baselines.probabilistic_core import innermost_eta_core
from ..baselines.probabilistic_truss import innermost_gamma_truss
from ..baselines.dds import deterministic_densest_subgraph
from ..core.measures import CliqueDensity
from ..core.mpds import top_k_mpds
from ..datasets.brain import brain_network, counterpart, roi_lobes
from ..datasets.karate import KARATE_FACTIONS, karate_club_uncertain
from ..metrics.quality import purity
from .common import format_table

ETA = 0.1
GAMMA = 0.1


@dataclass
class KarateCaseResult:
    """Karate Club comparison (Figs. 6-7 in table form)."""

    mpds: FrozenSet[int]
    dds: FrozenSet[int]
    eds: FrozenSet[int]
    core: FrozenSet[int]
    truss: FrozenSet[int]
    purities: Dict[str, float]


def run_karate_case(theta: int = 160, seed: int = 7) -> KarateCaseResult:
    """Compute the five Karate Club subgraphs and their purities."""
    graph = karate_club_uncertain(seed=2023)
    mpds = top_k_mpds(graph, k=1, theta=theta, seed=seed)
    mpds_nodes = mpds.best().nodes if mpds.top else frozenset()
    _d, dds_nodes = deterministic_densest_subgraph(graph)
    eds_nodes = expected_densest_subgraph(graph).nodes
    _kc, core_nodes = innermost_eta_core(graph, ETA)
    _kt, truss_nodes = innermost_gamma_truss(graph, GAMMA)
    subgraphs = {
        "MPDS": mpds_nodes,
        "DDS": dds_nodes,
        "EDS": eds_nodes,
        "Core": core_nodes,
        "Truss": truss_nodes,
    }
    purities = {
        name: purity(nodes, KARATE_FACTIONS)
        for name, nodes in subgraphs.items()
    }
    return KarateCaseResult(
        mpds=frozenset(mpds_nodes),
        dds=frozenset(dds_nodes),
        eds=frozenset(eds_nodes),
        core=frozenset(core_nodes),
        truss=frozenset(truss_nodes),
        purities=purities,
    )


@dataclass
class BrainGroupResult:
    """One group's (TD or ASD) brain-network analysis."""

    group: str
    mpds: FrozenSet[str]
    mpds_lobes: Set[str]
    mpds_unpaired: Set[str]
    eds: FrozenSet[str]
    eds_lobes: Set[str]
    core_lobes: Set[str]
    truss_lobes: Set[str]


def _lobes_of(nodes: FrozenSet[str], lobes: Dict[str, str]) -> Set[str]:
    return {lobes[node] for node in nodes}


def _unpaired(nodes: FrozenSet[str]) -> Set[str]:
    """ROIs whose hemispheric counterpart is absent from the set."""
    return {node for node in nodes if counterpart(node) not in nodes}


def run_brain_case(
    group: str,
    subjects: int = 40,
    theta: int = 48,
    seed: int = 7,
) -> BrainGroupResult:
    """Compute the 3-clique MPDS and baselines for one brain group."""
    graph = brain_network(group, subjects=subjects, seed=2023)
    lobes = roi_lobes()
    measure = CliqueDensity(3)
    mpds = top_k_mpds(graph, k=1, theta=theta, measure=measure, seed=seed)
    mpds_nodes = mpds.best().nodes if mpds.top else frozenset()
    eds_nodes = expected_densest_subgraph(graph).nodes
    _kc, core_nodes = innermost_eta_core(graph, ETA)
    _kt, truss_nodes = innermost_gamma_truss(graph, GAMMA)
    return BrainGroupResult(
        group=group,
        mpds=frozenset(mpds_nodes),
        mpds_lobes=_lobes_of(frozenset(mpds_nodes), lobes),
        mpds_unpaired=_unpaired(frozenset(mpds_nodes)),
        eds=frozenset(eds_nodes),
        eds_lobes=_lobes_of(frozenset(eds_nodes), lobes),
        core_lobes=_lobes_of(frozenset(core_nodes), lobes),
        truss_lobes=_lobes_of(frozenset(truss_nodes), lobes),
    )


def format_karate_case(result: KarateCaseResult) -> str:
    """Render the Karate Club comparison."""
    rows = []
    for name, nodes in (
        ("MPDS", result.mpds), ("DDS", result.dds), ("EDS", result.eds),
        ("Core", result.core), ("Truss", result.truss),
    ):
        rows.append([name, len(nodes), result.purities[name],
                     ",".join(map(str, sorted(nodes)))[:40]])
    return format_table(["Subgraph", "Size", "Purity", "Nodes"], rows)


def format_brain_case(td: BrainGroupResult, asd: BrainGroupResult) -> str:
    """Render the TD-vs-ASD comparison."""
    rows = []
    for r in (td, asd):
        rows.append([
            r.group,
            len(r.mpds),
            "+".join(sorted(r.mpds_lobes)),
            len(r.mpds_unpaired),
            len(r.eds),
            len(r.eds_lobes),
        ])
    return format_table(
        ["Group", "|MPDS|", "MPDS lobes", "Unpaired", "|EDS|", "EDS #lobes"],
        rows,
    )
