"""Unit and property tests for the deterministic Graph substrate."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph, canonical_edge

from .conftest import random_graph


class TestBasicOperations:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert graph.edge_density() == 0

    def test_add_nodes_and_edges(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_edge("a", "b")
        assert "a" in graph and "b" in graph
        assert graph.has_edge("a", "b") and graph.has_edge("b", "a")
        assert graph.degree("a") == 1

    def test_add_edge_idempotent(self):
        graph = Graph.from_edges([(1, 2), (1, 2), (2, 1)])
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_remove_edge_and_node(self):
        graph = Graph.from_edges([(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        graph.remove_node(2)
        assert 2 not in graph
        assert not graph.has_edge(2, 3)
        assert graph.number_of_edges() == 0

    def test_remove_missing_edge_raises(self):
        graph = Graph.from_edges([(1, 2)])
        with pytest.raises(KeyError):
            graph.remove_edge(1, 3)

    def test_copy_is_independent(self):
        graph = Graph.from_edges([(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_edge(2, 3)

    def test_edges_each_once(self, rng):
        graph = random_graph(rng, 12, 0.4)
        edges = list(graph.edges())
        canon = {canonical_edge(u, v) for u, v in edges}
        assert len(edges) == len(canon) == graph.number_of_edges()

    def test_equality_and_node_set(self):
        a = Graph.from_edges([(1, 2), (2, 3)])
        b = Graph.from_edges([(2, 3), (1, 2)])
        assert a == b
        assert a.node_set() == frozenset({1, 2, 3})


class TestDensityAndStructure:
    def test_edge_density_triangle(self, triangle_graph):
        assert triangle_graph.edge_density() == Fraction(1)

    def test_subgraph_induced(self):
        graph = Graph.from_edges([(1, 2), (2, 3), (3, 4), (1, 3)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 3
        assert not sub.has_edge(3, 4)

    def test_subgraph_ignores_absent_nodes(self):
        graph = Graph.from_edges([(1, 2)])
        sub = graph.subgraph([1, 2, 99])
        assert 99 not in sub

    def test_connected_components(self):
        graph = Graph.from_edges([(1, 2), (3, 4)])
        graph.add_node(5)
        components = {frozenset(c) for c in graph.connected_components()}
        assert components == {
            frozenset({1, 2}), frozenset({3, 4}), frozenset({5})
        }

    def test_triangles(self):
        graph = Graph.from_edges([(1, 2), (2, 3), (1, 3), (3, 4)])
        assert list(graph.triangles()) == [(1, 2, 3)]

    def test_degeneracy_ordering_is_permutation(self, rng):
        graph = random_graph(rng, 20, 0.3)
        ordering = graph.degeneracy_ordering()
        assert sorted(ordering, key=repr) == sorted(graph.nodes(), key=repr)

    def test_degeneracy_ordering_quality(self, rng):
        """Each node has at most `degeneracy` neighbors later in the order."""
        for _ in range(10):
            graph = random_graph(rng, 15, 0.4)
            if graph.number_of_nodes() == 0:
                continue
            ordering = graph.degeneracy_ordering()
            position = {node: i for i, node in enumerate(ordering)}
            forward_degrees = [
                sum(1 for n in graph.neighbors(v) if position[n] > position[v])
                for v in ordering
            ]
            try:
                import networkx as nx
                nxg = nx.Graph(list(graph.edges()))
                nxg.add_nodes_from(graph.nodes())
                expected = max(nx.core_number(nxg).values(), default=0)
                assert max(forward_degrees, default=0) <= expected
            except ImportError:  # pragma: no cover
                pass


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    edges = draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=n - 1),
            st.integers(min_value=0, max_value=n - 1),
        ),
        max_size=20,
    ))
    graph = Graph(nodes=range(n))
    for u, v in edges:
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestGraphProperties:
    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, graph):
        assert sum(graph.degree(v) for v in graph) == 2 * graph.number_of_edges()

    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_nodes(self, graph):
        components = graph.connected_components()
        union = set()
        total = 0
        for component in components:
            union |= component
            total += len(component)
        assert union == set(graph.nodes())
        assert total == graph.number_of_nodes()

    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_subgraph_density_bounded(self, graph):
        sub = graph.subgraph(list(graph.nodes())[: max(1, len(graph) // 2)])
        if sub.number_of_nodes() > 0:
            n = sub.number_of_nodes()
            assert 0 <= sub.edge_density() <= Fraction(n - 1, 2) if n > 1 else True
