"""Seed-keyed store of sampled possible worlds, replayable across queries.

The sampling estimators (Algorithms 1 and 5) share one expensive phase:
drawing ``theta`` possible worlds.  A :class:`WorldStore` captures one
such draw as flat arrays -- the ``(T, m)`` boolean mask matrix, the
``(T,)`` estimator weights, and the LP/RSS per-world edge insertion
orders -- exactly the representation the parallel substrate already
ships to workers (:func:`repro.engine.blocks.drain_mask_stream`).  The
store can then be *replayed* any number of times, by any query (MPDS or
NDS, any ``k`` / ``min_size`` / measure / engine / worker count),
without touching a sampler again.

Byte-identity contract
----------------------
:meth:`world_stream` rebuilds, world by world, the very objects the
one-shot estimators would have evaluated for the same seed:

* vectorised engines get fresh :class:`MaskWorld` views over the stored
  mask rows (with the original insertion orders attached);
* the pure-Python engine gets :meth:`IndexedGraph.world_graph`
  materialisations replaying the exact insertion sequence of the
  originating sampler.

Since the stored arrays are drained from the sampler's *continuous* RNG
stream (the same drain the parallel substrate uses, whose
worker-count-invariance tests pin this replay), estimates computed from
a store are **byte-identical** to the equivalent one-shot
``top_k_mpds`` / ``top_k_nds`` call -- the property
``tests/test_session_differential.py`` asserts cell by cell.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..sampling.base import WeightedWorld
from .indexed import IndexedGraph, MaskWorld


class WorldStore:
    """One draw of sampled worlds, held as replayable flat arrays."""

    __slots__ = (
        "indexed", "masks", "weights", "order_data", "order_indptr",
        "kind", "theta", "seed",
    )

    def __init__(
        self,
        indexed: IndexedGraph,
        masks: np.ndarray,
        weights: np.ndarray,
        order_data: Optional[np.ndarray],
        order_indptr: Optional[np.ndarray],
        kind: str = "mc",
        theta: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.indexed = indexed
        self.masks = masks
        self.weights = weights
        self.order_data = order_data
        self.order_indptr = order_indptr
        self.kind = kind
        self.theta = len(weights) if theta is None else theta
        self.seed = seed

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_vectorized(
        cls,
        sampler,
        theta: int,
        kind: str = "mc",
        seed: Optional[int] = None,
    ) -> "WorldStore":
        """Drain a vectorised sampler's continuous stream into a store."""
        from .blocks import drain_mask_stream

        masks, weights, order_data, order_indptr = drain_mask_stream(
            sampler, theta
        )
        return cls(
            sampler.indexed, masks, weights, order_data, order_indptr,
            kind=kind, theta=theta, seed=seed,
        )

    @classmethod
    def from_sampler(
        cls, graph, sampler, theta: int, seed: Optional[int] = None
    ) -> "WorldStore":
        """Drain a pure-Python (or vectorised) sampler via its twin.

        ``sampler=None`` replicates ``MonteCarloSampler(graph, seed)``,
        exactly as the one-shot estimators do.
        """
        from .estimators import vectorized_sampler

        vec = vectorized_sampler(graph, sampler, seed)
        kind = getattr(sampler, "name", None) or "mc"
        return cls.from_vectorized(vec, theta, kind=str(kind).lower(), seed=seed)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Actual number of stored worlds (RSS may differ from theta)."""
        return len(self.weights)

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the stored world arrays."""
        total = self.masks.nbytes + self.weights.nbytes
        if self.order_data is not None:
            total += self.order_data.nbytes + self.order_indptr.nbytes
        return total

    def order(self, i: int) -> Optional[np.ndarray]:
        """Edge insertion order of world ``i`` (None = edge-index order)."""
        if self.order_data is None:
            return None
        return self.order_data[self.order_indptr[i]:self.order_indptr[i + 1]]

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def mask_worlds(self) -> Iterator[WeightedWorld]:
        """Yield the stored worlds as fresh :class:`MaskWorld` views."""
        for i in range(self.count):
            yield WeightedWorld(
                MaskWorld(self.indexed, self.masks[i], self.order(i)),
                float(self.weights[i]),
            )

    def graph_worlds(self) -> Iterator[WeightedWorld]:
        """Yield the stored worlds materialised as :class:`Graph` objects,
        replaying each world's exact insertion sequence."""
        for i in range(self.count):
            yield WeightedWorld(
                self.indexed.world_graph(self.masks[i], self.order(i)),
                float(self.weights[i]),
            )

    def world_stream(self, measure, engine: str = "auto") -> Tuple:
        """Build one query's ``(worlds, loop_measure, engine_measure)``.

        The store-backed twin of
        :func:`repro.engine.estimators.prepare_world_stream`: resolves
        the engine for ``measure`` (stored streams are always
        replayable, so only the measure matters) and returns the world
        iterator plus the measure the estimator loop should query.
        """
        from .estimators import EngineMeasure, resolve_engine

        if resolve_engine(engine, None, measure) == "vectorized":
            engine_measure = EngineMeasure(measure)
            return self.mask_worlds(), engine_measure, engine_measure
        return self.graph_worlds(), measure, None

    def __repr__(self) -> str:
        return (
            f"WorldStore(kind={self.kind!r}, worlds={self.count}, "
            f"m={self.indexed.m}, seed={self.seed!r})"
        )
