"""Figs. 19 & 20: parameter sensitivity.

Fig. 19: as theta doubles, the similarity of the returned top-k to the
previous theta's result rises to ~1 (convergence) while runtime grows
linearly -- the protocol used to pick the default theta per dataset.

Fig. 20: for NDS queries, the average estimated containment probability
(a) decreases as k grows (deeper results are weaker nuclei) and (b) stays
flat in l_m until the closed sets run out, then decays to 0 -- which is
how a feasible upper bound for l_m is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.mpds import top_k_mpds
from ..core.nds import top_k_nds
from ..graph.uncertain import UncertainGraph
from ..metrics.quality import top_k_similarity
from .common import LARGE_DATASETS, format_table, timed
from ..datasets.synthetic import make_biomine_like, make_intel_lab_like


@dataclass
class ThetaPoint:
    """One theta point of Fig. 19: similarity to previous theta + runtime."""

    theta: int
    similarity: float
    seconds: float


def run_fig19(
    loader: Optional[Callable[[], UncertainGraph]] = None,
    mode: str = "mpds",
    k: int = 5,
    thetas: Sequence[int] = (20, 40, 80, 160, 320),
    seed: int = 7,
) -> List[ThetaPoint]:
    """Convergence of the top-k with theta (MPDS on Intel-Lab-like or NDS
    on Biomine-like by default)."""
    if mode not in ("mpds", "nds"):
        raise ValueError(f"mode must be 'mpds' or 'nds', got {mode!r}")
    graph = (loader or (make_intel_lab_like if mode == "mpds" else make_biomine_like))()

    def run(theta: int) -> List[frozenset]:
        if mode == "mpds":
            return top_k_mpds(graph, k=k, theta=theta, seed=seed).top_sets()
        return top_k_nds(
            graph, k=k, min_size=2, theta=theta, seed=seed
        ).top_sets()

    points: List[ThetaPoint] = []
    previous: Optional[List[frozenset]] = None
    for theta in thetas:
        result, seconds = timed(lambda: run(theta))
        similarity = (
            top_k_similarity(result, previous) if previous is not None else 0.0
        )
        points.append(ThetaPoint(theta, similarity, seconds))
        previous = result
    return points


@dataclass
class KPoint:
    """One k point of Fig. 20(a)."""

    dataset: str
    k: int
    avg_containment: float


@dataclass
class LmPoint:
    """One l_m point of Fig. 20(b)."""

    lm: int
    avg_containment: float


def run_fig20_k(
    datasets: Optional[Dict[str, Callable[[], UncertainGraph]]] = None,
    ks: Sequence[int] = (1, 5, 10, 50, 100),
    theta: int = 64,
    min_size: int = 2,
    seed: int = 7,
) -> List[KPoint]:
    """Average estimated containment probability of the top-k vs k."""
    datasets = datasets or {
        name: fn for name, fn in LARGE_DATASETS.items() if name != "Friendster"
    }
    points: List[KPoint] = []
    for name, loader in datasets.items():
        graph = loader()
        result = top_k_nds(
            graph, k=max(ks), min_size=min_size, theta=theta, seed=seed
        )
        for k in ks:
            top = result.top[:k]
            avg = sum(s.probability for s in top) / len(top) if top else 0.0
            points.append(KPoint(name, k, avg))
    return points


def run_fig20_lm(
    loader: Optional[Callable[[], UncertainGraph]] = None,
    lms: Sequence[int] = (1, 2, 3, 5, 8, 12, 20),
    k: int = 10,
    theta: int = 64,
    seed: int = 7,
) -> List[LmPoint]:
    """Average estimated containment probability vs the minimum size l_m."""
    graph = (loader or LARGE_DATASETS["HomoSapiens"])()
    points: List[LmPoint] = []
    for lm in lms:
        result = top_k_nds(graph, k=k, min_size=lm, theta=theta, seed=seed)
        top = result.top
        avg = sum(s.probability for s in top) / len(top) if top else 0.0
        points.append(LmPoint(lm, avg))
    return points


def format_fig19(points: List[ThetaPoint]) -> str:
    """Render the Fig. 19 series."""
    headers = ["theta", "Similarity", "Time(s)"]
    body = [[p.theta, p.similarity, p.seconds] for p in points]
    return format_table(headers, body)


def format_fig20(
    k_points: List[KPoint], lm_points: List[LmPoint]
) -> Tuple[str, str]:
    """Render the two Fig. 20 panels."""
    k_table = format_table(
        ["Dataset", "k", "AvgContainment"],
        [[p.dataset, p.k, p.avg_containment] for p in k_points],
    )
    lm_table = format_table(
        ["l_m", "AvgContainment"],
        [[p.lm, p.avg_containment] for p in lm_points],
    )
    return k_table, lm_table
