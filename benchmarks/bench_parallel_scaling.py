"""Scaling bench: sequential vs multiprocess MPDS sampling loops.

The repro hint for this paper is "sampling loops slow at scale" in pure
Python; ``repro.core.parallel`` shards the world-sampling loop across
processes.  This bench measures the speedup of 1 / 2 / 4 workers on a
LastFM-like workload and checks the estimates stay consistent with the
sequential run (the merge is unbiased).
"""

import time

from repro.core.parallel import parallel_top_k_mpds
from repro.experiments.common import format_table
from repro.metrics.quality import top_k_similarity

from .conftest import BENCH_SMALL, emit

WORKERS = (1, 2, 4)
THETA = 48


def test_parallel_scaling(benchmark):
    graph = BENCH_SMALL["LastFM"]()

    def run():
        rows = []
        baseline_sets = None
        for workers in WORKERS:
            start = time.perf_counter()
            result = parallel_top_k_mpds(
                graph, k=5, theta=THETA, seed=2023, workers=workers,
                per_world_limit=2000,
            )
            elapsed = time.perf_counter() - start
            sets = result.top_sets()
            if baseline_sets is None:
                baseline_sets = sets
                similarity = 1.0
            else:
                similarity = top_k_similarity(sets, baseline_sets)
            rows.append([workers, result.theta, elapsed, similarity])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("parallel_scaling", format_table(
        ["Workers", "theta", "Time(s)", "Top-5 similarity vs 1 worker"], rows,
    ))
    # every configuration processes the full theta and returns similar sets
    for row in rows:
        assert row[1] == THETA
        assert row[3] >= 0.2  # sampling noise differs across chunkings
