"""Cross-process determinism under PYTHONHASHSEED randomization.

String node labels hash differently in every interpreter process, so
any result that leaks hash order (set iteration, ``hash()``-derived
seeds) differs between a driver and its spawned workers -- or between
two runs of the same script.  These are the regression tests for the
hazards ``repro-lint``'s determinism checkers surfaced: the brain
dataset's hash-derived group seed (DET103) and hash-ordered set
iteration on string-labeled estimation paths (DET102).

Each test runs the same computation in two subprocesses pinned to
different ``PYTHONHASHSEED`` values and asserts byte-identical output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

BRAIN_SNIPPET = """
import hashlib
from repro.datasets.brain import brain_network

graph = brain_network("ASD", subjects=4, seed=11)
payload = repr(sorted(graph.weighted_edges())).encode()
print(hashlib.sha1(payload).hexdigest())
"""

QUERY_SNIPPET = """
import random
from repro.graph.generators import uncertain_erdos_renyi
from repro.graph.uncertain import UncertainGraph
from repro.session import Session

base = uncertain_erdos_renyi(14, 0.35, rng=random.Random(5))
graph = UncertainGraph()
for node in base.nodes():
    graph.add_node(f"node-{node}")
for u, v, p in base.weighted_edges():
    graph.add_edge(f"node-{u}", f"node-{v}", p)
with Session(graph) as session:
    result = (
        session.query()
        .sampler("mc", theta=16, seed=3)
        .top_k(2)
        .mpds()
    )
print(result.to_json(indent=None))
"""


def _run_pinned(snippet: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


def test_brain_network_identical_across_hash_seeds():
    """DET103 regression: the group seed must not derive from hash()."""
    assert _run_pinned(BRAIN_SNIPPET, "1") == _run_pinned(BRAIN_SNIPPET, "93")


def test_string_labeled_query_identical_across_hash_seeds():
    """DET102 regression: estimates on str-labeled graphs must not leak
    set-iteration order anywhere in the sample/evaluate path."""
    out_a = _run_pinned(QUERY_SNIPPET, "7")
    out_b = _run_pinned(QUERY_SNIPPET, "4242")
    assert out_a == out_b
    assert '"probability"' in out_a  # sanity: the query really produced output
