"""All h-clique-densest subgraphs of a deterministic graph (Algorithms 2/3/6).

This is one of the paper's novel technical contributions: no prior work
enumerated *all* clique-densest subgraphs.  The pipeline mirrors Algorithm 2:

1. ``rho~`` from h-clique peeling [19]; shrink to the (ceil(rho~), h)-core;
2. ``Lambda`` = all (h-1)-cliques contained in h-cliques [56];
3. compute the exact optimum ``rho*_h`` (the paper uses the convex-program
   solver of [57]; we binary-search the same flow network, which is exact --
   see DESIGN.md substitutions -- and also ship a kClist++-style solver in
   :mod:`repro.dense.kclistpp` for the ablation);
4. build the flow network of Algorithm 6 at ``alpha = rho*_h``, max-flow,
   condense the residual graph, and enumerate independent component sets
   (Algorithm 3, Theorem 4: each densest subgraph exactly once).

The minimum s-t cut at ``alpha = rho*_h`` has capacity ``h * mu_h(G)``
(Corollary 1), which we assert after scaling capacities to integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..cliques.enumeration import (
    Clique,
    enumerate_cliques,
    sub_cliques_of_h_cliques,
)
from ..flow.maxflow import max_flow, min_cut_maximal_source_side, min_cut_source_side
from ..flow.network import FlowNetwork
from ..graph.graph import Graph, Node
from .component_enum import (
    ComponentStructure,
    build_component_structure,
    enumerate_independent_sets,
)
from .kcore import kh_core
from .peeling import peel_clique_density

SOURCE = ("__source__",)
SINK = ("__sink__",)


def _clique_label(lam: Clique) -> Tuple[str, Clique]:
    """Network label for an (h-1)-clique node (disjoint from graph nodes)."""
    return ("__clique__", lam)


def build_clique_density_network(
    graph: Graph,
    h: int,
    alpha: Fraction,
    lambdas: List[Clique],
    completions: Dict[Clique, List[Node]],
) -> FlowNetwork:
    """Construct the flow network of Algorithm 6, scaled by ``alpha``'s denominator.

    * ``c(s, v) = q * deg_G(v, h)`` (h-clique degree),
    * ``c(v, t) = h * p`` where ``alpha = p / q``,
    * ``c(lam, v) = infinity`` for each node ``v`` of the (h-1)-clique,
    * ``c(v, lam) = q`` for each ``v`` completing ``lam`` into an h-clique.
    """
    alpha = Fraction(alpha)
    p, q = alpha.numerator, alpha.denominator
    degrees: Dict[Node, int] = {node: 0 for node in graph}
    for lam, nodes in completions.items():
        for node in nodes:
            degrees[node] += 1
    # deg(v, h) counts h-cliques containing v; each h-clique containing v
    # appears exactly once as (lam, v) with lam = clique minus v.
    network = FlowNetwork()
    network.add_node(SOURCE)
    network.add_node(SINK)
    total_cliques = sum(len(nodes) for nodes in completions.values()) // h
    infinite = h * max(total_cliques, 1) * q + 1
    for node in graph:
        network.add_arc(SOURCE, node, q * degrees[node])
        network.add_arc(node, SINK, h * p)
    for lam in lambdas:
        label = _clique_label(lam)
        for member in lam:
            network.add_arc(label, member, infinite)
        for completer in completions[lam]:
            network.add_arc(completer, label, q)
    return network


@dataclass(frozen=True)
class CliqueDensestResult:
    """Exact maximum h-clique density and one witness subgraph."""

    density: Fraction
    nodes: FrozenSet[Node]


def _count_induced_cliques(graph: Graph, nodes: FrozenSet[Node], h: int) -> int:
    return sum(1 for _ in enumerate_cliques(graph.subgraph(nodes), h))


def _exists_denser(
    core: Graph,
    h: int,
    alpha: Fraction,
    lambdas: List[Clique],
    completions: Dict[Clique, List[Node]],
    mu: int,
) -> Tuple[bool, Optional[FrozenSet[Node]]]:
    """Check whether some subgraph has h-clique density > alpha (Lemma 3)."""
    network = build_clique_density_network(core, h, alpha, lambdas, completions)
    value = max_flow(network, SOURCE, SINK)
    target = h * mu * Fraction(alpha).denominator
    if value >= target:
        return False, None
    side = set(min_cut_source_side(network, SOURCE))
    witness = frozenset(node for node in core if node in side)
    return True, witness


def clique_densest_subgraph(graph: Graph, h: int) -> CliqueDensestResult:
    """Return the exact maximum h-clique density ``rho*_h`` and a witness.

    A graph with no h-clique has density 0 and an empty witness (an
    h-cliqueless world contributes to no clique-MPDS candidate).
    """
    if h == 2:
        from .goldberg import densest_subgraph as _edge_densest
        result = _edge_densest(graph)
        return CliqueDensestResult(result.density, result.nodes)
    peel = peel_clique_density(graph, h)
    if peel.density == 0 and not any(True for _ in enumerate_cliques(graph, h)):
        return CliqueDensestResult(Fraction(0), frozenset())
    ceil_density = -(-peel.density.numerator // peel.density.denominator)
    core = kh_core(graph, max(ceil_density, 1), h)
    if core.number_of_nodes() == 0:
        core = graph
    lambdas, completions = sub_cliques_of_h_cliques(core, h)
    mu = sum(len(nodes) for nodes in completions.values()) // h
    if mu == 0:
        return CliqueDensestResult(Fraction(0), frozenset())
    n = core.number_of_nodes()
    lo = max(peel.density, Fraction(1, n))
    hi = Fraction(mu, 1)
    best_nodes = peel.nodes if peel.density > 0 else core.node_set()
    gap = Fraction(1, n * n)
    while hi - lo >= gap:
        alpha = (lo + hi) / 2
        exists, witness = _exists_denser(core, h, alpha, lambdas, completions, mu)
        if exists:
            assert witness
            lo = Fraction(_count_induced_cliques(core, witness, h), len(witness))
            best_nodes = witness
        else:
            hi = alpha
    density = Fraction(
        _count_induced_cliques(graph, frozenset(best_nodes), h), len(best_nodes)
    )
    return CliqueDensestResult(density, frozenset(best_nodes))


@dataclass
class _PreparedClique:
    density: Fraction
    structure: Optional[ComponentStructure]
    maximal_nodes: FrozenSet[Node]


def _prepare(graph: Graph, h: int) -> _PreparedClique:
    exact = clique_densest_subgraph(graph, h)
    if exact.density == 0:
        return _PreparedClique(Fraction(0), None, frozenset())
    ceil_density = -(-exact.density.numerator // exact.density.denominator)
    core = kh_core(graph, max(ceil_density, 1), h)
    if core.number_of_nodes() == 0:
        core = graph
    lambdas, completions = sub_cliques_of_h_cliques(core, h)
    mu = sum(len(nodes) for nodes in completions.values()) // h
    network = build_clique_density_network(
        core, h, exact.density, lambdas, completions
    )
    value = max_flow(network, SOURCE, SINK)
    expected = h * mu * exact.density.denominator
    if value != expected:  # pragma: no cover - exactness guard
        raise AssertionError(
            f"max flow {value} != h mu q = {expected}; rho*_h not exact?"
        )
    graph_node_set = core.node_set()
    structure = build_component_structure(
        network, SOURCE, SINK, is_graph_node=lambda label: label in graph_node_set
    )
    maximal = frozenset(
        label
        for label in min_cut_maximal_source_side(network, SINK)
        if label in graph_node_set
    )
    return _PreparedClique(exact.density, structure, maximal)


def enumerate_all_clique_densest_subgraphs(
    graph: Graph, h: int, limit: Optional[int] = None
) -> Iterator[FrozenSet[Node]]:
    """Yield every h-clique-densest subgraph exactly once (Theorem 4).

    For ``h = 2`` this delegates to the edge-density enumeration, as a
    2-clique is an edge.
    """
    if h == 2:
        from .all_densest import enumerate_all_densest_subgraphs
        yield from enumerate_all_densest_subgraphs(graph, limit)
        return
    prepared = _prepare(graph, h)
    if prepared.structure is None:
        return
    yield from enumerate_independent_sets(prepared.structure, limit)


def all_clique_densest_subgraphs(
    graph: Graph, h: int, limit: Optional[int] = None
) -> List[FrozenSet[Node]]:
    """Return all h-clique-densest subgraphs as a list."""
    return list(enumerate_all_clique_densest_subgraphs(graph, h, limit))


def maximum_sized_clique_densest_subgraph(
    graph: Graph, h: int
) -> Tuple[Fraction, FrozenSet[Node]]:
    """Return ``(rho*_h, nodes)`` of the maximum-sized h-clique-densest subgraph."""
    if h == 2:
        from .all_densest import maximum_sized_densest_subgraph
        return maximum_sized_densest_subgraph(graph)
    prepared = _prepare(graph, h)
    return prepared.density, prepared.maximal_nodes


def maximum_clique_density(graph: Graph, h: int) -> Fraction:
    """Return rho*_h, the maximum h-clique density over all subgraphs."""
    return clique_densest_subgraph(graph, h).density
