"""Determinism-hazard checkers (DET1xx).

The repo's contract is byte-identical estimates across engines, worker
counts, packed representations, and delta steps.  These checkers flag
the constructs that have historically broken that contract:

``DET101``
    Module-level / unseeded RNG use (``random.random()``,
    ``random.Random()`` with no seed, legacy ``np.random.*`` global
    state, ``np.random.default_rng()`` with no seed) outside the
    sanctioned sampler seams listed in :data:`SANCTIONED_RNG_FILES`.
``DET102``
    Iteration over ``set``/``frozenset`` values (``for x in set(...)``,
    ``list(set(...))``) -- hash-order iteration differs across
    processes whenever keys are strings (PYTHONHASHSEED), and across
    builds for mixed types.  Wrap in ``sorted(...)`` or dedup with
    ``dict.fromkeys(...)`` (insertion-ordered) instead.
``DET103``
    Unstable object identity flowing into keys or seeds: any
    ``hash()`` / ``.__hash__()`` call (string hashing is randomized per
    process), any ``id()`` call, and -- the PR 5 bug class --
    ``repr(<parameter>)`` inside a key/cache/fingerprint-building
    function without the ``cls.__repr__ is object.__repr__`` default-repr
    guard (``object.__repr__`` embeds ``id()``, and CPython reuses
    addresses, so two distinct live objects can alias one cache key).
``DET104``
    Wall-clock reads inside branch conditions or comparisons in
    result-producing code (``if time.monotonic() ...``): results must
    not depend on how fast the host is.
"""

from __future__ import annotations

import ast
import re
from typing import List, Set

from .core import Checker, Finding, SourceFile, dotted_name

#: files allowed to default to unseeded RNGs: the public graph/generator
#: API seams document "pass rng/seed for reproducibility" and fall back
#: to the module RNG by design.  Estimation paths never appear here.
SANCTIONED_RNG_FILES = (
    "repro/graph/generators.py",
    "repro/graph/uncertain.py",
)

#: files allowed to branch on wall-clock time: serving timeouts, drain
#: deadlines, and pool supervision are inherently wall-clock-driven.
SANCTIONED_CLOCK_FILES = (
    "repro/serve.py",
    "repro/core/parallel.py",
)

#: legacy numpy global-state entry points (np.random.<fn>)
_NP_LEGACY = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "normal",
    "uniform",
    "binomial",
    "poisson",
    "exponential",
    "get_state",
    "set_state",
}

#: random-module attrs that are NOT module-global-state draws
_RANDOM_MODULE_OK = {"Random", "SystemRandom", "getstate", "setstate"}

_CLOCK_CALLS = {
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.process_time",
    "time.time_ns",
    "time.monotonic_ns",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
}

#: function names treated as key/seed producers for the repr rule
_KEYISH = re.compile(r"key|cache|fingerprint|digest", re.IGNORECASE)


def _is_test_file(src: SourceFile) -> bool:
    name = src.path.name
    return name.startswith("test_") or name.startswith("conftest")


class DeterminismChecker(Checker):
    family = "DET"

    def run(self, src: SourceFile) -> List[Finding]:
        if src.kind != "python" or src.tree is None or _is_test_file(src):
            return []
        findings: List[Finding] = []
        findings.extend(self._unseeded_rng(src))
        findings.extend(self._set_iteration(src))
        findings.extend(self._unstable_identity(src))
        findings.extend(self._clock_branching(src))
        return findings

    # -- DET101 ------------------------------------------------------------
    def _unseeded_rng(self, src: SourceFile) -> List[Finding]:
        if src.matches(SANCTIONED_RNG_FILES):
            return []
        findings = []
        imported_random = any(
            isinstance(n, ast.Import)
            and any(a.name == "random" for a in n.names)
            for n in ast.walk(src.tree)
        )
        from_numpy_random: Set[str] = set()
        for n in ast.walk(src.tree):
            if isinstance(n, ast.ImportFrom) and n.module == "numpy.random":
                from_numpy_random.update(a.asname or a.name for a in n.names)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                finding = self._classify_rng_call(src, node, name, from_numpy_random)
                if finding is not None:
                    findings.append(finding)
            elif (
                imported_random
                and isinstance(node, ast.Name)
                and node.id == "random"
                and isinstance(node.ctx, ast.Load)
            ):
                parent = src.parents.get(node)
                if isinstance(parent, ast.Attribute):
                    continue  # handled as a call / attribute chain
                findings.append(
                    self.finding(
                        "DET101",
                        src,
                        node,
                        "the 'random' module itself is used as an RNG value "
                        "(module-global, unseeded state)",
                        "thread a seeded random.Random(seed) through instead",
                    )
                )
        return findings

    def _classify_rng_call(self, src, node, name, from_numpy_random):
        unseeded = not node.args and not node.keywords
        if name.startswith("random."):
            attr = name.split(".", 1)[1]
            if attr == "Random" and unseeded:
                return self.finding(
                    "DET101",
                    src,
                    node,
                    "random.Random() constructed without a seed",
                    "derive the seed from the query seed (stable digest)",
                )
            if "." not in attr and attr not in _RANDOM_MODULE_OK and attr[:1].islower():
                return self.finding(
                    "DET101",
                    src,
                    node,
                    f"module-level RNG call random.{attr}(...) uses unseeded "
                    "global state",
                    "use a seeded random.Random(seed) instance",
                )
        if name in ("np.random." + a for a in _NP_LEGACY) or name in (
            "numpy.random." + a for a in _NP_LEGACY
        ):
            return self.finding(
                "DET101",
                src,
                node,
                f"legacy numpy global-state RNG call {name}(...)",
                "use np.random.Generator seeded via SeedSequence",
            )
        if name in ("np.random.default_rng", "numpy.random.default_rng") or (
            name == "default_rng" and name in from_numpy_random
        ):
            if unseeded:
                return self.finding(
                    "DET101",
                    src,
                    node,
                    "np.random.default_rng() created without a seed",
                    "pass entropy derived from the query seed",
                )
        if name in ("np.random.SeedSequence", "numpy.random.SeedSequence", "SeedSequence"):
            if name == "SeedSequence" and name not in from_numpy_random:
                return None
            if unseeded:
                return self.finding(
                    "DET101",
                    src,
                    node,
                    "SeedSequence() created without entropy draws OS entropy",
                    "pass entropy=<derived seed>",
                )
        return None

    # -- DET102 ------------------------------------------------------------
    def _set_iteration(self, src: SourceFile) -> List[Finding]:
        findings = []
        for node in ast.walk(src.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Name)
                    and fn.id in ("list", "tuple", "enumerate", "iter", "reversed")
                    and node.args
                ):
                    iters.append(node.args[0])
            for it in iters:
                if self._is_set_expr(it):
                    findings.append(
                        self.finding(
                            "DET102",
                            src,
                            it,
                            "iteration over a set is hash-ordered "
                            "(varies with PYTHONHASHSEED for str keys)",
                            "iterate sorted(...) or dedup with dict.fromkeys(...)",
                        )
                    )
        return findings

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                return True
        return False

    # -- DET103 ------------------------------------------------------------
    def _unstable_identity(self, src: SourceFile) -> List[Finding]:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("hash", "id"):
                if self._inside_dunder_hash(src, node):
                    continue
                what = (
                    "hash() is randomized per process for str/bytes keys"
                    if fn.id == "hash"
                    else "id() is an ephemeral address, unstable across runs"
                )
                findings.append(
                    self.finding(
                        "DET103",
                        src,
                        node,
                        f"{what}; it must not feed keys or seeds",
                        "derive a stable digest (hashlib.blake2b / zlib.crc32) "
                        "from the value's canonical encoding",
                    )
                )
            elif isinstance(fn, ast.Attribute) and fn.attr == "__hash__":
                if self._inside_dunder_hash(src, node):
                    continue
                findings.append(
                    self.finding(
                        "DET103",
                        src,
                        node,
                        ".__hash__() is randomized per process for str keys; "
                        "it must not feed keys or seeds",
                        "derive a stable digest from a canonical encoding",
                    )
                )
        findings.extend(self._repr_in_key_functions(src))
        return findings

    @staticmethod
    def _inside_dunder_hash(src: SourceFile, node: ast.AST) -> bool:
        fn = src.enclosing_function(node)
        return fn is not None and fn.name in ("__hash__", "__eq__")

    def _repr_in_key_functions(self, src: SourceFile) -> List[Finding]:
        """The PR 5 bug class: default-repr objects aliasing cache keys."""
        findings = []
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _KEYISH.search(fn.name):
                continue
            params = {
                a.arg
                for a in (
                    fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
                )
                if a.arg not in ("self", "cls")
            }
            if self._has_default_repr_guard(fn):
                continue
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "repr"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in params
                ):
                    findings.append(
                        self.finding(
                            "DET103",
                            src,
                            node,
                            f"repr() of parameter {node.args[0].id!r} feeds a "
                            f"key in {fn.name}(); a default object.__repr__ "
                            "embeds id(), and address reuse aliases distinct "
                            "live objects to one key",
                            "reject default-repr objects first: "
                            "`if type(x).__repr__ is object.__repr__: ...`",
                        )
                    )
        return findings

    @staticmethod
    def _has_default_repr_guard(fn: ast.AST) -> bool:
        """Look for a ``... .__repr__ is object.__repr__`` comparison."""
        for node in ast.walk(fn):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left] + list(node.comparators)
            repr_attrs = [
                s
                for s in sides
                if isinstance(s, ast.Attribute) and s.attr == "__repr__"
            ]
            if len(repr_attrs) >= 2:
                return True
        return False

    # -- DET104 ------------------------------------------------------------
    def _clock_branching(self, src: SourceFile) -> List[Finding]:
        if src.matches(SANCTIONED_CLOCK_FILES):
            return []
        findings = []
        flagged = set()
        tests = []
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                tests.append(node.test)
            elif isinstance(node, ast.Compare):
                tests.append(node)
        for test in tests:
            for sub in ast.walk(test):
                if isinstance(sub, ast.Call) and dotted_name(sub.func) in _CLOCK_CALLS:
                    key = (sub.lineno, sub.col_offset)
                    if key in flagged:
                        continue
                    flagged.add(key)
                    findings.append(
                        self.finding(
                            "DET104",
                            src,
                            sub,
                            f"branching on wall-clock time "
                            f"({dotted_name(sub.func)}()) makes results "
                            "depend on host speed",
                            "gate on counts/sizes, or move the timing to "
                            "telemetry only",
                        )
                    )
        return findings
