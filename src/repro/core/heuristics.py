"""Core-decomposition heuristics for large graphs (Section III-C remark).

Enumerating all pattern instances (or all densest subgraphs on huge worlds)
can be too expensive.  The paper's fallback: run core decomposition w.r.t.
the density notion; the innermost core -- the (k_max, psi)-core -- is a
reasonably dense subgraph (its density is at least ``1/|V_psi|`` of the
optimum [5]), and the intermediate subgraphs obtained during the
decomposition with greater densities are reported too.  The paper uses
this for Pattern-NDS on large graphs (Table XI) and extends the same idea
to edge and clique densities on Friendster (Table XII).

This module exposes the heuristic as drop-in replacements:

* :func:`heuristic_dense_sets` -- the per-world candidate sets;
* :class:`HeuristicMeasure` -- wraps a base measure so the Algorithm 1/5
  estimators transparently use the heuristic instead of exact enumeration.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, List, Optional

from ..dense.peeling import (
    PeelingResult,
    peel_clique_density,
    peel_edge_density,
    peel_pattern_density,
)
from ..graph.graph import Graph, Node
from .measures import CliqueDensity, DensityMeasure, EdgeDensity, PatternDensity

NodeSet = FrozenSet[Node]


def _peel(world: Graph, measure: DensityMeasure) -> PeelingResult:
    if isinstance(measure, EdgeDensity):
        return peel_edge_density(world)
    if isinstance(measure, CliqueDensity):
        return peel_clique_density(world, measure.h)
    if isinstance(measure, PatternDensity):
        return peel_pattern_density(world, measure.pattern)
    raise TypeError(f"unsupported measure for the heuristic: {measure!r}")


def heuristic_dense_sets(
    world: Graph,
    measure: DensityMeasure,
    max_sets: int = 8,
) -> List[NodeSet]:
    """Return reasonably dense node sets of ``world`` without enumeration.

    One peeling (core-decomposition) pass; every peeling prefix whose
    density strictly improves on all earlier prefixes is a candidate (the
    paper: "the (k_max, psi)-core and all intermediate subgraphs ... having
    greater densities").  Candidates are returned densest-first, capped at
    ``max_sets``; the densest one equals ``PeelingResult.nodes``.
    """
    peel = _peel(world, measure)
    if peel.density == 0:
        return []
    improving: List[tuple] = []  # (density, index), strictly improving
    best_seen = Fraction(-1)
    for index, (density, _size) in enumerate(peel.trajectory):
        if density > best_seen and density > 0:
            best_seen = density
            improving.append((density, index))
    improving.sort(key=lambda pair: (-pair[0], pair[1]))
    return [peel.prefix_nodes(index) for _d, index in improving[:max_sets]]


class HeuristicMeasure(DensityMeasure):
    """Wrap a base measure so estimators use the peeling heuristic.

    ``all_densest`` returns the heuristic candidate sets;
    ``maximum_sized_densest`` returns the best peeled subgraph (the
    innermost-core stand-in used by the heuristic NDS of Tables XI/XII).
    """

    def __init__(self, base: DensityMeasure, max_sets: int = 8) -> None:
        self.base = base
        self.max_sets = max_sets
        self.name = f"heuristic-{base.name}"

    def all_densest(self, world: Graph, limit: Optional[int] = None) -> List[NodeSet]:
        sets = heuristic_dense_sets(world, self.base, self.max_sets)
        if limit is not None:
            return sets[:limit]
        return sets

    def one_densest(self, world: Graph) -> Optional[NodeSet]:
        sets = heuristic_dense_sets(world, self.base, 1)
        return sets[0] if sets else None

    def maximum_sized_densest(self, world: Graph) -> Optional[NodeSet]:
        peel = _peel(world, self.base)
        return peel.nodes if peel.density > 0 else None

    def density(self, world: Graph, nodes) -> Fraction:
        return self.base.density(world, nodes)

    def __repr__(self) -> str:
        # a value repr: the session evaluation cache keys measures on
        # repr, so every knob that changes results must appear here
        return f"HeuristicMeasure({self.base!r}, max_sets={self.max_sets})"
