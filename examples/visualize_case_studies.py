#!/usr/bin/env python
"""Regenerate the paper's case-study figures as Graphviz DOT files.

Figs. 6-7 show the Karate Club with the MPDS highlighted and nodes
coloured by ground-truth faction; Figs. 8-9 show the 3-clique MPDS of the
TD and ASD brain networks.  This script recomputes both case studies and
writes DOT files you can render with ``dot -Tpng file.dot -o file.png``
(or paste into any Graphviz viewer).

Run:  python examples/visualize_case_studies.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import CliqueDensity, top_k_mpds
from repro.baselines import expected_densest_subgraph
from repro.datasets import brain_network, karate_club_uncertain
from repro.datasets.brain import roi_lobes
from repro.datasets.karate import KARATE_FACTIONS
from repro.viz import uncertain_to_dot


def karate_figures(out_dir: Path) -> None:
    """Figs. 6-7: MPDS vs EDS on the Karate Club."""
    graph = karate_club_uncertain(seed=2023)
    mpds = top_k_mpds(graph, k=1, theta=160, seed=7).best().nodes
    eds = expected_densest_subgraph(graph).nodes

    for name, highlight in (("fig6a_karate_mpds", mpds), ("fig6b_karate_eds", eds)):
        dot = uncertain_to_dot(
            graph, highlight=highlight, communities=KARATE_FACTIONS
        )
        path = out_dir / f"{name}.dot"
        path.write_text(dot, encoding="utf-8")
        print(f"wrote {path}  (|highlight| = {len(highlight)})")


def brain_figures(out_dir: Path) -> None:
    """Figs. 8-9: 3-clique MPDS of the TD vs ASD brain networks."""
    lobe_of = roi_lobes()
    for group in ("TD", "ASD"):
        graph = brain_network(group, subjects=40, seed=7)
        result = top_k_mpds(
            graph, k=1, theta=48, measure=CliqueDensity(3), seed=7
        )
        nodes = result.best().nodes if result.top else frozenset()
        lobes = {lobe_of[roi] for roi in nodes}
        dot = uncertain_to_dot(graph, highlight=nodes, communities=lobe_of)
        path = out_dir / f"fig8_{group.lower()}_mpds.dot"
        path.write_text(dot, encoding="utf-8")
        print(f"wrote {path}  (MPDS spans lobes {sorted(lobes)} "
              f"over {len(nodes)} ROIs)")


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("case_study_figures")
    out_dir.mkdir(parents=True, exist_ok=True)
    print("== Karate Club (Figs. 6-7) ==")
    karate_figures(out_dir)
    print("\n== Brain networks (Figs. 8-9) ==")
    brain_figures(out_dir)
    print(f"\nrender with:  dot -Tpng {out_dir}/fig6a_karate_mpds.dot -o out.png")


if __name__ == "__main__":
    main()
