"""String-spec registry for samplers and measures.

One grammar, shared by the :class:`repro.session.Query` builder, the CLI
and the experiments tier, so a sampler or density measure can be named in
configuration, on a command line, or over the wire:

``name[:key=value,key=value,...]``

* samplers -- ``"mc"``, ``"lp"``, ``"rss:r=4,max_depth=2"``; a sampler
  spec may additionally carry ``theta=`` and ``seed=`` (query-level
  knobs, split off by :func:`split_sampler_spec` rather than passed to
  the constructor): ``"mc:theta=160,seed=7"``.
* measures -- ``"edge"``, ``"clique:h=3"``, ``"pattern:psi=diamond"``,
  ``"surplus:alpha=0.33"``.

Values are parsed as ``int``, then ``float``, then ``true``/``false``,
falling back to the bare string.  Names are case-insensitive (``"MC"``
and ``"mc"`` are the same sampler, preserving the CLI's historical
spelling).  Unknown names and leftover parameters raise ``ValueError``
with the accepted vocabulary, so a typo fails loudly at parse time
rather than as a silently ignored knob.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from .core.extensions import EdgeSurplus
from .core.heuristics import HeuristicMeasure
from .core.measures import (
    CliqueDensity,
    DensityMeasure,
    EdgeDensity,
    PatternDensity,
)
from .patterns.pattern import Pattern
from .sampling import (
    LazyPropagationSampler,
    MonteCarloSampler,
    RecursiveStratifiedSampler,
)

#: pure-Python sampler constructors by spec name (all take (graph, seed)).
#: A new kind also needs its vectorised twin registered in
#: :data:`repro.engine.estimators.VECTOR_SAMPLER_KINDS` (the session's
#: cached-store path builds twins from that table).
SAMPLER_KINDS = {
    "mc": MonteCarloSampler,
    "lp": LazyPropagationSampler,
    "rss": RecursiveStratifiedSampler,
}

#: named patterns accepted by ``pattern:psi=...`` (and the CLI)
PATTERNS = {
    "2-star": Pattern.two_star,
    "3-star": Pattern.three_star,
    "c3-star": Pattern.c3_star,
    "diamond": Pattern.diamond,
}

SpecParams = Dict[str, Union[int, float, bool, str]]


def _parse_value(text: str) -> Union[int, float, bool, str]:
    """Parse one spec value: int, then float, then bool, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def parse_spec(text: str) -> Tuple[str, SpecParams]:
    """Split ``"name:key=value,..."`` into ``(name, params)``.

    The name is lower-cased; parameters keep their textual order only in
    error messages (the dict is insertion-ordered anyway).  A bare name
    parses to ``(name, {})``.
    """
    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"empty spec {text!r}")
    name, _sep, rest = text.partition(":")
    params: SpecParams = {}
    for item in rest.split(",") if rest else ():
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        if not eq or not key.strip():
            raise ValueError(
                f"malformed parameter {item!r} in spec {text!r} "
                "(expected key=value)"
            )
        params[key.strip()] = _parse_value(value.strip())
    return name.strip().lower(), params


# ----------------------------------------------------------------------
# samplers
# ----------------------------------------------------------------------
def parse_sampler_spec(spec: str) -> Tuple[str, SpecParams]:
    """Parse and validate a sampler spec into ``(kind, params)``."""
    kind, params = parse_spec(spec)
    if kind not in SAMPLER_KINDS:
        raise ValueError(
            f"unknown sampler {kind!r}; known samplers: "
            f"{sorted(SAMPLER_KINDS)}"
        )
    return kind, params


def check_int_knob(
    context: str, knob: str, value, positive: bool = False
) -> Optional[int]:
    """Validate a query-level knob carried in a spec (``theta``/``seed``).

    ``bool`` is rejected explicitly even though it subclasses ``int`` --
    ``theta=true`` silently meaning "sample 1 world" is exactly the
    quiet knob failure this registry exists to prevent.  ``positive``
    additionally requires ``value >= 1``: ``theta=0`` used to parse
    cleanly here and die much later as an internal ``plan_blocks``
    error (``"total must be positive"``), far from the spec that
    caused it.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"{context}: {knob} must be an integer, got {value!r}"
        )
    if positive and value < 1:
        raise ValueError(
            f"{context}: {knob} must be positive, got {value!r}"
        )
    return value


def split_sampler_spec(
    spec: str,
) -> Tuple[str, Optional[int], Optional[int], SpecParams]:
    """Parse a sampler spec, splitting off the query-level knobs.

    Returns ``(kind, theta, seed, constructor_params)`` -- ``theta`` and
    ``seed`` are ``None`` when the spec does not carry them.  This is
    what lets ``--sampler mc:theta=160,seed=7`` configure a whole query
    from one string.
    """
    kind, params = parse_sampler_spec(spec)
    context = f"sampler spec {spec!r}"
    theta = check_int_knob(
        context, "theta", params.pop("theta", None), positive=True
    )
    seed = check_int_knob(context, "seed", params.pop("seed", None))
    return kind, theta, seed, params


def build_sampler(kind: str, graph, seed: Optional[int] = None, **params):
    """Instantiate the pure-Python sampler named by ``kind``.

    ``params`` are constructor keywords (e.g. ``r=4`` for RSS); unknown
    keywords surface as the constructor's own ``TypeError``.
    """
    if kind not in SAMPLER_KINDS:
        raise ValueError(
            f"unknown sampler {kind!r}; known samplers: "
            f"{sorted(SAMPLER_KINDS)}"
        )
    return SAMPLER_KINDS[kind](graph, seed, **params)


def sampler_store_key(
    kind: str,
    params: SpecParams,
    theta: int,
    seed: Optional[int],
    packed: bool = True,
    dynamic: bool = False,
) -> Tuple:
    """Canonical world-store cache key for a (sampler, theta, seed) draw.

    ``packed`` names the store's mask representation (bit-packed uint64
    words vs the boolean byte matrix).  Both replay byte-identical
    worlds, but they are distinct objects with distinct memory
    profiles, so a mixed session must never hand a query built for one
    representation the other -- the key keeps them apart.  ``dynamic``
    keys the per-edge-substream draws (:mod:`repro.delta`) apart from
    the legacy continuous-stream draws: same kind/theta/seed, different
    bytes by design.
    """
    return (kind, tuple(sorted(params.items())), int(theta), seed,
            bool(packed), bool(dynamic))


# ----------------------------------------------------------------------
# measures
# ----------------------------------------------------------------------
def _require_empty(name: str, params: SpecParams) -> None:
    if params:
        raise ValueError(
            f"measure {name!r} does not accept parameters "
            f"{sorted(params)}"
        )


def _build_edge(params: SpecParams) -> DensityMeasure:
    _require_empty("edge", params)
    return EdgeDensity()


def _build_clique(params: SpecParams) -> DensityMeasure:
    h = params.pop("h", 3)
    _require_empty("clique", params)
    return CliqueDensity(h)


def _build_pattern(params: SpecParams) -> DensityMeasure:
    psi = params.pop("psi", None)
    if psi is None:
        psi = params.pop("name", "diamond")
    _require_empty("pattern", params)
    if psi not in PATTERNS:
        raise ValueError(
            f"unknown pattern {psi!r}; known patterns: {sorted(PATTERNS)}"
        )
    return PatternDensity(PATTERNS[psi]())


def _build_surplus(params: SpecParams) -> DensityMeasure:
    alpha = params.pop("alpha", 1 / 3)
    _require_empty("surplus", params)
    return EdgeSurplus(alpha=alpha)


#: measure builders by spec name
MEASURE_KINDS = {
    "edge": _build_edge,
    "clique": _build_clique,
    "pattern": _build_pattern,
    "surplus": _build_surplus,
}


def build_measure(
    spec: Union[str, DensityMeasure, None] = None,
    *,
    heuristic: bool = False,
    **overrides,
) -> DensityMeasure:
    """Resolve a measure spec (or pass an instance through).

    ``spec=None`` yields the default :class:`EdgeDensity`; a
    :class:`DensityMeasure` instance is returned as-is (``overrides``
    are then rejected); a string is parsed against the registry with
    ``overrides`` merged over the spec's own parameters.
    ``heuristic=True`` wraps the result in :class:`HeuristicMeasure`
    (the Section III-C core heuristic), mirroring the CLI flag.
    """
    if spec is None:
        measure: DensityMeasure = EdgeDensity()
        if overrides:
            raise ValueError(
                f"measure parameters {sorted(overrides)} given "
                "without a measure name"
            )
    elif isinstance(spec, DensityMeasure):
        if overrides:
            raise ValueError(
                "cannot override parameters of a DensityMeasure instance"
            )
        measure = spec
    else:
        name, params = parse_spec(spec)
        builder = MEASURE_KINDS.get(name)
        if builder is None:
            raise ValueError(
                f"unknown measure {name!r}; known measures: "
                f"{sorted(MEASURE_KINDS)}"
            )
        params.update(overrides)
        measure = builder(params)
    if heuristic:
        measure = HeuristicMeasure(measure)
    return measure
