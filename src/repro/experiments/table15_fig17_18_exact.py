"""Table XV and Figs. 17-18: approximate versus exact MPDS.

Table XV: running times of the exact (full 2^m possible-world enumeration)
and approximate MPDS methods on small BA / ER synthetic graphs, for edge,
3-clique, and diamond densities.  Expected shape: the exact method is
orders of magnitude slower and grows explosively with m.

Fig. 17: average-by-rank F1 of the approximate top-k against the exact
top-k, k in {5, 10} -- reasonably high everywhere.

Fig. 18: the same graphs with normally distributed edge probabilities of
mean {0.2, 0.5, 0.8}: runtime grows with the mean (denser sampled worlds);
F1 stays reasonable for all distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.exact import exact_top_k_mpds
from ..core.exact_bitmask import bitmask_top_k_mpds
from ..core.measures import CliqueDensity, DensityMeasure, EdgeDensity, PatternDensity
from ..core.mpds import top_k_mpds
from ..graph.generators import (
    assign_normal,
    assign_uniform,
    barabasi_albert,
    erdos_renyi,
)
from ..graph.uncertain import UncertainGraph
from ..metrics.quality import average_f1_by_rank
from ..patterns.pattern import Pattern
from .common import format_table, timed


def synthetic_graphs(seed: int = 2023) -> Dict[str, UncertainGraph]:
    """The paper's four tiny synthetics: BA7, BA9, ER7, ER9.

    Topologies match Table XV's edge counts closely (BA7 m=13 -> here
    m(BA, n=7, m0=2); ER with p tuned); probabilities uniform at random.
    """
    rng = random.Random(seed)
    graphs: Dict[str, UncertainGraph] = {}
    graphs["BA7"] = assign_uniform(barabasi_albert(7, 2, rng), rng)
    graphs["BA9"] = assign_uniform(barabasi_albert(9, 3, rng), rng)
    graphs["ER7"] = assign_uniform(erdos_renyi(7, 0.9, rng), rng)
    graphs["ER9"] = assign_uniform(erdos_renyi(9, 0.55, rng), rng)
    return graphs


def default_measures() -> Dict[str, DensityMeasure]:
    """Edge, 3-clique, and diamond (the Table XV columns)."""
    return {
        "edge": EdgeDensity(),
        "3-clique": CliqueDensity(3),
        "diamond": PatternDensity(Pattern.diamond()),
    }


#: exact engines selectable in :func:`run_table15`.  "naive" materialises
#: every possible world and runs the flow-based enumeration in it (the
#: paper's exact method, literally); "bitmask" computes the identical
#: answer via the vectorised solver (repro.core.exact_bitmask) -- still a
#: full 2^m enumeration, so the exponential blow-up the paper reports
#: remains visible, just with a smaller constant.
EXACT_ENGINES = {
    "naive": exact_top_k_mpds,
    "bitmask": bitmask_top_k_mpds,
}


@dataclass
class ExactVsApproxRow:
    """One (graph, notion) row of Table XV."""

    graph: str
    m: int
    notion: str
    exact_seconds: float
    approx_seconds: float
    engine: str = "naive"


@dataclass
class F1Row:
    """One (graph, notion, k) point of Fig. 17 / Fig. 18."""

    graph: str
    notion: str
    k: int
    f1: float


def run_table15(
    graphs: Optional[Dict[str, UncertainGraph]] = None,
    measures: Optional[Dict[str, DensityMeasure]] = None,
    theta: int = 100,
    seed: int = 7,
    exact_engine: str = "naive",
) -> List[ExactVsApproxRow]:
    """Time the exact and approximate MPDS on the tiny synthetics.

    ``exact_engine`` selects between the per-world reference solver
    ("naive", feasible up to ~2^14 worlds) and the vectorised bitmask
    solver ("bitmask", feasible to ~2^24 worlds); see ``EXACT_ENGINES``.
    """
    if exact_engine not in EXACT_ENGINES:
        raise ValueError(
            f"exact_engine must be one of {sorted(EXACT_ENGINES)}, "
            f"got {exact_engine!r}"
        )
    exact_solver = EXACT_ENGINES[exact_engine]
    graphs = graphs or synthetic_graphs()
    measures = measures or default_measures()
    rows: List[ExactVsApproxRow] = []
    for name, graph in graphs.items():
        for notion, measure in measures.items():
            _exact, exact_time = timed(
                lambda: exact_solver(graph, k=1, measure=measure)
            )
            _approx, approx_time = timed(
                lambda: top_k_mpds(graph, k=1, theta=theta, measure=measure, seed=seed)
            )
            rows.append(ExactVsApproxRow(
                graph=name,
                m=graph.number_of_edges(),
                notion=notion,
                exact_seconds=exact_time,
                approx_seconds=approx_time,
                engine=exact_engine,
            ))
    return rows


def run_fig17(
    graphs: Optional[Dict[str, UncertainGraph]] = None,
    measures: Optional[Dict[str, DensityMeasure]] = None,
    ks: Sequence[int] = (5, 10),
    theta: int = 400,
    seed: int = 7,
) -> List[F1Row]:
    """F1 of the approximate top-k against the exact top-k."""
    graphs = graphs or synthetic_graphs()
    measures = measures or default_measures()
    rows: List[F1Row] = []
    k_max = max(ks)
    for name, graph in graphs.items():
        for notion, measure in measures.items():
            # exact ground truth once per (graph, measure) via the
            # vectorised solver, then sliced per k
            exact = bitmask_top_k_mpds(graph, k=k_max, measure=measure)
            approx = top_k_mpds(
                graph, k=k_max, theta=theta, measure=measure, seed=seed
            )
            for k in ks:
                rows.append(F1Row(
                    graph=name,
                    notion=notion,
                    k=k,
                    f1=average_f1_by_rank(
                        approx.top_sets()[:k], exact.top_sets()[:k]
                    ),
                ))
    return rows


@dataclass
class EdgeProbabilityRow:
    """One mean-probability point of Fig. 18."""

    mean: float
    approx_seconds: float
    f1_by_k: Dict[int, float]


def run_fig18(
    means: Sequence[float] = (0.2, 0.5, 0.8),
    ks: Sequence[int] = (1, 5, 10),
    theta: int = 400,
    seed: int = 2023,
) -> List[EdgeProbabilityRow]:
    """Vary normal edge-probability means on ER7 (runtime + F1)."""
    rng = random.Random(seed)
    topology = erdos_renyi(7, 0.9, rng)
    rows: List[EdgeProbabilityRow] = []
    for mean in means:
        graph = assign_normal(topology, mean, 0.1, rng)
        approx, seconds = timed(
            lambda: top_k_mpds(graph, k=max(ks), theta=theta, seed=seed)
        )
        exact = bitmask_top_k_mpds(graph, k=max(ks))
        f1_by_k: Dict[int, float] = {}
        for k in ks:
            f1_by_k[k] = average_f1_by_rank(
                approx.top_sets()[:k], exact.top_sets()[:k]
            )
        rows.append(EdgeProbabilityRow(mean, seconds, f1_by_k))
    return rows


def format_table15(rows: List[ExactVsApproxRow]) -> str:
    """Render Table XV."""
    headers = ["Graph", "m", "Notion", "Engine", "Exact(s)", "Ours(s)"]
    body = [
        [r.graph, r.m, r.notion, r.engine, r.exact_seconds, r.approx_seconds]
        for r in rows
    ]
    return format_table(headers, body)


def format_fig17(rows: List[F1Row]) -> str:
    """Render the Fig. 17 series."""
    headers = ["Graph", "Notion", "k", "AvgF1"]
    body = [[r.graph, r.notion, r.k, r.f1] for r in rows]
    return format_table(headers, body)


def format_fig18(rows: List[EdgeProbabilityRow]) -> str:
    """Render the Fig. 18 series."""
    ks = sorted(rows[0].f1_by_k) if rows else []
    headers = ["Mean", "Time(s)"] + [f"F1@k={k}" for k in ks]
    body = [
        [r.mean, r.approx_seconds] + [r.f1_by_k[k] for k in ks] for r in rows
    ]
    return format_table(headers, body)
