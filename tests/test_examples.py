"""Smoke tests: the example scripts run end to end.

Only the two fast examples are executed (the brain-network and pattern
examples take minutes and are exercised through their underlying drivers
in test_experiments.py instead).
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "['B', 'D']" in out
        assert "Theorem 2" in out

    def test_community_detection(self, capsys):
        out = run_example("community_detection.py", capsys)
        assert "purity" in out
        assert "DDS" in out

    def test_solver_zoo(self, capsys):
        out = run_example("solver_zoo.py", capsys)
        assert out.count("match: True") >= 3
        assert "Parallel MPDS" in out

    def test_quasi_cliques(self, capsys):
        out = run_example("quasi_cliques.py", capsys)
        assert "recovers exactly the planted set" in out
        assert "[0, 1, 2, 3, 4]" in out

    def test_what_if_analysis(self, capsys):
        out = run_example("what_if_analysis.py", capsys)
        assert "decomposition is exact" in out
        assert "0.4200" in out and "0.7000" in out

    @pytest.mark.parametrize(
        "name",
        ["brain_networks.py", "pattern_densities.py",
         "sampling_strategies.py", "visualize_case_studies.py"],
    )
    def test_slow_examples_importable(self, name):
        """The slow examples must at least compile and expose main()."""
        source = (EXAMPLES / name).read_text(encoding="utf-8")
        code = compile(source, name, "exec")
        namespace: dict = {"__name__": "not_main"}
        exec(code, namespace)
        assert callable(namespace["main"])
