"""Wiring of the vectorised engine into Algorithm 1 / Algorithm 5.

The estimator loops in :mod:`repro.core.mpds` / :mod:`repro.core.nds`
iterate ``(world, weight)`` pairs and query a :class:`DensityMeasure`.
The vectorised path keeps those loops intact and swaps the two
collaborators:

* the sampler becomes :class:`VectorizedMonteCarloSampler`, yielding
  :class:`MaskWorld` views drawn from one numpy Bernoulli batch;
* the measure becomes :class:`EngineMeasure`, which answers edge-density
  queries straight from the mask via the array kernels + Dinkelbach
  stage, and falls back to materialising the world (``MaskWorld.to_graph``)
  for every other measure -- so clique/pattern densities and custom
  measures keep working unchanged.

Because the batch sampler replays the pure-Python sampler's exact
Bernoulli stream and the fast edge-density path provably returns the
same candidate sets, both engines produce identical estimates for the
same seed.  Worlds whose enumeration hits ``per_world_limit`` fall back
to the python path so even the truncated subset matches byte-for-byte.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

import numpy as np

from ..core.measures import DensityMeasure, EdgeDensity, NodeSet
from ..dense.all_densest import (
    _Prepared,
    enumerate_independent_sets,
    prepare_from_bound,
)
from ..sampling.monte_carlo import MonteCarloSampler
from .indexed import MaskWorld
from .kernels import batched_greedypp, k_core_alive
from .sampler import VectorizedMonteCarloSampler

ENGINES = ("auto", "python", "vectorized")

#: batched Greedy++ rounds used to seed the Dinkelbach stage; more rounds
#: tighten the bound (fewer flows) at the cost of extra array passes
DEFAULT_GPP_ROUNDS = 2


def resolve_engine(engine: str, sampler, measure: DensityMeasure) -> str:
    """Decide which engine a ``top_k_mpds`` / ``top_k_nds`` call uses.

    ``auto`` picks the vectorised engine exactly when it is a guaranteed
    drop-in: Monte Carlo sampling (the default sampler, an explicit
    :class:`MonteCarloSampler`, or an explicit vectorised one) combined
    with plain :class:`EdgeDensity`.  ``vectorized`` forces it for any
    measure (non-edge measures run through the mask->Graph adapter) but
    still requires Monte Carlo -- LP and RSS carry cross-world state that
    cannot be batch-drawn.  ``python`` always uses the original path.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    monte_carlo = sampler is None or isinstance(
        sampler, (MonteCarloSampler, VectorizedMonteCarloSampler)
    )
    if engine == "python":
        return "python"
    if engine == "vectorized":
        if not monte_carlo:
            raise ValueError(
                "engine='vectorized' supports Monte Carlo sampling only; "
                f"got sampler {type(sampler).__name__}"
            )
        return "vectorized"
    if monte_carlo and type(measure) is EdgeDensity:
        return "vectorized"
    return "python"


def vectorized_sampler(
    graph, sampler, seed: Optional[int]
) -> VectorizedMonteCarloSampler:
    """Build the batch sampler mirroring what the python path would use.

    With no explicit sampler this replicates ``MonteCarloSampler(graph,
    seed)``; an explicit pure-Python Monte Carlo sampler is adopted
    mid-stream (same worlds it would have produced next).
    """
    if sampler is None:
        return VectorizedMonteCarloSampler(graph, seed)
    if isinstance(sampler, VectorizedMonteCarloSampler):
        return sampler
    return VectorizedMonteCarloSampler.from_monte_carlo(sampler)


class EngineMeasure(DensityMeasure):
    """Adapter measure answering :class:`MaskWorld` queries.

    Edge-density queries run mask-native: batched Greedy++ bounds the
    density, a k-core shrink drops the sparse periphery, and
    :func:`prepare_from_bound` finishes exactly.  All other measures (and
    the tie-breaking-sensitive ``one_densest``) delegate to the wrapped
    measure on the materialised world, which is byte-identical to the
    world the python engine would have sampled.
    """

    def __init__(
        self,
        inner: DensityMeasure,
        gpp_rounds: int = DEFAULT_GPP_ROUNDS,
    ) -> None:
        self.inner = inner
        self.gpp_rounds = gpp_rounds
        self.name = inner.name
        self._fast = type(inner) is EdgeDensity

    # ------------------------------------------------------------------
    # mask-native edge-density pipeline
    # ------------------------------------------------------------------
    def _prepared(self, world: MaskWorld) -> Optional[_Prepared]:
        """Exact residual structure of a mask world, or None if edgeless."""
        if not world.mask.any():
            return None
        indexed = world.indexed
        num, den, _alive, _history = batched_greedypp(
            indexed, world.mask, self.gpp_rounds
        )
        if num <= 0:  # pragma: no cover - edges imply a positive bound
            return None
        bound = Fraction(num, den)
        k = -(-bound.numerator // bound.denominator)
        node_alive, edge_alive = k_core_alive(indexed, world.mask, k)
        if not edge_alive.any():  # pragma: no cover - see prepare_from_bound
            node_alive = np.ones(indexed.n, dtype=bool)
            edge_alive = world.mask
        core = indexed.subworld_graph(edge_alive, node_alive)
        return prepare_from_bound(core, bound)

    def all_densest(
        self, world: MaskWorld, limit: Optional[int] = None
    ) -> List[NodeSet]:
        if self._fast:
            prepared = self._prepared(world)
            if prepared is None or prepared.structure is None:
                return []
            densest = list(
                enumerate_independent_sets(prepared.structure, limit)
            )
            if limit is not None and len(densest) >= limit:
                # enumeration (possibly) truncated: within-world order is
                # not part of prepare_from_bound's contract, so replay the
                # python path on the identical materialised world to keep
                # the *truncated subset* byte-identical across engines
                return self.inner.all_densest(world.to_graph(), limit)
            return densest
        return self.inner.all_densest(world.to_graph(), limit)

    def one_densest(self, world: MaskWorld) -> Optional[NodeSet]:
        # tie-breaking must match the python engine's binary search, so
        # this always runs on the materialised (identical) world
        return self.inner.one_densest(world.to_graph())

    def maximum_sized_densest(self, world: MaskWorld) -> Optional[NodeSet]:
        if self._fast:
            prepared = self._prepared(world)
            if prepared is None or prepared.density <= 0:
                return None
            return prepared.maximal_nodes
        return self.inner.maximum_sized_densest(world.to_graph())

    def density(self, world: MaskWorld, nodes) -> Fraction:
        return self.inner.density(world.to_graph(), nodes)

    def __repr__(self) -> str:
        return f"EngineMeasure({self.inner!r})"
