"""Baseline persistence: suppress accepted legacy findings.

The committed ``analysis/baseline.json`` maps finding fingerprints to a
human-readable record of what was accepted.  CI gates on zero findings
*outside* the baseline, so new hazards fail the build while the accepted
legacy set (documented, deliberate patterns) stays quiet.  Regenerate
with ``repro-lint --write-baseline`` after triaging any new findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from .core import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Dict[str, dict]:
    """Return fingerprint -> accepted-finding record (empty if missing)."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"malformed baseline file: {path}")
    records = {}
    for entry in data["findings"]:
        records[entry["fingerprint"]] = entry
    return records


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Persist every finding as accepted (sorted for stable diffs)."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "checker": f.checker,
            "path": f.path,
            "line": f.line,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.checker))
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: List[Finding], baseline: Dict[str, dict]
) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split findings into (new, suppressed); also report stale entries.

    A baseline entry is *stale* when no current finding matches its
    fingerprint -- usually because the flagged code was fixed.  Stale
    entries never fail the run; ``--write-baseline`` prunes them.
    """
    new: List[Finding] = []
    suppressed: List[Finding] = []
    seen = set()
    for f in findings:
        if f.fingerprint in baseline:
            suppressed.append(f)
            seen.add(f.fingerprint)
        else:
            new.append(f)
    stale = [
        entry
        for fingerprint, entry in baseline.items()
        if fingerprint not in seen
    ]
    return new, suppressed, stale
