"""Integration tests for Algorithm 1 (top-k MPDS) against exact solvers."""

from __future__ import annotations

import math

import pytest

from repro.core.exact import exact_candidate_probabilities, exact_top_k_mpds
from repro.core.measures import CliqueDensity, EdgeDensity, PatternDensity
from repro.core.mpds import estimate_tau, top_k_mpds
from repro.datasets.paper_examples import figure1_graph
from repro.metrics.quality import average_f1_by_rank
from repro.patterns.pattern import Pattern
from repro.sampling import LazyPropagationSampler, RecursiveStratifiedSampler

from .conftest import random_uncertain_graph


class TestOnFigure1:
    def test_top1_is_bd(self, figure1):
        result = top_k_mpds(figure1, k=1, theta=3000, seed=11)
        assert result.best().nodes == frozenset({"B", "D"})
        assert abs(result.best().probability - 0.42) < 0.03

    def test_top3_matches_exact_ranking(self, figure1):
        exact = exact_top_k_mpds(figure1, k=3)
        approx = top_k_mpds(figure1, k=3, theta=5000, seed=13)
        assert approx.top_sets() == exact.top_sets()

    def test_estimates_converge_to_exact(self, figure1):
        exact = exact_candidate_probabilities(figure1)
        approx = top_k_mpds(figure1, k=6, theta=6000, seed=17)
        for nodes, tau in exact.items():
            assert abs(approx.candidates.get(nodes, 0.0) - tau) < 0.03

    def test_estimate_tau_helper(self, figure1):
        tau = estimate_tau(figure1, frozenset({"B", "D"}), theta=3000, seed=19)
        assert abs(tau - 0.42) < 0.03


class TestSamplersAgree:
    @pytest.mark.parametrize(
        "sampler_cls", [LazyPropagationSampler, RecursiveStratifiedSampler]
    )
    def test_alternative_samplers_find_same_top1(self, figure1, sampler_cls):
        sampler = sampler_cls(figure1, seed=23)
        result = top_k_mpds(figure1, k=1, theta=3000, sampler=sampler)
        assert result.best().nodes == frozenset({"B", "D"})
        assert abs(result.best().probability - 0.42) < 0.05


class TestDensityVariants:
    def test_clique_mpds_on_random(self, rng):
        graph = random_uncertain_graph(rng, 6, 0.7, low=0.3, high=0.95)
        measure = CliqueDensity(3)
        exact = exact_top_k_mpds(graph, k=1, measure=measure)
        if not exact.top:
            pytest.skip("no 3-clique appears in any world")
        approx = top_k_mpds(graph, k=1, theta=2500, measure=measure, seed=29)
        assert approx.best().nodes == exact.best().nodes

    def test_pattern_mpds_on_random(self, rng):
        graph = random_uncertain_graph(rng, 5, 0.8, low=0.4, high=0.95)
        measure = PatternDensity(Pattern.two_star())
        exact = exact_top_k_mpds(graph, k=1, measure=measure)
        if not exact.top:
            pytest.skip("no 2-star appears in any world")
        approx = top_k_mpds(graph, k=1, theta=2500, measure=measure, seed=31)
        assert approx.best().nodes == exact.best().nodes

    def test_f1_reasonable_on_random_graphs(self, rng):
        """The Fig. 17 protocol on one random graph: F1 should be high."""
        graph = random_uncertain_graph(rng, 7, 0.6, low=0.2, high=0.9)
        exact = exact_top_k_mpds(graph, k=5)
        approx = top_k_mpds(graph, k=5, theta=3000, seed=37)
        f1 = average_f1_by_rank(approx.top_sets(), exact.top_sets())
        assert f1 > 0.6


class TestAblationsAndEdgeCases:
    def test_all_vs_one_enumeration(self, figure1):
        """One-densest-per-world underestimates (Table IX's effect)."""
        all_result = top_k_mpds(figure1, k=6, theta=4000, seed=41,
                                enumerate_all=True)
        one_result = top_k_mpds(figure1, k=6, theta=4000, seed=41,
                                enumerate_all=False)
        total_all = sum(s.probability for s in all_result.top)
        total_one = sum(s.probability for s in one_result.top)
        assert total_one <= total_all + 1e-9

    def test_densest_counts_recorded(self, figure1):
        result = top_k_mpds(figure1, k=1, theta=50, seed=43)
        assert len(result.densest_counts) == 50
        assert all(c >= 0 for c in result.densest_counts)

    def test_invalid_k(self, figure1):
        with pytest.raises(ValueError):
            top_k_mpds(figure1, k=0, theta=10)

    def test_estimates_are_probabilities(self, rng):
        graph = random_uncertain_graph(rng, 6, 0.5)
        result = top_k_mpds(graph, k=3, theta=200, seed=47)
        for scored in result.top:
            assert 0.0 <= scored.probability <= 1.0 + 1e-9

    def test_empty_worlds_tolerated(self):
        """Very low probabilities: many empty worlds, no crash."""
        from repro.graph.uncertain import UncertainGraph
        ug = UncertainGraph.from_weighted_edges([(1, 2, 0.01), (2, 3, 0.01)])
        result = top_k_mpds(ug, k=1, theta=100, seed=53)
        assert result.theta == 100
