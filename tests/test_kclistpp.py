"""Tests for the kClist++-style Frank-Wolfe clique-density solver."""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.dense.clique_density import maximum_clique_density
from repro.dense.kclistpp import kclistpp_densest
from repro.graph.graph import Graph

from .conftest import random_graph


class TestKClistPP:
    def test_no_cliques(self):
        graph = Graph.from_edges([(1, 2), (3, 4)])
        result = kclistpp_densest(graph, 3)
        assert result.density == 0
        assert result.nodes == frozenset()

    def test_single_triangle(self, triangle_graph):
        result = kclistpp_densest(triangle_graph, 3, iterations=8)
        assert result.density == Fraction(1, 3)
        assert result.nodes == frozenset({1, 2, 3})

    def test_k5_exact(self):
        k5 = Graph.from_edges(itertools.combinations(range(5), 2))
        result = kclistpp_densest(k5, 3, iterations=16)
        assert result.density == Fraction(10, 5)
        assert result.nodes == frozenset(range(5))

    def test_lower_bound_property(self, rng):
        """The returned density is always achieved and never exceeds rho*."""
        for _ in range(10):
            graph = random_graph(rng, 8, 0.55)
            result = kclistpp_densest(graph, 3, iterations=12)
            optimum = maximum_clique_density(graph, 3)
            assert result.density <= optimum
            if result.nodes:
                from repro.cliques.enumeration import count_cliques
                induced = graph.subgraph(result.nodes)
                achieved = Fraction(
                    count_cliques(induced, 3), induced.number_of_nodes()
                )
                assert achieved == result.density

    def test_converges_with_iterations(self, rng):
        """More Frank-Wolfe rounds never hurt, and usually reach rho*."""
        hits = 0
        for _ in range(8):
            graph = random_graph(rng, 8, 0.6)
            optimum = maximum_clique_density(graph, 3)
            if optimum == 0:
                continue
            result = kclistpp_densest(graph, 3, iterations=64)
            if result.density == optimum:
                hits += 1
        assert hits >= 5  # the paper reports T* ~ 11 suffices in practice
