"""Charikar's LP relaxation for densest subgraphs ([2]; ablation substrate).

The paper's exact engines are flow-based (Goldberg [1] for edge density,
Algorithm 6 for cliques, Algorithm 7 for patterns).  Charikar [2] showed the
same optimum is the value of a small linear program; this module implements
that LP as an independent cross-check and ablation:

    maximize    sum_I y_I                 (one variable per instance I)
    subject to  y_I <= x_v                for every node v in instance I
                sum_v x_v <= 1
                x, y >= 0

where an *instance* is an edge (edge density), an h-clique (h-clique
density, Tsourakakis [19]), or a pattern occurrence (Fang et al. [5]).  The
LP optimum equals ``rho* = max_U mu(U) / |U|``, and a densest subgraph can
be read off any optimal solution as a super-level set ``{v : x_v >= r}``.

Solving uses ``scipy.optimize.linprog`` (HiGHS); scipy is an *optional*
dependency -- the flow engines remain the library's primary, dependency-free
path.  Because the LP solver returns floats, the optimum is rounded to the
nearest rational with denominator at most ``n`` (densities are such
rationals) and then *verified* by recomputing the density of the extracted
node set exactly; a mismatch raises, it never silently returns a float.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..cliques.enumeration import enumerate_cliques
from ..graph.graph import Graph, Node
from ..patterns.matching import enumerate_instances, instance_nodes
from ..patterns.pattern import Pattern


@dataclass(frozen=True)
class LPDensestResult:
    """Exact densest-subgraph answer recovered from the LP optimum.

    ``density`` is the verified rational optimum; ``nodes`` a node set
    achieving it; ``lp_value`` the raw (float) LP objective before
    rationalisation.
    """

    density: Fraction
    nodes: FrozenSet[Node]
    lp_value: float


def _require_scipy():
    try:
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy present in CI
        raise ImportError(
            "repro.dense.lp requires scipy; install it or use the "
            "flow-based engines in repro.dense instead"
        ) from exc
    return linprog


def _instance_density(
    instances: Sequence[Tuple[Node, ...]], nodes: FrozenSet[Node]
) -> Fraction:
    """Exact density of ``nodes`` w.r.t. an instance list: mu(U) / |U|."""
    if not nodes:
        return Fraction(0)
    count = sum(1 for instance in instances if nodes.issuperset(instance))
    return Fraction(count, len(nodes))


def lp_densest_from_instances(
    graph: Graph, instances: Sequence[Tuple[Node, ...]]
) -> LPDensestResult:
    """Solve Charikar's LP over an explicit instance hypergraph.

    ``instances`` is a sequence of node tuples (edges, cliques or pattern
    occurrences); the LP maximises the instance count per node.  Returns a
    verified rational optimum; on an instance-free graph the density is 0.
    """
    nodes = graph.nodes()
    if not instances or not nodes:
        return LPDensestResult(Fraction(0), frozenset(), 0.0)
    for instance in instances:
        for member in instance:
            if member not in graph:
                raise ValueError(f"instance node {member!r} is not in the graph")
    linprog = _require_scipy()
    node_index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    t = len(instances)
    # variables: x_0..x_{n-1}, y_0..y_{t-1}; maximise sum y  <=>  minimise -sum y
    objective = [0.0] * n + [-1.0] * t
    rows: List[List[float]] = []
    bounds_rhs: List[float] = []
    for j, instance in enumerate(instances):
        # dict.fromkeys dedups in instance order: constraint-row order must
        # not depend on the hash-randomized set order of str node labels
        for member in dict.fromkeys(instance):
            # y_j - x_member <= 0
            row = [0.0] * (n + t)
            row[node_index[member]] = -1.0
            row[n + j] = 1.0
            rows.append(row)
            bounds_rhs.append(0.0)
    mass = [1.0] * n + [0.0] * t
    rows.append(mass)
    bounds_rhs.append(1.0)
    result = linprog(
        objective,
        A_ub=rows,
        b_ub=bounds_rhs,
        bounds=[(0.0, None)] * (n + t),
        method="highs",
    )
    if not result.success:  # pragma: no cover - HiGHS is robust on these LPs
        raise RuntimeError(f"LP solver failed: {result.message}")
    lp_value = -float(result.fun)
    x = result.x[:n]
    best_density = Fraction(0)
    best_nodes: FrozenSet[Node] = frozenset()
    # sweep super-level sets of x; at least one is a densest subgraph
    order = sorted(range(n), key=lambda i: -x[i])
    chosen: set = set()
    for i in order:
        if x[i] <= 1e-12:
            break
        chosen.add(nodes[i])
        level_set = frozenset(chosen)
        density = _instance_density(instances, level_set)
        if density > best_density:
            best_density = density
            best_nodes = level_set
    expected = Fraction(lp_value).limit_denominator(max(n, 1))
    if best_density != expected:
        raise AssertionError(
            f"LP level-set extraction disagrees with the LP optimum: "
            f"{best_density} != {expected} (raw {lp_value})"
        )
    return LPDensestResult(best_density, best_nodes, lp_value)


def lp_edge_densest(graph: Graph) -> LPDensestResult:
    """Exact edge-densest subgraph via Charikar's LP [2]."""
    return lp_densest_from_instances(graph, [tuple(e) for e in graph.edges()])


def lp_clique_densest(graph: Graph, h: int) -> LPDensestResult:
    """Exact h-clique-densest subgraph via the k-clique LP [19]."""
    if h < 2:
        raise ValueError(f"h must be >= 2, got {h}")
    return lp_densest_from_instances(graph, list(enumerate_cliques(graph, h)))


def lp_pattern_densest(graph: Graph, pattern: Pattern) -> LPDensestResult:
    """Exact pattern-densest subgraph via the instance LP ([5] LP view)."""
    instances = [
        tuple(instance_nodes(inst)) for inst in enumerate_instances(graph, pattern)
    ]
    return lp_densest_from_instances(graph, instances)


def lp_maximum_density(
    graph: Graph,
    h: Optional[int] = None,
    pattern: Optional[Pattern] = None,
) -> Fraction:
    """Return the verified rational optimum density for the chosen notion.

    With neither ``h`` nor ``pattern``: edge density; with ``h``: h-clique
    density; with ``pattern``: pattern density.  ``h`` and ``pattern`` are
    mutually exclusive.
    """
    if h is not None and pattern is not None:
        raise ValueError("pass at most one of h and pattern")
    if h is not None:
        return lp_clique_densest(graph, h).density
    if pattern is not None:
        return lp_pattern_densest(graph, pattern).density
    return lp_edge_densest(graph).density
