"""Packed-substrate bench: bit-packed vs boolean world masks at scale.

ROADMAP item 2's acceptance workload: sample ``theta`` worlds of a
>=100k-edge uncertain graph (``repro.datasets.make_scale_benchmark_graph``,
real-dataset scale) and hold them as

* the historical **unpacked** boolean byte matrix (``theta x m`` bytes),
* the **packed** uint64 word matrix
  (:class:`repro.engine.bitset.PackedMasks`, ~8x smaller), and
* a **budgeted** packed store (``memory_budget=`` a stated byte cap)
  that spills its word blocks over the <=64-block chunk grid and streams
  them back in as replay touches them.

Asserted on every run:

* the packed matrix unpacks **byte-identical** to the unpacked store's
  masks, world by world (the bench-scale echo of
  ``tests/test_bitset_differential.py``);
* the budgeted store streams the same bytes while its peak resident
  mask memory stays **inside the stated budget**;
* the packed representation is at least **7x** smaller than the boolean
  matrix (exactly 8x when ``m`` is a multiple of 64).

The table (mask memory, build/replay/kernel runtimes, budget telemetry)
is archived as ``benchmarks/results/bench_bitset_scale.txt`` on every
run (pytest or ``python -m benchmarks.bench_bitset_scale [--tiny]``);
CI uploads it as a build artifact.  The committed copy records the
full-scale run.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.datasets import make_scale_benchmark_graph
from repro.engine.kernels import batch_world_edge_counts, edge_world_counts
from repro.engine.worldstore import WorldStore
from repro.experiments.common import format_table

from .conftest import emit

#: full scale: >=100k edges (the acceptance workload)
BENCH_N = 30_000
BENCH_M = 120_000
BENCH_THETA = 64
BENCH_BUDGET = 256 * 1024  # bytes of resident packed mask blocks

BENCH_SEED = 2023
DRAW_SEED = 7

#: pytest-scale (the full workload runs via ``python -m``)
PYTEST_N = 2_000
PYTEST_M = 8_000
PYTEST_THETA = 32
PYTEST_BUDGET = 16 * 1024

#: --tiny smoke scale (CI-friendly; seconds, not minutes)
TINY_N = 600
TINY_M = 2_400
TINY_THETA = 16
TINY_BUDGET = 2 * 1024


def _mib(nbytes: int) -> str:
    return f"{nbytes / (1024 * 1024):.3f}"


def run_bitset_scale_benchmark(
    n: int = BENCH_N,
    m: int = BENCH_M,
    theta: int = BENCH_THETA,
    budget: int = BENCH_BUDGET,
    seed: int = BENCH_SEED,
    draw_seed: int = DRAW_SEED,
) -> dict:
    """Build packed/unpacked/budgeted stores; assert identity + budget."""
    start = time.perf_counter()
    graph = make_scale_benchmark_graph(n=n, m=m, seed=seed)
    build_graph_time = time.perf_counter() - start

    start = time.perf_counter()
    unpacked = WorldStore.from_sampler(
        graph, None, theta, seed=draw_seed, packed=False
    )
    unpacked_time = time.perf_counter() - start

    start = time.perf_counter()
    packed = WorldStore.from_sampler(
        graph, None, theta, seed=draw_seed, packed=True
    )
    packed_time = time.perf_counter() - start

    # byte-identity: the packed words unpack to the exact byte matrix
    reference = unpacked.masks
    assert np.array_equal(packed.mask_matrix().to_bool(), reference), (
        "packed store diverged from the unpacked byte matrix"
    )

    ratio = unpacked.mask_nbytes / packed.mask_nbytes
    assert ratio >= 7.0, (
        f"packed masks only {ratio:.2f}x smaller; expected ~8x"
    )

    # cross-world kernel straight off the words vs off the bytes
    start = time.perf_counter()
    packed_counts = edge_world_counts(packed.mask_matrix())
    packed_kernel_time = time.perf_counter() - start
    start = time.perf_counter()
    unpacked_counts = edge_world_counts(reference)
    unpacked_kernel_time = time.perf_counter() - start
    assert np.array_equal(packed_counts, unpacked_counts)
    assert np.array_equal(
        batch_world_edge_counts(packed.mask_matrix()),
        reference.sum(axis=1, dtype=np.int64),
    )

    # budgeted store: stream world by world, byte-identical at every
    # step, peak resident mask bytes inside the stated budget
    budgeted = WorldStore.from_sampler(
        graph, None, theta, seed=draw_seed, packed=True,
        memory_budget=budget,
    )
    start = time.perf_counter()
    for i, weighted in enumerate(budgeted.mask_worlds()):
        assert np.array_equal(weighted.graph.mask, reference[i]), (
            f"budgeted replay diverged at world {i}"
        )
    stream_time = time.perf_counter() - start
    pager = budgeted._pager
    peak = budgeted.peak_mask_bytes
    assert peak <= budget, (
        f"budgeted store peaked at {peak} bytes, over the {budget} budget"
    )
    budgeted.close()

    rows = [
        [
            "unpacked store (bool bytes)",
            _mib(unpacked.mask_nbytes),
            f"{unpacked_time:.3f}",
            "baseline",
        ],
        [
            "packed store (uint64 words)",
            _mib(packed.mask_nbytes),
            f"{packed_time:.3f}",
            f"{ratio:.2f}x less mask memory",
        ],
        [
            f"budgeted store (cap {budget // 1024} KiB)",
            _mib(peak),
            f"{stream_time:.3f}",
            f"peak {peak} B <= budget {budget} B",
        ],
        [
            "edge_world_counts kernel",
            "-",
            f"{packed_kernel_time:.3f}",
            f"vs {unpacked_kernel_time:.3f}s unpacked (equal output)",
        ],
    ]
    table = format_table(
        ["Substrate", "Mask MiB", "Time(s)", "Notes"], rows
    )
    note = (
        f"graph: n={n} m={m} (>=100k-edge at full scale) theta={theta} "
        f"seed={seed} draw_seed={draw_seed}; graph build "
        f"{build_graph_time:.3f}s\n"
        f"budget telemetry: {pager.block_loads} block loads, "
        f"{pager.block_evictions} evictions over "
        f"{len(pager.blocks)} grid blocks\n"
        "byte-identity packed vs unpacked asserted world-by-world; "
        "peak <= budget asserted."
    )
    return {
        "table": table + "\n" + note,
        "ratio": ratio,
        "peak": peak,
        "budget": budget,
    }


def test_bitset_scale(benchmark):
    result = benchmark.pedantic(
        lambda: run_bitset_scale_benchmark(
            n=PYTEST_N, m=PYTEST_M, theta=PYTEST_THETA, budget=PYTEST_BUDGET
        ),
        rounds=1,
        iterations=1,
    )
    emit("bench_bitset_scale", result["table"])
    assert result["ratio"] >= 7.0
    assert result["peak"] <= result["budget"]


def main(argv=None) -> int:
    """Standalone entry: ``python -m benchmarks.bench_bitset_scale [--tiny]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-scale run (CI-friendly; seconds, not minutes)",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        result = run_bitset_scale_benchmark(
            n=TINY_N, m=TINY_M, theta=TINY_THETA, budget=TINY_BUDGET
        )
    else:
        result = run_bitset_scale_benchmark()
    emit("bench_bitset_scale", result["table"])
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
