"""Dynamic-graph streaming bench: interleaved updates and warm queries.

The maintenance workload :mod:`repro.delta` exists for: a long-lived
:class:`repro.session.Session` absorbing a stream of single-edge
probability updates between warm top-k queries.  Each update must cost
surgery, not a resample -- exactly **one** mask column re-drawn out of
``m`` (asserted, via the update summary), only the evaluation records
of worlds that actually flipped re-evaluated on the next query hit --
and the post-update answer must stay **byte-identical** to a
from-scratch dynamic session built on the mutated graph, at every step
(asserted).

Measured on the 500-node G(n, p) bench graph of ``bench_engine.py`` at
``theta=160``:

* **cold first query** -- the one dynamic draw the session ever pays;
* **update** -- ``Session.update`` with a single-edge probability bump
  (one column re-drawn, stale evaluations marked at world granularity);
* **warm post-update query** -- lazily patches only the flipped worlds;
* **from-scratch rebuild** -- a cold session on the mutated graph (the
  price of *not* having incremental maintenance), the differential
  reference every step is checked against.

The table is archived as ``benchmarks/results/bench_dynamic_stream.txt``
on every run (pytest or ``python -m benchmarks.bench_dynamic_stream
[--tiny]``); CI uploads it as a build artifact.
"""

from __future__ import annotations

import argparse
import random
import time

from repro.delta import GraphDelta
from repro.session import Session
from repro.experiments.common import format_table

from .bench_engine import _bench_graph
from .conftest import emit

BENCH_N = 500
BENCH_EDGE_PROB = 0.01
BENCH_THETA = 160
BENCH_SEED = 7
BENCH_STEPS = 8

#: pytest-scale (the full AC workload runs via ``python -m``)
PYTEST_THETA = 48
PYTEST_STEPS = 4

#: --tiny smoke scale (CI-friendly; seconds, not minutes)
TINY_N = 120
TINY_EDGE_PROB = 0.03
TINY_THETA = 24
TINY_STEPS = 4


def _warm_query(session, theta, seed):
    return (
        session.query().sampler("mc", theta=theta, seed=seed)
        .dynamic().top_k(5).mpds()
    )


def run_dynamic_stream_benchmark(
    n: int = BENCH_N,
    edge_prob: float = BENCH_EDGE_PROB,
    theta: int = BENCH_THETA,
    seed: int = BENCH_SEED,
    steps: int = BENCH_STEPS,
) -> dict:
    """Stream updates through a session; assert surgery + identity."""
    graph = _bench_graph(seed=2023, n=n, edge_prob=edge_prob)
    rng = random.Random(seed)

    with Session(graph.copy()) as session:
        start = time.perf_counter()
        _warm_query(session, theta, seed)
        cold_time = time.perf_counter() - start
        m = session.graph.number_of_edges()

        update_times, warm_times, scratch_times = [], [], []
        flipped_total = 0
        for step in range(steps):
            u, v = rng.choice(sorted(session.graph.edges()))
            old_p = session.graph.probability(u, v)
            new_p = round(rng.uniform(0.05, 1.0), 3)
            while new_p == old_p:  # force an effective update
                new_p = round(rng.uniform(0.05, 1.0), 3)

            start = time.perf_counter()
            summary = session.update(GraphDelta(updates=[(u, v, new_p)]))
            update_times.append(time.perf_counter() - start)

            # a single-edge update re-draws exactly one of m columns...
            assert summary["columns_redrawn"] == 1, summary
            assert summary["stores_updated"] == 1, summary
            # ...and invalidates the eval entry iff any world flipped
            expected = 1 if summary["worlds_flipped"] else 0
            assert summary["evals_invalidated"] == expected, summary
            flipped_total += summary["worlds_flipped"]

            start = time.perf_counter()
            warm = _warm_query(session, theta, seed)
            warm_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            with Session(session.graph.copy()) as scratch:
                reference = _warm_query(scratch, theta, seed)
            scratch_times.append(time.perf_counter() - start)
            assert warm == reference, (
                f"step {step}: incremental session diverged from a "
                "from-scratch session on the mutated graph"
            )

        stats = dict(session.stats)

    # the whole stream paid one draw; updates were surgery, not resamples
    assert stats["dynamic_stores_built"] == 1
    assert stats["columns_redrawn"] == steps
    assert stats["worlds_flipped"] == flipped_total
    assert stats["worlds_reevaluated"] <= flipped_total

    update_time = sum(update_times) / len(update_times)
    warm_time = sum(warm_times) / len(warm_times)
    scratch_time = sum(scratch_times) / len(scratch_times)
    speedup = scratch_time / (update_time + warm_time)
    redraw_fraction = 1.0 / m

    rows = [
        ["cold first dynamic query", f"{cold_time:.3f}", "-",
         "pays the one draw"],
        [f"update (1 column of {m})", f"{update_time:.4f}", "-",
         f"redraw fraction {redraw_fraction:.2%}"],
        ["warm post-update query", f"{warm_time:.4f}", "-",
         "patches flipped worlds only"],
        ["from-scratch rebuild", f"{scratch_time:.3f}", "1.0",
         "differential reference"],
        ["update + warm query", f"{update_time + warm_time:.4f}",
         f"{speedup:.1f}", "byte-identical (asserted)"],
    ]
    table = format_table(
        ["Stage", "Time(s)", "Speedup vs rebuild", "Notes"], rows
    )
    note = (
        f"n={n} p={edge_prob} theta={theta} seed={seed} steps={steps}; "
        f"m={m} edges\n"
        f"per update: exactly 1 column redrawn "
        f"({redraw_fraction:.2%} of masks), "
        f"{flipped_total / steps:.1f} worlds flipped on average, "
        f"{stats['worlds_reevaluated']} worlds re-evaluated in total "
        f"(vs {steps * theta} for naive recomputation)\n"
        "every post-update answer byte-matched a from-scratch dynamic "
        "session (asserted)."
    )
    return {
        "table": table + "\n" + note,
        "cold_time": cold_time,
        "update_time": update_time,
        "warm_time": warm_time,
        "scratch_time": scratch_time,
        "speedup": speedup,
    }


def test_dynamic_stream(benchmark):
    result = benchmark.pedantic(
        lambda: run_dynamic_stream_benchmark(
            theta=PYTEST_THETA, steps=PYTEST_STEPS
        ),
        rounds=1,
        iterations=1,
    )
    emit("bench_dynamic_stream", result["table"])
    assert result["speedup"] >= 1.5


def main(argv=None) -> int:
    """Standalone: ``python -m benchmarks.bench_dynamic_stream [--tiny]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-scale run (CI-friendly; seconds, not minutes)",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        result = run_dynamic_stream_benchmark(
            n=TINY_N, edge_prob=TINY_EDGE_PROB, theta=TINY_THETA,
            steps=TINY_STEPS,
        )
    else:
        result = run_dynamic_stream_benchmark()
    emit("bench_dynamic_stream", result["table"])
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
