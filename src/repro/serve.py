"""``repro-serve``: a session-backed HTTP/JSON query daemon.

The :class:`repro.session.Session` API amortizes sampling and substrate
prep across queries -- but only inside one process invocation: warm
caching dies with the process, so every CLI call re-pays the draw.
:class:`ReproServer` keeps the sessions alive in a long-lived daemon:

* **registered graphs** -- uploaded as probabilistic edge lists (JSON
  ``edges`` triples or an ``edge_list`` text blob) or named bundled
  datasets (:func:`available_datasets`), each owning one warm
  :class:`Session`;
* **queries** -- top-k MPDS / NDS requests expressed in the existing
  :mod:`repro.specs` registry strings (``"mc:theta=160,seed=7"``,
  ``"clique:h=3"``), answered from the per-graph session caches and
  serialized over the wire via the :class:`SerializableResult`
  protocol, so responses are **byte-identical** to the equivalent
  one-shot ``top_k_mpds`` / ``top_k_nds`` call;
* an **admission layer** (:class:`AdmissionController`) in front of the
  sessions: concurrent identical seeded requests coalesce onto one
  world-store draw (single-flight -- later arrivals wait on the first
  draw instead of resampling; the session's ``store_waits`` /
  ``eval_waits`` counters are the ledger), heavy *cold* queries are
  routed onto the persistent worker pool, and a draining gate rejects
  new work during shutdown;
* ``/stats`` -- session cache counters per graph, admission counters,
  and per-endpoint latency histograms (:class:`LatencyHistogram`);
* **graceful shutdown** -- :meth:`ReproServer.shutdown` (or
  ``POST /shutdown``) stops admitting, drains in-flight queries, stops
  the listener, and closes every session (releasing world stores and
  published shared-memory segments).

Rollout follows the legacy/shadow facade idiom: the daemon path stands
*next to* the one-shot functions, and ``shadow_rate`` re-executes a
deterministic fraction of served queries through the legacy one-shot
path, asserting byte-identity continuously in production
(``shadow_checks`` / ``shadow_mismatches`` in ``/stats``).

HTTP surface (all JSON)::

    GET    /health            liveness + drain state
    GET    /datasets          names register_graph accepts as "dataset"
    GET    /graphs            registered graphs
    POST   /graphs            {"name": ..., "dataset": "karate"} or
                              {"name": ..., "edges": [[u, v, p], ...]} or
                              {"name": ..., "edge_list": "u v p\\n..."}
    DELETE /graphs/<name>     close + unregister
    POST   /query             {"graph": ..., "run": "mpds"|"nds",
                               "sampler": "mc:theta=160,seed=7",
                               "measure": "clique:h=3", "k": 3,
                               "dynamic": true, ...}
    POST   /graphs/<name>/update
                              {"updates": [[u, v, p], ...],
                               "inserts": [[u, v, p], ...],
                               "deletes": [[u, v], ...]}
    GET    /stats             counters + latency histograms
    POST   /shutdown          graceful drain + stop

Dynamic graphs: ``POST /graphs/<name>/update`` applies a
:class:`repro.delta.GraphDelta` to a live graph.  It rides the
admission controller's *exclusive* gate -- new queries pause (they are
not rejected), in-flight ones drain, the session updates surgically
(:meth:`Session.update`), then admissions resume.  Queries sent with
``"dynamic": true`` draw per-edge-substream stores that survive
updates with only the affected mask columns re-drawn; their responses
after an update are byte-identical to a fresh dynamic session on the
mutated graph (shadow checks are skipped for them -- the legacy
one-shot twin differs by design).

Start it with ``repro-serve`` (or ``python -m repro.serve``)::

    repro-serve --port 8321 --dataset karate
    curl -s -X POST localhost:8321/query \\
        -d '{"graph": "karate", "sampler": "mc:theta=64,seed=7", "k": 3}'
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .graph.uncertain import UncertainGraph
from .session import Session
from .specs import (
    build_measure,
    build_sampler,
    check_int_knob,
    sampler_store_key,
    split_sampler_spec,
)

#: theta * |E| above which a *cold* query is routed to the worker pool
DEFAULT_HEAVY_COST = 200_000


# ----------------------------------------------------------------------
# named datasets
# ----------------------------------------------------------------------
def available_datasets() -> Tuple[str, ...]:
    """Dataset names ``POST /graphs`` accepts as ``{"dataset": ...}``:
    the bundled example graphs plus the fixture-backed SNAP loaders."""
    from . import datasets

    return tuple(
        sorted(("karate", "figure1") + datasets.available_real_datasets())
    )


def _load_named_dataset(name: str) -> UncertainGraph:
    from . import datasets

    if name == "karate":
        return datasets.karate_club_uncertain()
    if name == "figure1":
        return datasets.figure1_graph()
    if name in datasets.available_real_datasets():
        return datasets.load_real_dataset(name)
    raise ValueError(
        f"unknown dataset {name!r}; available: {sorted(available_datasets())}"
    )


def _uncertain_from_rows(rows: Sequence[Sequence]) -> UncertainGraph:
    """Build an :class:`UncertainGraph` from ``(u, v, p)`` rows.

    Labels follow the edge-list file convention: kept as-is unless every
    endpoint parses as an integer, in which case all are converted.
    """
    parsed: List[Tuple[object, object, float]] = []
    for row in rows:
        if len(row) != 3:
            raise ValueError(
                f"malformed edge row {list(row)!r} (expected [u, v, p])"
            )
        parsed.append((row[0], row[1], float(row[2])))
    as_int = True
    for u, v, _p in parsed:
        for label in (u, v):
            try:
                int(str(label))
            except ValueError:
                as_int = False
                break
    graph = UncertainGraph()
    for u, v, p in parsed:
        if as_int:
            u, v = int(str(u)), int(str(v))
        elif not isinstance(u, str) or not isinstance(v, str):
            u, v = str(u), str(v)
        graph.add_edge(u, v, p)
    return graph


def _delta_groups(body: dict) -> Dict[str, list]:
    """Normalize a ``POST .../update`` body into GraphDelta row groups.

    Labels follow the same convention as :func:`_uncertain_from_rows`
    (all-integer labels convert to int, others to str), so a delta
    addresses the same nodes a registered edge list produced.
    """
    groups: Dict[str, list] = {}
    labels: List[object] = []
    for group, width in (("updates", 3), ("inserts", 3), ("deletes", 2)):
        rows = body.get(group)
        if rows is None:
            rows = []
        if not isinstance(rows, (list, tuple)):
            raise ValueError(
                f"{group!r} must be an array of edge rows, "
                f"got {type(rows).__name__}"
            )
        out = []
        for row in rows:
            if not isinstance(row, (list, tuple)) or len(row) != width:
                expected = "[u, v, p]" if width == 3 else "[u, v]"
                raise ValueError(
                    f"malformed {group} row {row!r} (expected {expected})"
                )
            out.append(list(row))
            labels.extend(row[:2])
        groups[group] = out
    as_int = bool(labels)
    for label in labels:
        try:
            int(str(label))
        except ValueError:
            as_int = False
            break
    for rows in groups.values():
        for row in rows:
            for slot in (0, 1):
                label = row[slot]
                if as_int:
                    row[slot] = int(str(label))
                elif not isinstance(label, str):
                    row[slot] = str(label)
    return groups


def _uncertain_from_text(text: str) -> UncertainGraph:
    rows = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        rows.append(line.split())
    return _uncertain_from_rows(rows)


# ----------------------------------------------------------------------
# latency histograms
# ----------------------------------------------------------------------
class LatencyHistogram:
    """Fixed geometric-bucket latency histogram (milliseconds).

    Buckets double from ``lowest_ms``; quantiles report the upper edge
    of the bucket holding the requested rank (exact min/max/mean are
    tracked separately), so memory is O(buckets) no matter how many
    observations a long-lived daemon records.
    """

    def __init__(self, lowest_ms: float = 0.05, buckets: int = 24) -> None:
        self.bounds_ms = tuple(
            lowest_ms * (2.0 ** i) for i in range(buckets)
        )
        self.counts = [0] * (buckets + 1)  # +1 overflow bucket
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0
        self._lock = threading.Lock()

    def observe(self, elapsed_ms: float) -> None:
        """Record one observation (thread-safe)."""
        index = 0
        for bound in self.bounds_ms:
            if elapsed_ms <= bound:
                break
            index += 1
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total_ms += elapsed_ms
            self.min_ms = min(self.min_ms, elapsed_ms)
            self.max_ms = max(self.max_ms, elapsed_ms)

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q`` quantile in milliseconds."""
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            cumulative = 0
            for index, count in enumerate(self.counts):
                cumulative += count
                if cumulative >= rank and count:
                    if index >= len(self.bounds_ms):
                        return self.max_ms
                    return min(self.bounds_ms[index], self.max_ms)
            return self.max_ms

    def snapshot(self) -> dict:
        """Summary dict (count / mean / p50 / p99 / min / max, in ms)."""
        p50 = self.quantile(0.50)
        p99 = self.quantile(0.99)
        with self._lock:
            count = self.count
            return {
                "count": count,
                "mean_ms": (self.total_ms / count) if count else 0.0,
                "p50_ms": p50,
                "p99_ms": p99,
                "min_ms": self.min_ms if count else 0.0,
                "max_ms": self.max_ms,
            }


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
class Draining(Exception):
    """Raised by :meth:`AdmissionController.admit` during shutdown."""


class AdmissionController:
    """Admission/queueing layer in front of the warm sessions.

    Three jobs:

    * **batching** -- concurrent identical seeded requests coalesce onto
      one world-store draw.  The mechanism lives in the thread-safe
      session (single-flight per draw key and per evaluation key); the
      controller exposes the warm/cold probe (:meth:`route` consults
      ``Session.has_store``) and the sessions' ``store_waits`` /
      ``eval_waits`` counters surface in ``/stats``;
    * **routing** -- a *cold* query whose estimated evaluation cost
      (``theta * |E|``) reaches ``heavy_cost`` is fanned onto the
      persistent worker pool (``workers`` -- ``"auto"`` sizes to the
      host); warm queries replay in-process, where they are cheapest;
    * **draining** -- :meth:`begin_drain` rejects new work while
      :meth:`wait_drained` lets in-flight queries finish, the heart of
      graceful shutdown; :meth:`exclusive` is the *reversible* variant
      (graph updates): new arrivals pause instead of being rejected,
      in-flight work drains, the exclusive section runs, admissions
      resume.
    """

    def __init__(
        self,
        workers: Union[int, str] = "auto",
        heavy_cost: int = DEFAULT_HEAVY_COST,
    ) -> None:
        self.workers = workers
        self.heavy_cost = heavy_cost
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._resume = threading.Condition(self._lock)
        self.draining = False
        self.paused = 0
        self.active = 0
        self.peak_active = 0
        self.admitted = 0
        self.rejected = 0
        self.heavy_routed = 0

    # -- in-flight tracking --------------------------------------------
    def admit(self) -> None:
        """Count one request in; raises :class:`Draining` once draining.

        While an :meth:`exclusive` section holds the gate, arrivals
        *block* here (they are admitted once the section ends) rather
        than being rejected -- an update is a pause, not a shutdown.
        """
        with self._lock:
            while self.paused and not self.draining:
                self._resume.wait()
            if self.draining:
                self.rejected += 1
                raise Draining("server is draining; no new work admitted")
            self.active += 1
            self.admitted += 1
            self.peak_active = max(self.peak_active, self.active)

    def release(self) -> None:
        """Count one request out (pairs every successful :meth:`admit`)."""
        with self._lock:
            self.active -= 1
            if self.active <= 0:
                self._drained.notify_all()

    def begin_drain(self) -> None:
        """Stop admitting new work (idempotent); wakes paused arrivals
        so they observe the drain and reject instead of hanging."""
        with self._lock:
            self.draining = True
            self._resume.notify_all()

    def is_draining(self) -> bool:
        """Locked read of the drain flag (callers must not peek at the
        attribute directly -- it is owned by this controller's lock)."""
        with self._lock:
            return self.draining

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request released (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self.active > 0:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True

    @contextmanager
    def exclusive(self, timeout: Optional[float] = None):
        """Pause admissions, drain in-flight work, run, resume.

        The graph-update gate: the body runs with zero queries in
        flight, while new arrivals block in :meth:`admit` (not
        rejected) and resume the moment the section exits.  Raises
        :class:`TimeoutError` if in-flight work does not drain in
        ``timeout`` seconds (admissions resume in that case too).
        The caller must **not** have admitted itself -- it would wait
        on its own drain.
        """
        with self._lock:
            self.paused += 1
        try:
            if not self.wait_drained(timeout):
                raise TimeoutError(
                    "timed out draining in-flight queries for an "
                    "exclusive section"
                )
            yield
        finally:
            with self._lock:
                self.paused -= 1
                if not self.paused:
                    self._resume.notify_all()

    # -- routing -------------------------------------------------------
    def route(
        self,
        session: Session,
        store_key: Optional[Tuple],
        theta: int,
        edges: int,
        requested: Optional[Union[int, str]] = None,
    ) -> Union[int, str]:
        """Pick the worker count for one query.

        An explicit request wins; a warm draw replays in-process; a
        heavy cold draw goes to the pool.
        """
        if requested is not None:
            return requested
        if store_key is not None and session.has_store(store_key):
            return 1
        if theta * max(edges, 1) >= self.heavy_cost:
            with self._lock:
                self.heavy_routed += 1
            return self.workers
        return 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "draining": self.draining,
                "paused": bool(self.paused),
                "active": self.active,
                "peak_active": self.peak_active,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "heavy_routed": self.heavy_routed,
                "heavy_cost": self.heavy_cost,
                "pool_workers": self.workers,
            }


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _HTTPError(Exception):
    """A routed error with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.repro.quiet:  # pragma: no cover - boot logging
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    def _dispatch(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length > 0 else b""
        except (ValueError, OSError):  # pragma: no cover - client gone
            return
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._reply(400, {"error": "request body is not JSON"})
                return
            if not isinstance(body, dict):
                self._reply(400, {"error": "request body must be an object"})
                return
        else:
            body = {}
        status, payload = self.server.repro.handle(method, self.path, body)
        self._reply(status, payload)

    def _reply(self, status: int, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # pragma: no cover - client hung up mid-reply

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class _GraphEntry:
    """One registered graph and its warm session."""

    __slots__ = ("name", "graph", "session", "source")

    def __init__(self, name, graph, session, source) -> None:
        self.name = name
        self.graph = graph
        self.session = session
        self.source = source

    def describe(self) -> dict:
        return {
            "name": self.name,
            "source": self.source,
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
        }


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class ReproServer:
    """Long-lived query daemon: graphs, warm sessions, admission, stats.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` -- the test/benchmark harnesses do).
    engine:
        Default engine for every session (queries may override).
    workers:
        Worker-pool size heavy cold queries are routed to (``"auto"``
        sizes to the host; on a 1-core host that resolves to a
        sequential run).
    shadow_rate:
        Fraction (0..1) of served seeded queries re-executed through the
        legacy one-shot functions and compared byte-for-byte -- the
        shadow rollout check.  Deterministic (an accumulator, not a
        coin), so ``shadow_rate=1.0`` checks every query.
    heavy_cost:
        ``theta * |E|`` admission threshold for pool routing.
    quiet:
        Suppress per-request access logging (tests and benchmarks).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: str = "auto",
        workers: Union[int, str] = "auto",
        shadow_rate: float = 0.0,
        heavy_cost: int = DEFAULT_HEAVY_COST,
        packed: bool = True,
        quiet: bool = True,
    ) -> None:
        if not 0.0 <= float(shadow_rate) <= 1.0:
            raise ValueError(
                f"shadow_rate must be in [0, 1], got {shadow_rate!r}"
            )
        self.engine = engine
        self.packed = packed
        self.quiet = quiet
        self.shadow_rate = float(shadow_rate)
        self._shadow_acc = 0.0
        self.admission = AdmissionController(
            workers=workers, heavy_cost=heavy_cost
        )
        self._lock = threading.RLock()
        self._graphs: Dict[str, _GraphEntry] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self.stats = {
            "requests_total": 0,
            "errors_total": 0,
            "queries_served": 0,
            "graphs_registered": 0,
            "updates_applied": 0,
            "shadow_checks": 0,
            "shadow_mismatches": 0,
        }
        self._started = time.monotonic()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro = self
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def shutdown(self, timeout: float = 60.0) -> bool:
        """Graceful shutdown: drain in-flight queries, stop, close.

        Stops admitting new work, waits up to ``timeout`` seconds for
        every in-flight query to finish, stops the listener, and closes
        every session (releasing cached world stores and published
        shared-memory segments).  Idempotent.  Returns ``True`` when
        the drain completed before the timeout.
        """
        self.admission.begin_drain()
        drained = self.admission.wait_drained(timeout)
        with self._lock:
            if self._closed:
                return drained
            self._closed = True
        if self._thread is not None:
            # only meaningful once serve_forever is looping -- calling
            # it on a never-started server blocks forever
            self._httpd.shutdown()
            self._thread.join(timeout=10.0)
        self._httpd.server_close()
        with self._lock:
            entries = list(self._graphs.values())
            self._graphs.clear()
        for entry in entries:
            entry.session.close()
        return drained

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- graph registry ------------------------------------------------
    def register_graph(
        self,
        name: str,
        graph: Optional[UncertainGraph] = None,
        dataset: Optional[str] = None,
        edges: Optional[Sequence[Sequence]] = None,
        edge_list: Optional[str] = None,
    ) -> dict:
        """Register one graph under ``name`` with a fresh warm session.

        Exactly one source must be given: an :class:`UncertainGraph`
        instance (programmatic callers), a bundled ``dataset`` name, a
        JSON-style ``edges`` triple list, or an ``edge_list`` text blob
        in the ``u v p`` file format.
        """
        if not isinstance(name, str) or not name.strip():
            raise _HTTPError(400, "graph name must be a non-empty string")
        name = name.strip()
        if "/" in name:
            raise _HTTPError(400, f"graph name {name!r} may not contain '/'")
        sources = [
            source for source in (graph, dataset, edges, edge_list)
            if source is not None
        ]
        if len(sources) != 1:
            raise _HTTPError(
                400,
                "exactly one of dataset / edges / edge_list is required",
            )
        try:
            if dataset is not None:
                graph = _load_named_dataset(str(dataset))
                source = f"dataset:{dataset}"
            elif edges is not None:
                graph = _uncertain_from_rows(edges)
                source = "upload:edges"
            elif edge_list is not None:
                graph = _uncertain_from_text(str(edge_list))
                source = "upload:edge_list"
            else:
                source = "upload:graph"
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, str(exc))
        session = Session(graph, engine=self.engine, packed=self.packed)
        with self._lock:
            if name in self._graphs:
                session.close()
                raise _HTTPError(409, f"graph {name!r} already registered")
            entry = _GraphEntry(name, graph, session, source)
            self._graphs[name] = entry
            self.stats["graphs_registered"] += 1
        return entry.describe()

    def close_graph(self, name: str) -> dict:
        """Close and unregister one graph's session."""
        with self._lock:
            entry = self._graphs.pop(name, None)
        if entry is None:
            raise _HTTPError(404, f"no graph registered as {name!r}")
        entry.session.close()
        return {"closed": name}

    def _entry(self, name) -> _GraphEntry:
        if not isinstance(name, str):
            raise _HTTPError(400, "request must name a registered 'graph'")
        with self._lock:
            entry = self._graphs.get(name)
        if entry is None:
            raise _HTTPError(
                404,
                f"no graph registered as {name!r}; register it via "
                "POST /graphs",
            )
        return entry

    # -- request handling ----------------------------------------------
    def handle(self, method: str, path: str, body: dict):
        """Route one request; returns ``(status, payload)``.

        Every request is timed into its endpoint's latency histogram;
        spec/validation errors surface as HTTP 400 with the registry's
        context-prefixed message, draining as 503.
        """
        start = time.perf_counter()
        endpoint = self._endpoint_label(method, path)
        with self._lock:
            self.stats["requests_total"] += 1
        try:
            status, payload = self._route(method, path, body)
        except _HTTPError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Draining as exc:
            status, payload = 503, {"error": str(exc)}
        except (ValueError, TypeError) as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive 500
            status, payload = 500, {"error": f"internal error: {exc}"}
        if status >= 400:
            with self._lock:
                self.stats["errors_total"] += 1
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self._histogram(endpoint).observe(elapsed_ms)
        return status, payload

    def _endpoint_label(self, method: str, path: str) -> str:
        path = path.split("?", 1)[0]
        if path.startswith("/graphs/"):
            path = (
                "/graphs/{name}/update"
                if path.rstrip("/").endswith("/update")
                else "/graphs/{name}"
            )
        return f"{method} {path}"

    def _histogram(self, endpoint: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
            return histogram

    def _route(self, method: str, path: str, body: dict):
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET":
            if path == "/health":
                with self._lock:
                    graphs = len(self._graphs)
                return 200, {
                    "status": "ok",
                    "graphs": graphs,
                    "draining": self.admission.snapshot()["draining"],
                }
            if path == "/datasets":
                return 200, {"datasets": list(available_datasets())}
            if path == "/graphs":
                with self._lock:
                    entries = [e.describe() for e in self._graphs.values()]
                return 200, {"graphs": entries}
            if path == "/stats":
                return 200, self.stats_payload()
        elif method == "POST":
            if path == "/graphs":
                self.admission.admit()
                try:
                    described = self.register_graph(
                        body.get("name"),
                        dataset=body.get("dataset"),
                        edges=body.get("edges"),
                        edge_list=body.get("edge_list"),
                    )
                finally:
                    self.admission.release()
                return 201, described
            if path == "/query":
                self.admission.admit()
                try:
                    return 200, self._handle_query(body)
                finally:
                    self.admission.release()
            if path.startswith("/graphs/") and path.endswith("/update"):
                # deliberately NOT admitted: the update drains admitted
                # work via the exclusive gate and would deadlock on its
                # own admission
                name = path[len("/graphs/"):-len("/update")]
                return 200, self._handle_update(name, body)
            if path == "/shutdown":
                return self._handle_shutdown(body)
        elif method == "DELETE":
            if path.startswith("/graphs/"):
                self.admission.admit()
                try:
                    return 200, self.close_graph(path[len("/graphs/"):])
                finally:
                    self.admission.release()
        raise _HTTPError(404, f"no route for {method} {path}")

    def _handle_shutdown(self, body: dict):
        """Begin draining immediately; finish shutdown off-thread so the
        acknowledgement can still be written to this client."""
        timeout = float(body.get("timeout", 60.0))
        self.admission.begin_drain()
        snapshot = self.admission.snapshot()
        threading.Thread(
            target=self.shutdown, args=(timeout,),
            name="repro-serve-shutdown", daemon=True,
        ).start()
        return 202, {
            "draining": True,
            "in_flight": snapshot["active"],
        }

    # -- graph updates -------------------------------------------------
    def _handle_update(self, name: str, body: dict) -> dict:
        """Apply a :class:`repro.delta.GraphDelta` to a live graph.

        Rides the admission controller's exclusive gate: queries
        arriving during the update block (they are not rejected) while
        in-flight ones drain, then the session updates surgically
        (dynamic stores keep their unflipped worlds) and admissions
        resume.  A drain that exceeds ``body["timeout"]`` (default 60s)
        returns 503 with nothing applied.
        """
        from .delta import GraphDelta

        entry = self._entry(name)
        delta = GraphDelta(**_delta_groups(body))
        if delta.empty:
            raise _HTTPError(
                400,
                "update body names no edges; provide 'updates', "
                "'inserts' and/or 'deletes'",
            )
        timeout = float(body.get("timeout", 60.0))
        if self.admission.is_draining():
            raise Draining("server is draining; no updates accepted")
        try:
            with self.admission.exclusive(timeout):
                try:
                    summary = entry.session.update(delta)
                except KeyError as exc:
                    raise _HTTPError(400, str(exc))
        except TimeoutError as exc:
            raise _HTTPError(503, str(exc))
        with self._lock:
            self.stats["updates_applied"] += 1
        return dict({"graph": entry.name}, **summary)

    # -- queries -------------------------------------------------------
    def _handle_query(self, body: dict) -> dict:
        entry = self._entry(body.get("graph"))
        mode = body.get("run", "mpds")
        if mode not in ("mpds", "nds"):
            raise _HTTPError(
                400, f"unknown run {mode!r} (expected 'mpds' or 'nds')"
            )
        kind, theta, seed, params = split_sampler_spec(
            body.get("sampler", "mc")
        )
        # spec-carried knobs win over body keys, the CLI's precedence
        if theta is None:
            theta = check_int_knob(
                "query", "theta", body.get("theta"), positive=True
            )
        if seed is None:
            seed = check_int_knob("query", "seed", body.get("seed"))
        if theta is None:
            theta = 160 if mode == "mpds" else 640
        measure_spec = body.get("measure")
        k = body.get("k", 1)
        engine = body.get("engine", self.engine)
        dynamic = bool(body.get("dynamic", False))

        session = entry.session
        store_key = (
            sampler_store_key(
                kind, params, theta, seed, session.packed, dynamic
            )
            if seed is not None
            else None
        )
        cold = store_key is None or not session.has_store(store_key)
        workers = self.admission.route(
            session, store_key, theta, entry.graph.number_of_edges(),
            body.get("workers"),
        )

        query = session.query().sampler(
            kind, theta=theta, seed=seed, **params
        )
        if dynamic:
            query.dynamic()
        query.measure(build_measure(measure_spec))
        query.top_k(k)
        query.engine(engine)
        if workers not in (None, 1):
            query.workers(workers)
        started = time.perf_counter()
        if mode == "mpds":
            if "enumerate_all" in body:
                query.enumerate_all(bool(body["enumerate_all"]))
            if "per_world_limit" in body:
                query.per_world_limit(body["per_world_limit"])
            result = query.mpds()
        else:
            query.min_size(body.get("min_size", 2))
            result = query.nds()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self.stats["queries_served"] += 1

        payload = {
            "graph": entry.name,
            "run": mode,
            "sampler": {
                "kind": kind, "params": params,
                "theta": theta, "seed": seed,
            },
            "measure": measure_spec or "edge",
            "k": k,
            "cold_draw": cold,
            "dynamic": dynamic,
            "workers": workers if workers is not None else 1,
            "elapsed_ms": elapsed_ms,
            "result": result.to_dict(),
        }
        # dynamic draws are a distinct sampling scheme: the legacy
        # one-shot twin differs by design, so shadowing is skipped
        shadow = (
            None
            if dynamic
            else self._maybe_shadow(
                entry, mode, kind, params, theta, seed, measure_spec,
                body, engine, result,
            )
        )
        if shadow is not None:
            payload["shadow"] = shadow
        return payload

    # -- shadow rollout checks -----------------------------------------
    def _maybe_shadow(
        self, entry, mode, kind, params, theta, seed, measure_spec, body,
        engine, result,
    ) -> Optional[dict]:
        """Re-run a deterministic fraction of seeded queries through the
        legacy one-shot path and compare byte-for-byte.

        The daemon path is a rollout next to ``top_k_mpds`` /
        ``top_k_nds``; this is the continuous in-production check that
        the two stay byte-identical (the facade's shadow mode).
        """
        if self.shadow_rate <= 0.0 or seed is None:
            return None
        with self._lock:
            self._shadow_acc += self.shadow_rate
            if self._shadow_acc < 1.0:
                return None
            self._shadow_acc -= 1.0
        from .core.mpds import top_k_mpds
        from .core.nds import top_k_nds

        measure = build_measure(measure_spec)
        sampler = (
            None
            if kind == "mc" and not params
            else build_sampler(kind, entry.graph, seed, **params)
        )
        if mode == "mpds":
            twin = top_k_mpds(
                entry.graph, k=body.get("k", 1), theta=theta,
                measure=measure, sampler=sampler, seed=seed,
                enumerate_all=bool(body.get("enumerate_all", True)),
                per_world_limit=body.get("per_world_limit", 100_000),
                engine=engine,
            )
        else:
            twin = top_k_nds(
                entry.graph, k=body.get("k", 1),
                min_size=body.get("min_size", 2), theta=theta,
                measure=measure, sampler=sampler, seed=seed, engine=engine,
            )
        match = twin.to_dict() == result.to_dict()
        with self._lock:
            self.stats["shadow_checks"] += 1
            if not match:
                self.stats["shadow_mismatches"] += 1
        if not match:  # pragma: no cover - the identity contract holds
            sys.stderr.write(
                f"repro-serve SHADOW MISMATCH: graph={entry.name!r} "
                f"run={mode} sampler={kind}:theta={theta},seed={seed}\n"
            )
        return {"checked": True, "match": match}

    # -- stats ---------------------------------------------------------
    def stats_payload(self) -> dict:
        """The ``/stats`` document: counters, sessions, histograms."""
        with self._lock:
            counters = dict(self.stats)
            entries = list(self._graphs.values())
            histograms = dict(self._histograms)
        sessions = {}
        coalesced = 0
        for entry in entries:
            snapshot = entry.session.stats_snapshot()
            coalesced += snapshot["store_waits"] + snapshot["eval_waits"]
            sessions[entry.name] = dict(entry.describe(), **snapshot)
        admission = self.admission.snapshot()
        admission["coalesced_waits"] = coalesced
        return {
            "uptime_s": time.monotonic() - self._started,
            "server": dict(
                counters,
                shadow_rate=self.shadow_rate,
                engine=self.engine,
            ),
            "admission": admission,
            "sessions": sessions,
            "latency_ms": {
                endpoint: histogram.snapshot()
                for endpoint, histogram in sorted(histograms.items())
            },
        }


# ----------------------------------------------------------------------
# CLI entry (`repro-serve`, `python -m repro.serve`, `repro-mpds serve`)
# ----------------------------------------------------------------------
def _workers_arg(text: str) -> Union[int, str]:
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer or 'auto', got {text!r}"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1 or 'auto', got {text}"
        )
    return value


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the daemon's flags (shared with the ``repro-mpds serve``
    subcommand)."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks a free one)",
    )
    parser.add_argument(
        "--graph", action="append", default=None, metavar="NAME=PATH",
        help="register a probabilistic edge-list file at boot; repeatable",
    )
    parser.add_argument(
        "--dataset", action="append", default=None, metavar="NAME",
        help="register a bundled dataset at boot (see GET /datasets); "
        "repeatable",
    )
    parser.add_argument(
        "--engine", choices=("auto", "python", "vectorized", "jit"),
        default="auto",
    )
    parser.add_argument(
        "--workers", type=_workers_arg, default="auto", metavar="N|auto",
        help="worker pool heavy cold queries are routed to",
    )
    parser.add_argument(
        "--shadow-rate", type=float, default=0.0, metavar="RATE",
        help="fraction of seeded queries re-checked against the one-shot "
        "path (0..1; deterministic)",
    )
    parser.add_argument(
        "--heavy-cost", type=int, default=DEFAULT_HEAVY_COST,
        metavar="COST",
        help="theta*|E| threshold above which a cold query uses the pool",
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Session-backed MPDS/NDS query daemon (HTTP/JSON) with "
            "admission batching"
        ),
    )
    add_serve_arguments(parser)
    return parser


def run_serve_command(args: argparse.Namespace) -> int:
    """Boot a server from parsed arguments and serve until shutdown."""
    from .graph.io import read_uncertain_edge_list

    try:
        server = ReproServer(
            host=args.host, port=args.port, engine=args.engine,
            workers=args.workers, shadow_rate=args.shadow_rate,
            heavy_cost=args.heavy_cost, quiet=False,
        )
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        for name in args.dataset or ():
            server.register_graph(name, dataset=name)
        for spec in args.graph or ():
            name, eq, path = spec.partition("=")
            if not eq or not name or not path:
                raise _HTTPError(
                    400, f"--graph expects NAME=PATH, got {spec!r}"
                )
            server.register_graph(
                name, graph=read_uncertain_edge_list(path)
            )
    except (_HTTPError, OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        server.shutdown(timeout=0)
        return 2
    server.start()
    print(f"repro-serve listening on {server.url}", flush=True)
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(timeout=0.5)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("\ndraining in-flight queries ...", flush=True)
    finally:
        server.shutdown()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_serve_command(make_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
