"""Tests for Greedy++ iterated peeling (repro.dense.greedypp)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.dense.clique_density import clique_densest_subgraph
from repro.dense.goldberg import densest_subgraph
from repro.dense.greedypp import (
    greedypp_clique_densest,
    greedypp_densest,
    greedypp_from_instances,
    greedypp_pattern_densest,
)
from repro.dense.pattern_density import pattern_densest_subgraph
from repro.dense.peeling import peel_edge_density
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern

from .conftest import random_graph


class TestEdgeGreedyPP:
    def test_triangle(self, triangle_graph):
        result = greedypp_densest(triangle_graph, rounds=4)
        assert result.density == Fraction(1)
        assert result.nodes == frozenset({1, 2, 3})

    def test_empty_graph(self):
        result = greedypp_densest(Graph(), rounds=4)
        assert result.density == 0
        assert result.rounds == 0

    def test_edgeless_graph(self):
        result = greedypp_densest(Graph(nodes=[1, 2]), rounds=4)
        assert result.density == 0

    def test_invalid_rounds(self, triangle_graph):
        with pytest.raises(ValueError):
            greedypp_densest(triangle_graph, rounds=0)

    def test_one_round_is_charikar(self, rng):
        """Round 1 returns at least the single-pass peeling density."""
        for _ in range(10):
            graph = random_graph(rng, rng.randint(4, 12), 0.4)
            if graph.number_of_edges() == 0:
                continue
            single = greedypp_densest(graph, rounds=1)
            assert single.density >= peel_edge_density(graph).density / 1  # sanity
            assert single.density * 2 >= densest_subgraph(graph).density

    def test_history_is_monotone(self, rng):
        graph = random_graph(rng, 12, 0.4)
        result = greedypp_densest(graph, rounds=8)
        assert list(result.history) == sorted(result.history)
        assert result.history[-1] == result.density

    def test_returned_set_achieves_density(self, rng):
        for _ in range(10):
            graph = random_graph(rng, rng.randint(4, 12), 0.4)
            if graph.number_of_edges() == 0:
                continue
            result = greedypp_densest(graph, rounds=6)
            sub = graph.subgraph(result.nodes)
            assert (
                Fraction(sub.number_of_edges(), len(result.nodes))
                == result.density
            )

    def test_converges_to_optimum(self, rng):
        """Enough rounds reach the flow-exact optimum on small graphs."""
        for trial in range(12):
            graph = random_graph(rng, rng.randint(4, 10), 0.45)
            if graph.number_of_edges() == 0:
                continue
            exact = densest_subgraph(graph).density
            result = greedypp_densest(graph, rounds=64)
            assert result.density == exact, f"trial {trial}"

    def test_never_exceeds_optimum(self, rng):
        for _ in range(10):
            graph = random_graph(rng, rng.randint(4, 12), 0.5)
            if graph.number_of_edges() == 0:
                continue
            exact = densest_subgraph(graph).density
            assert greedypp_densest(graph, rounds=3).density <= exact


class TestCliqueGreedyPP:
    def test_h2_delegates_to_edge(self, rng):
        graph = random_graph(rng, 8, 0.5)
        assert (
            greedypp_clique_densest(graph, 2, rounds=8).density
            == greedypp_densest(graph, rounds=8).density
        )

    def test_invalid_h(self, triangle_graph):
        with pytest.raises(ValueError):
            greedypp_clique_densest(triangle_graph, 1)

    def test_no_cliques(self):
        path = Graph.from_edges([(1, 2), (2, 3)])
        result = greedypp_clique_densest(path, 3, rounds=4)
        assert result.density == 0

    def test_triangle_h3(self, triangle_graph):
        result = greedypp_clique_densest(triangle_graph, 3, rounds=4)
        assert result.density == Fraction(1, 3)

    def test_converges_to_flow_optimum(self, rng):
        for trial in range(10):
            graph = random_graph(rng, rng.randint(4, 9), 0.55)
            exact = clique_densest_subgraph(graph, 3).density
            result = greedypp_clique_densest(graph, 3, rounds=64)
            assert result.density <= exact
            if exact > 0:
                # Greedy++ converges; at 64 rounds small graphs are exact
                assert result.density == exact, f"trial {trial}"


class TestPatternGreedyPP:
    def test_two_star_path(self):
        path = Graph.from_edges([(1, 2), (2, 3)])
        result = greedypp_pattern_densest(path, Pattern.two_star(), rounds=4)
        assert result.density == Fraction(1, 3)

    def test_bounded_by_flow_optimum(self, rng):
        pattern = Pattern.two_star()
        for _ in range(8):
            graph = random_graph(rng, rng.randint(3, 8), 0.5)
            exact = pattern_densest_subgraph(graph, pattern).density
            result = greedypp_pattern_densest(graph, pattern, rounds=32)
            assert result.density <= exact


class TestInstanceGreedyPP:
    def test_empty_instances(self, triangle_graph):
        result = greedypp_from_instances(triangle_graph, [], rounds=4)
        assert result.density == 0

    def test_invalid_rounds(self, triangle_graph):
        with pytest.raises(ValueError):
            greedypp_from_instances(triangle_graph, [(1, 2)], rounds=0)

    def test_duplicate_instances_weighted(self):
        graph = Graph.from_edges([(1, 2)])
        result = greedypp_from_instances(graph, [(1, 2), (1, 2)], rounds=2)
        assert result.density == Fraction(1)
