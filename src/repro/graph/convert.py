"""Interoperability with networkx (optional dependency).

The library's own :class:`~repro.graph.graph.Graph` and
:class:`~repro.graph.uncertain.UncertainGraph` are deliberately
dependency-free, but downstream users often hold their data in networkx.
These converters round-trip both directions:

* deterministic graphs map to/from ``networkx.Graph``;
* uncertain graphs store the edge probability in a configurable edge
  attribute (``"probability"`` by default), matching how uncertain-graph
  datasets are usually shipped.

networkx is imported lazily so the core library keeps working without it.
"""

from __future__ import annotations

from typing import Optional

from .graph import Graph
from .uncertain import UncertainGraph

DEFAULT_PROBABILITY_KEY = "probability"


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - networkx present in CI
        raise ImportError(
            "repro.graph.convert requires networkx; install it or use the "
            "native Graph / UncertainGraph constructors"
        ) from exc
    return networkx


def to_networkx(graph: Graph):
    """Convert a deterministic :class:`Graph` to ``networkx.Graph``."""
    networkx = _require_networkx()
    out = networkx.Graph()
    out.add_nodes_from(graph.nodes())
    out.add_edges_from(graph.edges())
    return out


def from_networkx(nx_graph) -> Graph:
    """Convert an undirected ``networkx.Graph`` to a :class:`Graph`.

    Directed and multi-graphs are rejected (the paper's model is simple and
    undirected); self-loops are rejected by :class:`Graph` itself.
    """
    _validate_simple_undirected(nx_graph)
    graph = Graph(nodes=nx_graph.nodes())
    for u, v in nx_graph.edges():
        graph.add_edge(u, v)
    return graph


def uncertain_to_networkx(
    graph: UncertainGraph, probability_key: str = DEFAULT_PROBABILITY_KEY
):
    """Convert an :class:`UncertainGraph` to ``networkx.Graph``.

    Each edge carries its existence probability in the ``probability_key``
    attribute.
    """
    networkx = _require_networkx()
    out = networkx.Graph()
    out.add_nodes_from(graph.nodes())
    for u, v, p in graph.weighted_edges():
        out.add_edge(u, v, **{probability_key: p})
    return out


def uncertain_from_networkx(
    nx_graph,
    probability_key: str = DEFAULT_PROBABILITY_KEY,
    default_probability: Optional[float] = None,
) -> UncertainGraph:
    """Convert a ``networkx.Graph`` with probability attributes.

    Edges missing the ``probability_key`` attribute use
    ``default_probability``; if that is None (the default), a missing
    attribute raises ``ValueError`` rather than silently assuming certainty.
    """
    _validate_simple_undirected(nx_graph)
    graph = UncertainGraph()
    for node in nx_graph.nodes():
        graph.add_node(node)
    for u, v, data in nx_graph.edges(data=True):
        probability = data.get(probability_key, default_probability)
        if probability is None:
            raise ValueError(
                f"edge ({u!r}, {v!r}) has no {probability_key!r} attribute "
                "and no default_probability was given"
            )
        graph.add_edge(u, v, probability)
    return graph


def _validate_simple_undirected(nx_graph) -> None:
    if nx_graph.is_directed():
        raise ValueError("directed graphs are not supported; undirect it first")
    if nx_graph.is_multigraph():
        raise ValueError("multigraphs are not supported; collapse parallel edges")
