"""Ablation: binary-search flow vs kClist++ for the exact clique density.

The paper computes rho*_h with the convex-program solver of [57]; our
primary implementation binary-searches the Algorithm 6 flow network (see
DESIGN.md substitutions).  This bench verifies the Frank-Wolfe solver
reaches the same optimum and compares their runtimes.
"""

import random
import time

from repro.dense.clique_density import clique_densest_subgraph
from repro.dense.kclistpp import kclistpp_densest
from repro.experiments.common import format_table
from repro.graph.generators import barabasi_albert

from .conftest import emit


def test_kclistpp_vs_flow(benchmark):
    rng = random.Random(2023)
    graphs = {
        f"BA{n}": barabasi_albert(n, 4, rng) for n in (20, 40, 60)
    }

    def run():
        rows = []
        for name, graph in graphs.items():
            start = time.perf_counter()
            flow = clique_densest_subgraph(graph, 3)
            flow_time = time.perf_counter() - start
            start = time.perf_counter()
            fw = kclistpp_densest(graph, 3, iterations=48)
            fw_time = time.perf_counter() - start
            rows.append([
                name, float(flow.density), float(fw.density),
                flow_time, fw_time, fw.density == flow.density,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_kclistpp", format_table(
        ["Graph", "rho*(flow)", "rho(kclist++)", "Flow(s)", "FW(s)", "Match"],
        rows,
    ))
    # the FW solver must never exceed the true optimum, and usually hits it
    for row in rows:
        assert row[2] <= row[1] + 1e-12
    assert sum(1 for row in rows if row[5]) >= 2
