"""Tests for the shared-memory parallel substrate (repro.core.parallel).

The substrate's contract (see the module docstring) is stronger than the
old fan-out's: for a fixed seed the estimates are *byte-identical* to the
sequential estimators for every worker count, because the parent
pre-partitions the sampler's continuous stream over a worker-count
-invariant chunk grid and merges per-block records through the
sequential accumulation code.
"""

from __future__ import annotations

import pytest

from repro.core.measures import CliqueDensity
from repro.core.mpds import top_k_mpds
from repro.core.nds import top_k_nds
from repro.core.parallel import (
    parallel_top_k_mpds,
    parallel_top_k_nds,
)
from repro.engine.blocks import derive_block_seeds, plan_blocks
from repro.graph.uncertain import UncertainGraph
from repro.sampling import LazyPropagationSampler, RecursiveStratifiedSampler

from .conftest import random_uncertain_graph


class TestChunkGrid:
    def test_grid_covers_range_contiguously(self):
        for total in (1, 2, 63, 64, 65, 101, 640):
            blocks = plan_blocks(total)
            assert blocks[0][0] == 0
            assert blocks[-1][1] == total
            for (_, stop), (start, _) in zip(blocks, blocks[1:]):
                assert stop == start

    def test_grid_is_a_function_of_total_only(self):
        # the invariance anchor: the same world count always shards the
        # same way, no matter how many workers later claim the blocks
        assert plan_blocks(640) == plan_blocks(640)
        assert len(plan_blocks(640)) == 64
        assert len(plan_blocks(10)) == 10

    def test_block_sizes_are_fixed(self):
        blocks = plan_blocks(130)
        sizes = [stop - start for start, stop in blocks]
        assert all(size == sizes[0] for size in sizes[:-1])
        assert sizes[-1] <= sizes[0]

    def test_invalid_totals(self):
        with pytest.raises(ValueError):
            plan_blocks(0)
        with pytest.raises(ValueError):
            plan_blocks(10, max_blocks=0)


class TestSeedDerivation:
    def test_seeds_are_distinct(self):
        seeds = derive_block_seeds(42, 64)
        assert len(set(seeds)) == 64

    def test_deterministic_for_fixed_root(self):
        assert derive_block_seeds(7, 16) == derive_block_seeds(7, 16)

    def test_adjacent_roots_never_collide(self):
        """Regression: the old splitmix-style affine derivation could map
        one root's lane onto another nearby root's lane; SeedSequence
        spawn keys keep adjacent roots' block seeds fully disjoint."""
        for root in (0, 1, 41, 42, 2023, 2**31):
            ours = set(derive_block_seeds(root, 64))
            for neighbour in (root - 1, root + 1, root + 2):
                if neighbour < 0:
                    continue
                assert ours.isdisjoint(derive_block_seeds(neighbour, 64))

    def test_none_root_draws_entropy(self):
        a = derive_block_seeds(None, 8)
        b = derive_block_seeds(None, 8)
        assert len(set(a)) == 8
        assert a != b  # two entropy roots virtually never coincide

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_block_seeds(1, -1)


class TestParallelMPDS:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_to_sequential(self, figure1, workers):
        sequential = top_k_mpds(figure1, k=3, theta=90, seed=7)
        parallel = parallel_top_k_mpds(
            figure1, k=3, theta=90, seed=7, workers=workers
        )
        assert parallel.candidates == sequential.candidates
        assert parallel.top == sequential.top
        assert parallel.densest_counts == sequential.densest_counts
        assert parallel.worlds_with_densest == sequential.worlds_with_densest
        assert parallel.replayed_worlds == sequential.replayed_worlds

    def test_worker_count_does_not_change_estimates(self, figure1):
        results = [
            parallel_top_k_mpds(figure1, k=2, theta=80, seed=9, workers=w)
            for w in (2, 3, 4)
        ]
        for other in results[1:]:
            assert other.candidates == results[0].candidates
            assert other.top == results[0].top

    def test_figure1_recovers_bd(self, figure1):
        result = parallel_top_k_mpds(figure1, k=1, theta=600, seed=3, workers=2)
        assert result.best().nodes == frozenset({"B", "D"})
        assert abs(result.best().probability - 0.42) < 0.1

    def test_theta_is_preserved(self, figure1):
        result = parallel_top_k_mpds(figure1, k=1, theta=50, seed=1, workers=3)
        assert result.theta == 50
        assert len(result.densest_counts) == 50

    @pytest.mark.parametrize("sampler_cls", [
        LazyPropagationSampler, RecursiveStratifiedSampler,
    ])
    def test_lp_rss_streams_shard_identically(self, figure1, sampler_cls):
        sequential = top_k_mpds(
            figure1, k=3, theta=70, sampler=sampler_cls(figure1, 11)
        )
        parallel = parallel_top_k_mpds(
            figure1, k=3, theta=70, sampler=sampler_cls(figure1, 11), workers=3
        )
        assert parallel.candidates == sequential.candidates
        assert parallel.top == sequential.top
        assert parallel.densest_counts == sequential.densest_counts

    def test_estimates_are_probabilities(self, rng):
        graph = random_uncertain_graph(rng, 6, 0.5)
        if not list(graph.weighted_edges()):
            pytest.skip("empty random graph")
        result = parallel_top_k_mpds(graph, k=3, theta=60, seed=5, workers=2)
        for estimate in result.candidates.values():
            assert 0.0 <= estimate <= 1.0

    def test_clique_measure(self, figure1):
        sequential = top_k_mpds(
            figure1, k=1, theta=60, seed=2, measure=CliqueDensity(3)
        )
        result = parallel_top_k_mpds(
            figure1, k=1, theta=60, seed=2, workers=2, measure=CliqueDensity(3)
        )
        assert result.candidates == sequential.candidates
        assert result.theta == 60

    def test_one_per_world_ablation(self, figure1):
        sequential = top_k_mpds(
            figure1, k=2, theta=40, seed=6, enumerate_all=False
        )
        parallel = parallel_top_k_mpds(
            figure1, k=2, theta=40, seed=6, workers=2, enumerate_all=False
        )
        assert parallel.candidates == sequential.candidates
        assert parallel.densest_counts == sequential.densest_counts

    def test_unseeded_runs_are_worker_invariant_per_call(self, figure1):
        # no byte-identity to any sequential run is promised without a
        # seed, but the call's own estimates must still be well-formed
        result = parallel_top_k_mpds(figure1, k=2, theta=64, workers=2)
        assert result.theta == 64
        for estimate in result.candidates.values():
            assert 0.0 <= estimate <= 1.0

    def test_custom_sampler_type_is_rejected(self, figure1):
        class Odd:
            def worlds(self, theta):  # pragma: no cover - never drawn
                return iter(())

            def memory_units(self):  # pragma: no cover
                return 0

        with pytest.raises(ValueError, match="MC, LP and RSS"):
            parallel_top_k_mpds(figure1, theta=10, sampler=Odd(), workers=2)

    def test_invalid_arguments(self, figure1):
        with pytest.raises(ValueError):
            parallel_top_k_mpds(figure1, k=0)
        with pytest.raises(ValueError):
            parallel_top_k_mpds(figure1, theta=0)
        with pytest.raises(ValueError):
            parallel_top_k_mpds(figure1, workers=0)


class TestParallelNDS:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_to_sequential(self, figure1, workers):
        sequential = top_k_nds(figure1, k=2, min_size=2, theta=60, seed=5)
        parallel = parallel_top_k_nds(
            figure1, k=2, min_size=2, theta=60, seed=5, workers=workers
        )
        assert parallel.top == sequential.top
        assert parallel.transactions == sequential.transactions
        assert parallel.theta == sequential.theta

    def test_figure1_containment(self, figure1):
        result = parallel_top_k_nds(
            figure1, k=1, min_size=2, theta=600, seed=3, workers=2
        )
        assert result.best().nodes == frozenset({"B", "D"})
        assert abs(result.best().probability - 0.70) < 0.1

    def test_empty_graph_returns_empty(self):
        graph = UncertainGraph()
        graph.add_node("A")
        result = parallel_top_k_nds(graph, k=1, theta=10, seed=1, workers=2)
        assert result.top == []
        assert result.transactions == 0

    def test_min_size_respected(self, figure1):
        result = parallel_top_k_nds(
            figure1, k=3, min_size=3, theta=200, seed=4, workers=2
        )
        for scored in result.top:
            assert len(scored.nodes) >= 3

    def test_invalid_arguments(self, figure1):
        with pytest.raises(ValueError):
            parallel_top_k_nds(figure1, k=0)
        with pytest.raises(ValueError):
            parallel_top_k_nds(figure1, min_size=0)
        with pytest.raises(ValueError):
            parallel_top_k_nds(figure1, theta=-1)
        with pytest.raises(ValueError):
            parallel_top_k_nds(figure1, workers=0)


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self, figure1):
        import repro.core.parallel as par

        parallel_top_k_mpds(figure1, k=1, theta=30, seed=1, workers=2)
        pool_after_first = par._POOL
        assert pool_after_first is not None
        parallel_top_k_mpds(figure1, k=1, theta=30, seed=2, workers=2)
        assert par._POOL is pool_after_first

    def test_pool_grows_when_more_workers_requested(self, figure1):
        import repro.core.parallel as par

        parallel_top_k_mpds(figure1, k=1, theta=30, seed=1, workers=2)
        assert par._POOL_PROCS >= 2
        parallel_top_k_mpds(figure1, k=1, theta=40, seed=1, workers=3)
        assert par._POOL_PROCS >= 3
        # a smaller request reuses the larger pool
        pool = par._POOL
        parallel_top_k_mpds(figure1, k=1, theta=30, seed=1, workers=2)
        assert par._POOL is pool


class TestResolveWorkers:
    """Regression: the old default hardcoded workers=2 even on 1-core
    hosts; ``workers="auto"`` must size the fan-out to the host."""

    def test_auto_respects_single_core_host(self, monkeypatch):
        import os

        from repro.core.parallel import resolve_workers

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_workers("auto") == 1

    def test_auto_matches_host_allowance(self):
        import os

        from repro.core.parallel import resolve_workers

        resolved = resolve_workers("auto")
        try:
            expected = max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            expected = max(1, os.cpu_count() or 1)
        assert resolved == expected

    def test_auto_never_below_one(self, monkeypatch):
        import os

        from repro.core.parallel import resolve_workers

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_workers("auto") == 1

    def test_integers_pass_through(self):
        from repro.core.parallel import resolve_workers

        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 0  # caller owns the >= 1 validation

    def test_rejects_garbage(self):
        from repro.core.parallel import resolve_workers

        with pytest.raises(ValueError, match="integer or 'auto'"):
            resolve_workers("many")
        with pytest.raises(ValueError, match="integer or 'auto'"):
            resolve_workers(2.5)
        with pytest.raises(ValueError, match="integer or 'auto'"):
            resolve_workers(True)

    def test_parallel_functions_default_to_auto(self):
        import inspect

        assert (
            inspect.signature(parallel_top_k_mpds)
            .parameters["workers"].default == "auto"
        )
        assert (
            inspect.signature(parallel_top_k_nds)
            .parameters["workers"].default == "auto"
        )

    def test_workers_auto_matches_sequential(self, figure1):
        from repro.core.mpds import top_k_mpds

        auto = parallel_top_k_mpds(
            figure1, k=2, theta=60, seed=3, workers="auto"
        )
        assert auto == top_k_mpds(figure1, k=2, theta=60, seed=3)

    def test_workers_auto_on_forced_single_core(self, figure1, monkeypatch):
        """On a (simulated) 1-core host the auto default must run the
        sequential estimator, not a 2-process fan-out."""
        import os

        import repro.core.parallel as par

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)

        def no_fanout(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("1-core auto run must not plan a fan-out")

        monkeypatch.setattr(par, "_plan_run", no_fanout)
        result = parallel_top_k_mpds(
            figure1, k=1, theta=40, seed=5, workers="auto"
        )
        from repro.core.mpds import top_k_mpds

        assert result == top_k_mpds(figure1, k=1, theta=40, seed=5)
