"""Integer flow networks on flat CSR arrays (the engine's hot substrate).

:class:`~repro.flow.network.FlowNetwork` stores one Python ``Arc`` object
per direction, which is what the per-world exact stage of the vectorised
engine used to spend most of its time allocating and chasing.  This module
is the array twin: arcs live in flat lists sorted by tail node, so the
arcs out of node ``v`` occupy the contiguous slice
``indptr[v]:indptr[v + 1]`` of ``to`` / ``cap`` / ``twin`` -- one list
index per access, no object hops.  ``cap`` holds *residual* capacities:
pushing ``delta`` along arc ``e`` is ``cap[e] -= delta;
cap[twin[e]] += delta``, and a residual-graph query is just
``cap[e] > 0``.

All capacities are Python ints (exact; the Goldberg construction scales by
the density denominator, see :mod:`repro.dense.goldberg`), so the solved
flows and min cuts are byte-identical to the object-based
:mod:`repro.flow.maxflow` / :mod:`repro.flow.push_relabel` results: max
flow values are unique, and the minimal / maximal min-cut sides and the
residual SCC condensation are invariant across maximum flows
(Picard-Queyranne), whichever solver produced them.

The solvers are :func:`repro.flow.push_relabel.csr_push_relabel` /
:func:`repro.flow.push_relabel.csr_max_preflow_min_cut` (array ports of
the FIFO push-relabel in that file, the engine's default) and
:func:`repro.flow.maxflow.csr_max_flow` (array Dinic, the cross-check).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, List

import numpy as np


class CSRFlowNetwork:
    """A flow network over nodes ``0..num_nodes-1`` in flat arrays.

    ``source`` and ``sink`` are ordinary node indices.  Arc ``e``'s
    reverse twin is ``twin[e]``; ``cap`` is mutated in place by the
    solvers and holds residual capacities at all times.
    """

    __slots__ = ("num_nodes", "source", "sink", "to", "cap", "twin", "indptr")

    def __init__(
        self,
        num_nodes: int,
        source: int,
        sink: int,
        to: List[int],
        cap: List[int],
        twin: List[int],
        indptr: List[int],
    ) -> None:
        self.num_nodes = num_nodes
        self.source = source
        self.sink = sink
        self.to = to
        self.cap = cap
        self.twin = twin
        self.indptr = indptr

    @classmethod
    def from_pairs(
        cls,
        num_nodes: int,
        source: int,
        sink: int,
        pair_tail: np.ndarray,
        pair_head: np.ndarray,
        cap_forward: np.ndarray,
        cap_backward: np.ndarray,
    ) -> "CSRFlowNetwork":
        """Build from arc-pair arrays (tails, heads, capacities; int64)."""
        pairs = len(pair_tail)
        arc_tail = np.empty(2 * pairs, dtype=np.int64)
        arc_head = np.empty(2 * pairs, dtype=np.int64)
        arc_cap = np.empty(2 * pairs, dtype=np.int64)
        arc_tail[0::2] = pair_tail
        arc_tail[1::2] = pair_head
        arc_head[0::2] = pair_head
        arc_head[1::2] = pair_tail
        arc_cap[0::2] = cap_forward
        arc_cap[1::2] = cap_backward
        order = np.argsort(arc_tail, kind="stable")
        # position of each original arc after the sort, so twins resolve
        # to sorted positions: original twin of arc a is a ^ 1
        position = np.empty(2 * pairs, dtype=np.int64)
        position[order] = np.arange(2 * pairs)
        twin = position[order ^ 1]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(arc_tail, minlength=num_nodes))
        return cls(
            num_nodes,
            source,
            sink,
            arc_head[order].tolist(),
            arc_cap[order].tolist(),
            twin.tolist(),
            indptr.tolist(),
        )

    # ------------------------------------------------------------------
    # residual structure (valid after a max-flow computation)
    # ------------------------------------------------------------------
    def residual_successors(self, node: int) -> Iterator[int]:
        """Yield heads of positive-residual arcs out of ``node``."""
        to, cap = self.to, self.cap
        for e in range(self.indptr[node], self.indptr[node + 1]):
            if cap[e] > 0:
                yield to[e]

    def residual_adjacency(self, nodes: Iterable[int]) -> List[List[int]]:
        """Materialised :meth:`residual_successors` lists for ``nodes``.

        Returns a full-size table (indexed by node id, empty outside
        ``nodes``) so repeated traversals -- Tarjan visits every arc
        twice -- skip the per-arc generator machinery.  Successor order
        matches :meth:`residual_successors` exactly.
        """
        to, cap, indptr = self.to, self.cap, self.indptr
        adjacency: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for node in nodes:
            adjacency[node] = [
                to[e]
                for e in range(indptr[node], indptr[node + 1])
                if cap[e] > 0
            ]
        return adjacency

    def reachable_from_source(self) -> List[bool]:
        """Per-node flags: reachable from ``source`` in the residual graph.

        After a max flow this is the *minimal* min-cut source side (a
        flow-invariant set).
        """
        to, cap, indptr = self.to, self.cap, self.indptr
        seen = [False] * self.num_nodes
        seen[self.source] = True
        stack = [self.source]
        while stack:
            node = stack.pop()
            for e in range(indptr[node], indptr[node + 1]):
                if cap[e] > 0 and not seen[to[e]]:
                    seen[to[e]] = True
                    stack.append(to[e])
        return seen

    def coreachable_to_sink(self) -> List[bool]:
        """Per-node flags: can still reach ``sink`` in the residual graph.

        The complement is the *maximal* min-cut source side.  Walks arcs
        backwards through the stored twins: ``y -> x`` has positive
        residual iff ``cap[twin[e]] > 0`` for the arc ``e = x -> y``.
        """
        to, cap, twin, indptr = self.to, self.cap, self.twin, self.indptr
        seen = [False] * self.num_nodes
        seen[self.sink] = True
        stack = [self.sink]
        while stack:
            node = stack.pop()
            for e in range(indptr[node], indptr[node + 1]):
                if cap[twin[e]] > 0 and not seen[to[e]]:
                    seen[to[e]] = True
                    stack.append(to[e])
        return seen


def build_edge_density_network_csr(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    degrees: np.ndarray,
    alpha: Fraction,
) -> CSRFlowNetwork:
    """Goldberg's edge-density network over local node arrays.

    The array twin of :func:`repro.dense.goldberg.build_edge_density_network`
    with the same scaled integer capacities (``alpha = p / q``): source
    ``s = n``, sink ``t = n + 1``, ``c(s, v) = q * deg(v)``,
    ``c(v, t) = 2p``, and every graph edge as a ``q``/``q`` twin pair.
    """
    alpha = Fraction(alpha)
    q = alpha.denominator
    p = alpha.numerator
    m = len(edge_u)
    source = n
    sink = n + 1
    locals_ = np.arange(n, dtype=np.int64)
    pair_tail = np.concatenate(
        [np.full(n, source, dtype=np.int64), locals_, edge_u]
    )
    pair_head = np.concatenate(
        [locals_, np.full(n, sink, dtype=np.int64), edge_v]
    )
    cap_forward = np.concatenate(
        [
            q * degrees.astype(np.int64),
            np.full(n, 2 * p, dtype=np.int64),
            np.full(m, q, dtype=np.int64),
        ]
    )
    cap_backward = np.concatenate(
        [
            np.zeros(2 * n, dtype=np.int64),
            np.full(m, q, dtype=np.int64),
        ]
    )
    return CSRFlowNetwork.from_pairs(
        n + 2, source, sink, pair_tail, pair_head, cap_forward, cap_backward
    )
