"""Tables XI & XII: approximate versus heuristic NDS.

Table XI (Karate Club, four patterns): densest subgraph containment
probability and running time of the exact-enumeration Pattern-NDS versus
the core-decomposition heuristic of Section III-C.  Expected shape: the
heuristic is close in quality and clearly faster.

Table XII (Friendster stand-in): the same comparison for Edge-NDS, where
the paper switches to the heuristic because the approximate method's
runtime explodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.heuristics import HeuristicMeasure
from ..core.measures import DensityMeasure, EdgeDensity, PatternDensity
from ..core.nds import top_k_nds
from ..datasets.karate import karate_club_uncertain
from ..datasets.synthetic import make_friendster_like
from ..graph.uncertain import UncertainGraph
from ..patterns.pattern import paper_patterns
from .common import (
    collect_max_densest_transactions,
    containment_probability,
    format_table,
    timed,
)


@dataclass
class HeuristicRow:
    """One (workload) row of Table XI or XII."""

    workload: str
    approx_containment: float
    heuristic_containment: float
    approx_seconds: float
    heuristic_seconds: float


def _compare(
    graph: UncertainGraph,
    workload: str,
    measure: DensityMeasure,
    theta: int,
    min_size: int,
    seed: int,
) -> HeuristicRow:
    approx_result, approx_time = timed(
        lambda: top_k_nds(
            graph, k=1, min_size=min_size, theta=theta,
            measure=measure, seed=seed,
        )
    )
    heuristic_result, heuristic_time = timed(
        lambda: top_k_nds(
            graph, k=1, min_size=min_size, theta=theta,
            measure=HeuristicMeasure(measure), seed=seed,
        )
    )
    # evaluate both answers under the *exact* per-world maximal densest
    # subgraphs so the quality comparison is fair
    transactions = collect_max_densest_transactions(
        graph, theta, measure, seed=seed + 1
    )
    approx_nodes = approx_result.best().nodes if approx_result.top else frozenset()
    heuristic_nodes = (
        heuristic_result.best().nodes if heuristic_result.top else frozenset()
    )
    return HeuristicRow(
        workload=workload,
        approx_containment=containment_probability(approx_nodes, transactions),
        heuristic_containment=containment_probability(
            heuristic_nodes, transactions
        ),
        approx_seconds=approx_time,
        heuristic_seconds=heuristic_time,
    )


def run_table11(
    theta: int = 40, min_size: int = 2, seed: int = 7,
    patterns=None,
) -> List[HeuristicRow]:
    """Pattern-NDS approx vs heuristic on Karate Club (four patterns)."""
    graph = karate_club_uncertain(seed=2023)
    rows: List[HeuristicRow] = []
    for pattern in patterns or paper_patterns():
        measure = PatternDensity(pattern)
        rows.append(
            _compare(graph, pattern.name, measure, theta, min_size, seed)
        )
    return rows


def run_table12(
    loader: Optional[Callable[[], UncertainGraph]] = None,
    theta: int = 16,
    min_size: int = 2,
    seed: int = 7,
) -> List[HeuristicRow]:
    """Edge-NDS approx vs heuristic on the Friendster stand-in."""
    graph = (loader or make_friendster_like)()
    return [_compare(graph, "Friendster(edge)", EdgeDensity(), theta, min_size, seed)]


def format_table11_12(rows: List[HeuristicRow]) -> str:
    """Render Table XI / XII."""
    headers = [
        "Workload", "ContProb(approx)", "ContProb(heuristic)",
        "Time(approx)s", "Time(heuristic)s",
    ]
    body = [
        [r.workload, r.approx_containment, r.heuristic_containment,
         r.approx_seconds, r.heuristic_seconds]
        for r in rows
    ]
    return format_table(headers, body)
