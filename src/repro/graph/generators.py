"""Random graph models and edge-probability assignment (Section VI-A).

The paper evaluates on Erdos-Renyi / Barabasi-Albert synthetic graphs
(Table XV, Figs. 17-18) and assigns edge probabilities with several models:

* exponential CDF of communication counts, ``p = 1 - exp(-t / mu)`` with
  ``mu = 20`` (Karate Club, Twitter, Friendster);
* reciprocal of the larger endpoint degree (LastFM);
* uniform at random (Table XV synthetic graphs);
* normal with a given mean (Fig. 18).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from .graph import Graph, Node
from .uncertain import UncertainGraph


def erdos_renyi(
    n: int, p: float, rng: Optional[random.Random] = None
) -> Graph:
    """Return a G(n, p) Erdos-Renyi graph on nodes ``0..n-1``."""
    rng = rng or random.Random()
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def barabasi_albert(
    n: int, m: int, rng: Optional[random.Random] = None
) -> Graph:
    """Return a Barabasi-Albert preferential-attachment graph.

    Each new node attaches to ``m`` existing nodes chosen proportionally to
    degree (repeated-nodes urn implementation).
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = rng or random.Random()
    graph = Graph(nodes=range(n))
    # start from a star over the first m+1 nodes so every node has degree >= 1
    repeated: list[Node] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        repeated.extend((0, v))
    for source in range(m + 1, n):
        targets: set[Node] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(source, target)
            repeated.extend((source, target))
    return graph


# ----------------------------------------------------------------------
# edge probability models
# ----------------------------------------------------------------------

def exponential_cdf_probability(t: float, mu: float = 20.0) -> float:
    """Return ``1 - exp(-t / mu)``: probability from an interaction count.

    This is the model the paper applies to Karate Club, Twitter, and
    Friendster with ``mu = 20`` [91].
    """
    return 1.0 - math.exp(-t / mu)


def assign_exponential_cdf(
    graph: Graph,
    rng: Optional[random.Random] = None,
    mu: float = 20.0,
    max_interactions: int = 20,
) -> UncertainGraph:
    """Assign probabilities via the exponential CDF of synthetic counts.

    Interaction counts are drawn uniformly from ``1..max_interactions``;
    real datasets would use observed communication counts.
    """
    rng = rng or random.Random()
    out = UncertainGraph()
    for node in graph:
        out.add_node(node)
    for u, v in graph.edges():
        t = rng.randint(1, max_interactions)
        out.add_edge(u, v, exponential_cdf_probability(t, mu))
    return out


def assign_reciprocal_degree(graph: Graph) -> UncertainGraph:
    """Assign ``p(u, v) = 1 / max(deg(u), deg(v))`` (the LastFM model)."""
    out = UncertainGraph()
    for node in graph:
        out.add_node(node)
    for u, v in graph.edges():
        out.add_edge(u, v, 1.0 / max(graph.degree(u), graph.degree(v)))
    return out


def assign_uniform(
    graph: Graph,
    rng: Optional[random.Random] = None,
    low: float = 0.05,
    high: float = 1.0,
) -> UncertainGraph:
    """Assign probabilities uniformly at random from ``[low, high]``.

    Used for the Table XV synthetic BA/ER graphs ("assign edge probabilities
    uniformly at random").
    """
    rng = rng or random.Random()
    out = UncertainGraph()
    for node in graph:
        out.add_node(node)
    for u, v in graph.edges():
        out.add_edge(u, v, rng.uniform(low, high))
    return out


def assign_normal(
    graph: Graph,
    mean: float,
    std: float = 0.1,
    rng: Optional[random.Random] = None,
) -> UncertainGraph:
    """Assign normally distributed probabilities, clipped to (0, 1].

    Used in Fig. 18 ("normally distributed edge probabilities with means
    0.2, 0.5 and 0.8").
    """
    rng = rng or random.Random()
    out = UncertainGraph()
    for node in graph:
        out.add_node(node)
    for u, v in graph.edges():
        p = rng.gauss(mean, std)
        p = min(1.0, max(1e-6, p))
        out.add_edge(u, v, p)
    return out


def assign_constant(graph: Graph, probability: float) -> UncertainGraph:
    """Assign the same probability to every edge (hardness-proof gadgets)."""
    out = UncertainGraph()
    for node in graph:
        out.add_node(node)
    for u, v in graph.edges():
        out.add_edge(u, v, probability)
    return out


def uncertain_erdos_renyi(
    n: int,
    edge_probability: float,
    rng: Optional[random.Random] = None,
    assigner: Optional[Callable[[Graph], UncertainGraph]] = None,
) -> UncertainGraph:
    """Convenience: ER topology + uniform existence probabilities.

    ``assigner`` overrides the default uniform probability model.
    """
    rng = rng or random.Random()
    topology = erdos_renyi(n, edge_probability, rng)
    if assigner is not None:
        return assigner(topology)
    return assign_uniform(topology, rng)


def uncertain_barabasi_albert(
    n: int,
    m: int,
    rng: Optional[random.Random] = None,
    assigner: Optional[Callable[[Graph], UncertainGraph]] = None,
) -> UncertainGraph:
    """Convenience: BA topology + uniform existence probabilities."""
    rng = rng or random.Random()
    topology = barabasi_albert(n, m, rng)
    if assigner is not None:
        return assigner(topology)
    return assign_uniform(topology, rng)
