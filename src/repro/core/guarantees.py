"""End-to-end accuracy guarantees as computable bounds (Theorems 2, 3, 5, 6).

These functions turn the paper's guarantees into numbers:

* Theorem 2: probability that the true top-k node sets appear among the
  candidates after ``theta`` rounds.
* Theorem 3: probability that Algorithm 1 returns exactly the true top-k
  (candidate-inclusion bound times a Hoeffding separation bound around
  ``mid = (tau_k + tau_{k+1}) / 2``).
* Theorems 5/6: the NDS analogues (closedness + separation).

They accept true (or estimated) probabilities and a sample size, and also
invert the bounds into sample-size planners.  ``convergence_theta``
implements the empirical protocol of Fig. 19: double theta until the
returned top-k stabilises.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Sequence, Tuple

from ..metrics.quality import top_k_similarity


def theorem2_candidate_inclusion_bound(
    top_taus: Sequence[float], theta: int
) -> float:
    """Lower-bound Pr[true top-k are all candidates] (Theorem 2, Eq. 9)."""
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    miss = sum((1.0 - tau) ** theta for tau in top_taus)
    return max(0.0, 1.0 - miss)


def hoeffding_separation_bound(
    top_probs: Sequence[float],
    other_probs: Sequence[float],
    theta: int,
) -> float:
    """Lower-bound Pr[all top estimates beat all other estimates].

    The shared core of Theorems 3 and 6: with
    ``mid = (min(top) + max(other)) / 2`` and ``d_U`` the distance of each
    probability from ``mid``, the failure probability is at most
    ``sum exp(-2 d_U^2 theta)`` by Hoeffding + union bound.
    """
    if not top_probs:
        return 1.0
    mid_low = min(top_probs)
    mid_high = max(other_probs) if other_probs else 0.0
    mid = 0.5 * (mid_low + mid_high)
    failure = 0.0
    for p in top_probs:
        failure += math.exp(-2.0 * (p - mid) ** 2 * theta)
    for p in other_probs:
        failure += math.exp(-2.0 * (mid - p) ** 2 * theta)
    return max(0.0, 1.0 - failure)


def theorem3_return_bound(
    top_taus: Sequence[float],
    other_taus: Sequence[float],
    theta: int,
) -> float:
    """Lower-bound Pr[Algorithm 1 returns the true top-k] (Theorem 3, Eq. 11).

    ``top_taus`` are tau(V_1)..tau(V_k); ``other_taus`` the remaining
    candidates' probabilities (at least tau(V_{k+1})).
    """
    inclusion = theorem2_candidate_inclusion_bound(top_taus, theta)
    separation = hoeffding_separation_bound(top_taus, other_taus, theta)
    return max(0.0, inclusion * separation)


def theorem5_closedness_bound(
    world_probabilities: Iterable[float], theta: int
) -> float:
    """Lower-bound Pr[true top-k NDS are closed w.r.t. gamma-hat] (Thm. 5).

    ``world_probabilities`` are Pr(G) for every possible world whose
    densest subgraphs contain one of the true top-k node sets (the set
    ``G`` of Eq. 14).
    """
    miss = sum((1.0 - p) ** theta for p in world_probabilities)
    return max(0.0, 1.0 - miss)


def theorem6_return_bound(
    world_probabilities: Iterable[float],
    top_gammas: Sequence[float],
    other_gammas: Sequence[float],
    theta: int,
) -> float:
    """Lower-bound Pr[Algorithm 5 returns the true top-k] (Theorem 6, Eq. 16)."""
    closedness = theorem5_closedness_bound(world_probabilities, theta)
    separation = hoeffding_separation_bound(top_gammas, other_gammas, theta)
    return max(0.0, closedness * separation)


def plan_theta_for_inclusion(
    min_tau: float, k: int, confidence: float = 0.95
) -> int:
    """Smallest theta making the Theorem 2 bound reach ``confidence``.

    Assumes all top-k probabilities are at least ``min_tau``:
    ``k (1 - min_tau)^theta <= 1 - confidence``.
    """
    if not 0.0 < min_tau <= 1.0:
        raise ValueError(f"min_tau must be in (0, 1], got {min_tau}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if min_tau >= 1.0:
        return 1
    return max(1, math.ceil(
        math.log((1.0 - confidence) / k) / math.log(1.0 - min_tau)
    ))


def plan_theta_for_separation(
    gap: float, candidates: int, confidence: float = 0.95
) -> int:
    """Smallest theta making the Hoeffding bound reach ``confidence``.

    ``gap`` is the minimum distance ``d_U`` of any candidate from ``mid``;
    ``candidates`` the candidate-set size:
    ``candidates * exp(-2 gap^2 theta) <= 1 - confidence``.
    """
    if gap <= 0.0:
        raise ValueError(f"gap must be positive, got {gap}")
    return max(1, math.ceil(
        math.log(candidates / (1.0 - confidence)) / (2.0 * gap * gap)
    ))


def convergence_theta(
    run: Callable[[int], Sequence[Iterable]],
    start_theta: int = 20,
    max_theta: int = 5120,
    threshold: float = 0.99,
) -> Tuple[int, List[Tuple[int, float]]]:
    """Empirical theta selection (the Fig. 19 protocol).

    ``run(theta)`` returns the top-k node sets for that sample size.  Theta
    doubles from ``start_theta``; convergence is declared when the top-k
    similarity to the previous theta's result reaches ``threshold``.
    Returns ``(chosen_theta, [(theta, similarity), ...])``.
    """
    history: List[Tuple[int, float]] = []
    previous = run(start_theta)
    theta = start_theta * 2
    while theta <= max_theta:
        current = run(theta)
        similarity = top_k_similarity(current, previous)
        history.append((theta, similarity))
        if similarity >= threshold:
            return theta, history
        previous = current
        theta *= 2
    return max_theta, history
