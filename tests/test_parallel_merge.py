"""Merge semantics of the parallel substrate, exercised in-process.

Property under test: merging any *permutation* of per-block outputs over
any *partition* (chunk grid) of the world stream reproduces the
sequential ``top_k_mpds`` / ``top_k_nds`` output exactly -- candidates,
ranking, per-world densest counts and ``per_world_limit`` replay
counters included.  Everything here runs in the parent process through
the same helpers the pool workers execute, so the properties are cheap
to sweep.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.mpds import top_k_mpds
from repro.core.nds import top_k_nds
from repro.core.parallel import (
    _block_records,
    _plan_run,
    _replay_truncated,
    merge_mpds_blocks,
    merge_nds_blocks,
)
from repro.engine.blocks import (
    derive_block_seeds,
    drain_mask_stream,
    mc_block_masks,
    plan_blocks,
)
from repro.engine.indexed import IndexedGraph
from repro.engine.sampler import VectorizedMonteCarloSampler
from repro.engine.shm import attach_arrays, close_attachment, pack_arrays
from repro.graph.uncertain import UncertainGraph
from repro.sampling import LazyPropagationSampler, RecursiveStratifiedSampler

from .conftest import random_uncertain_graph


def _mpds_outputs(plan, engine, enumerate_all=True, per_world_limit=100_000,
                  measure=None):
    """Evaluate every block in-process (what the pool workers do)."""
    from repro.core.measures import EdgeDensity

    measure = measure or EdgeDensity()
    outputs = []
    for index, (start, stop) in enumerate(plan.blocks):
        records, replayed = _block_records(
            plan.indexed, plan.masks, plan.order_data, plan.order_indptr,
            start, stop, measure, engine, enumerate_all, per_world_limit,
            "mpds",
        )
        outputs.append((index, records, replayed))
    return outputs


def _nds_outputs(plan, engine, measure=None):
    from repro.core.measures import EdgeDensity

    measure = measure or EdgeDensity()
    outputs = []
    for index, (start, stop) in enumerate(plan.blocks):
        records, replayed = _block_records(
            plan.indexed, plan.masks, plan.order_data, plan.order_indptr,
            start, stop, measure, engine, True, None, "nds",
        )
        outputs.append((index, records, replayed))
    return outputs


def _assert_mpds_equal(merged, sequential):
    assert merged.candidates == sequential.candidates
    assert merged.top == sequential.top
    assert merged.densest_counts == sequential.densest_counts
    assert merged.worlds_with_densest == sequential.worlds_with_densest
    assert merged.theta == sequential.theta
    assert merged.replayed_worlds == sequential.replayed_worlds


class TestMergePermutationInvariance:
    @pytest.mark.parametrize("engine", ["vectorized", "python"])
    def test_any_output_permutation_merges_identically(self, figure1, engine):
        sequential = top_k_mpds(figure1, k=3, theta=48, seed=5, engine=engine)
        plan = _plan_run(figure1, 48, None, 5)
        outputs = _mpds_outputs(plan, engine)
        shuffler = random.Random(0)
        for _ in range(5):
            shuffler.shuffle(outputs)
            merged = merge_mpds_blocks(plan.blocks, plan.weights, outputs, 3)
            _assert_mpds_equal(merged, sequential)

    def test_any_partition_merges_identically(self, figure1):
        """Coarser/finer chunk grids over the same stream agree too."""
        sequential = top_k_mpds(figure1, k=2, theta=40, seed=11)
        sampler = VectorizedMonteCarloSampler(figure1, 11)
        masks, weights, _, _ = drain_mask_stream(sampler, 40)
        from repro.core.measures import EdgeDensity

        for max_blocks in (1, 3, 7, 40, 64):
            blocks = plan_blocks(40, max_blocks)
            indexed = sampler.indexed
            outputs = []
            for index, (start, stop) in enumerate(blocks):
                records, replayed = _block_records(
                    indexed, masks, None, None, start, stop,
                    EdgeDensity(), "vectorized", True, 100_000, "mpds",
                )
                outputs.append((index, records, replayed))
            merged = merge_mpds_blocks(blocks, weights, outputs, 2)
            _assert_mpds_equal(merged, sequential)

    @pytest.mark.parametrize("sampler_cls", [
        LazyPropagationSampler, RecursiveStratifiedSampler,
    ])
    def test_lp_rss_blocks_merge_identically(self, figure1, sampler_cls):
        sequential = top_k_mpds(
            figure1, k=3, theta=36, sampler=sampler_cls(figure1, 3)
        )
        plan = _plan_run(figure1, 36, sampler_cls(figure1, 3), None)
        outputs = _mpds_outputs(plan, "vectorized")
        outputs.reverse()
        merged = merge_mpds_blocks(plan.blocks, plan.weights, outputs, 3)
        _assert_mpds_equal(merged, sequential)

    def test_random_graphs_merge_identically(self, rng):
        for trial in range(3):
            graph = random_uncertain_graph(rng, 8, 0.45)
            if not list(graph.weighted_edges()):
                continue
            sequential = top_k_mpds(graph, k=4, theta=30, seed=trial)
            plan = _plan_run(graph, 30, None, trial)
            outputs = _mpds_outputs(plan, "vectorized")
            random.Random(trial).shuffle(outputs)
            merged = merge_mpds_blocks(plan.blocks, plan.weights, outputs, 4)
            _assert_mpds_equal(merged, sequential)


class TestReplayedWorldCounters:
    def test_truncated_worlds_replay_and_count(self):
        # two certain disjoint edges tie 3 densest sets per world, so
        # per_world_limit=2 marks a sentinel in (almost) every block
        graph = UncertainGraph.from_weighted_edges(
            [("a", "b", 1.0), ("c", "d", 1.0), ("a", "c", 0.5)]
        )
        sequential = top_k_mpds(
            graph, k=5, theta=20, seed=1, per_world_limit=2,
            engine="vectorized",
        )
        assert sequential.replayed_worlds > 0
        plan = _plan_run(graph, 20, None, 1)
        outputs = _mpds_outputs(plan, "vectorized", per_world_limit=2)
        assert any(
            record is None for _, records, _ in outputs for record in records
        )
        _replay_truncated(plan, outputs, sequential_measure(), 2)
        merged = merge_mpds_blocks(plan.blocks, plan.weights, outputs, 5)
        _assert_mpds_equal(merged, sequential)

    def test_python_engine_truncation_replays_without_counting(self):
        graph = UncertainGraph.from_weighted_edges(
            [("a", "b", 1.0), ("c", "d", 1.0), ("a", "c", 0.5)]
        )
        sequential = top_k_mpds(
            graph, k=5, theta=16, seed=2, per_world_limit=2, engine="python"
        )
        assert sequential.replayed_worlds == 0
        plan = _plan_run(graph, 16, None, 2)
        outputs = _mpds_outputs(plan, "python", per_world_limit=2)
        _replay_truncated(plan, outputs, sequential_measure(), 2)
        merged = merge_mpds_blocks(plan.blocks, plan.weights, outputs, 5)
        _assert_mpds_equal(merged, sequential)


def sequential_measure():
    from repro.core.measures import EdgeDensity

    return EdgeDensity()


class TestNDSMerge:
    @pytest.mark.parametrize("engine", ["vectorized", "python"])
    def test_transactions_merge_identically(self, figure1, engine):
        sequential = top_k_nds(
            figure1, k=2, min_size=2, theta=44, seed=9, engine=engine
        )
        plan = _plan_run(figure1, 44, None, 9)
        outputs = _nds_outputs(plan, engine)
        random.Random(1).shuffle(outputs)
        merged = merge_nds_blocks(plan.blocks, plan.weights, outputs, 2, 2)
        assert merged.top == sequential.top
        assert merged.transactions == sequential.transactions
        assert merged.theta == sequential.theta


class TestMergeRefusesPartialGrids:
    def test_missing_block_raises(self, figure1):
        plan = _plan_run(figure1, 20, None, 4)
        outputs = _mpds_outputs(plan, "vectorized")[:-1]
        with pytest.raises(ValueError, match="missing"):
            merge_mpds_blocks(plan.blocks, plan.weights, outputs, 1)

    def test_duplicate_block_raises(self, figure1):
        plan = _plan_run(figure1, 20, None, 4)
        outputs = _mpds_outputs(plan, "vectorized")
        with pytest.raises(ValueError, match="duplicate"):
            merge_mpds_blocks(
                plan.blocks, plan.weights, outputs + [outputs[0]], 1
            )

    def test_mis_sized_block_raises(self, figure1):
        plan = _plan_run(figure1, 20, None, 4)
        outputs = _mpds_outputs(plan, "vectorized")
        index, records, replayed = outputs[0]
        outputs[0] = (index, records + [[]], replayed)
        with pytest.raises(ValueError, match="records"):
            merge_mpds_blocks(plan.blocks, plan.weights, outputs, 1)


class TestSharedMemoryPlumbing:
    def test_pack_attach_round_trip(self):
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 7),
            "c": np.array([True, False, True]),
        }
        shm, layout = pack_arrays(arrays)
        try:
            peer, attached = attach_arrays(shm.name, layout)
            try:
                for name, array in arrays.items():
                    np.testing.assert_array_equal(attached[name], array)
                    assert not attached[name].flags.writeable
            finally:
                close_attachment(peer, attached)
        finally:
            shm.close()
            shm.unlink()

    def test_indexed_graph_shared_payload_round_trip(self, figure1):
        indexed = IndexedGraph.from_uncertain(figure1)
        shm, layout = pack_arrays(indexed.shared_payload())
        try:
            peer, attached = attach_arrays(shm.name, layout)
            try:
                rebuilt = IndexedGraph.from_shared_payload(attached)
                assert rebuilt.nodes == indexed.nodes
                assert rebuilt.node_index == indexed.node_index
                np.testing.assert_array_equal(rebuilt.edge_u, indexed.edge_u)
                np.testing.assert_array_equal(rebuilt.probs, indexed.probs)
                for ours, theirs in zip(rebuilt.csr(), indexed.csr()):
                    np.testing.assert_array_equal(ours, theirs)
            finally:
                close_attachment(peer, attached)
        finally:
            shm.close()
            shm.unlink()

    def test_block_seeded_masks_are_reproducible(self, figure1):
        indexed = IndexedGraph.from_uncertain(figure1)
        seeds = derive_block_seeds(3, 4)
        first = [mc_block_masks(indexed, seed, 5) for seed in seeds]
        second = [mc_block_masks(indexed, seed, 5) for seed in seeds]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_drain_matches_sequential_worlds(self, figure1):
        """The drained matrix is the sequential sampler's exact stream."""
        drained = drain_mask_stream(
            VectorizedMonteCarloSampler(figure1, 13), 12
        )
        masks, weights, order_data, order_indptr = drained
        assert order_data is None and order_indptr is None
        reference = VectorizedMonteCarloSampler(figure1, 13).edge_masks(12)
        np.testing.assert_array_equal(masks, reference)
        assert weights.sum() == pytest.approx(1.0)

    def test_drain_lp_orders_replay_schedule(self, figure1):
        sampler = LazyPropagationSampler(figure1, 5)
        plan_sampler = LazyPropagationSampler(figure1, 5)
        from repro.engine.lazy import VectorizedLazyPropagationSampler

        masks, weights, order_data, order_indptr = drain_mask_stream(
            VectorizedLazyPropagationSampler.from_lazy_propagation(
                plan_sampler
            ),
            10,
        )
        assert masks.shape[0] == 10
        assert order_indptr[-1] == len(order_data)
        # replaying order slices materialises the python sampler's worlds
        indexed = IndexedGraph.from_uncertain(figure1)
        for i, weighted in enumerate(sampler.worlds(10)):
            order = order_data[order_indptr[i]:order_indptr[i + 1]]
            assert indexed.world_graph(masks[i], order) == weighted.graph

    def test_drain_rejects_unknown_samplers(self):
        with pytest.raises(ValueError, match="MC/LP/RSS"):
            drain_mask_stream(object(), 4)
