"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import random
from fractions import Fraction
from typing import List, Set, Tuple

import pytest

from repro.graph.graph import Graph
from repro.graph.uncertain import UncertainGraph


def random_graph(rng: random.Random, n: int, p: float) -> Graph:
    """A G(n, p) graph on nodes 0..n-1 (isolated nodes kept)."""
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_uncertain_graph(
    rng: random.Random, n: int, p: float, low: float = 0.05, high: float = 1.0
) -> UncertainGraph:
    """A G(n, p) topology with uniform edge probabilities."""
    graph = UncertainGraph()
    for node in range(n):
        graph.add_node(node)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v, rng.uniform(low, high))
    return graph


def brute_force_all_densest(
    graph: Graph, density_fn
) -> Tuple[Fraction, Set[frozenset]]:
    """All subsets maximising density_fn(subgraph)/|subset| (positive only)."""
    nodes = graph.nodes()
    best = Fraction(0)
    result: Set[frozenset] = set()
    for r in range(1, len(nodes) + 1):
        for subset in itertools.combinations(nodes, r):
            sub = graph.subgraph(subset)
            density = Fraction(density_fn(sub), r)
            if density > best:
                best = density
                result = {frozenset(subset)}
            elif density == best and best > 0:
                result.add(frozenset(subset))
    return best, result


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(20230613)


@pytest.fixture
def triangle_graph() -> Graph:
    """K3 on nodes 1..3."""
    return Graph.from_edges([(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def figure1():
    """The paper's Fig. 1 uncertain graph."""
    from repro.datasets.paper_examples import figure1_graph
    return figure1_graph()
