"""Vectorised exact MPDS / containment solver over bitmask-encoded worlds.

The reference exact solver (:mod:`repro.core.exact`) materialises each of
the ``2^m`` possible worlds as a :class:`Graph` and runs the full
flow-based all-densest enumeration inside it -- faithful to what the
paper's Table XV benchmarks, but minutes of Python per million worlds.

This module computes the *same* exact answers orders of magnitude faster
by never materialising a world:

* a world is an ``m``-bit integer (bit ``i`` = edge ``i`` present), so
  ``numpy`` holds all worlds as one vector;
* an *instance* (an edge, an h-clique, or a pattern occurrence) is
  present in a world iff its edge mask is a submask, a single vectorised
  comparison across every world at once;
* the density of a node subset ``S`` in every world is the per-world
  count of instances whose nodes lie inside ``S``, divided by ``|S|`` --
  maximised with exact integer cross-multiplication, so ties are decided
  without floating error.

The results are bit-for-bit the same as the reference solver's (tested),
which makes exact ground truth affordable for the Fig. 17/18 accuracy
experiments on the paper's ER7/ER9-scale graphs (2^20 worlds in seconds).

Supported measures: :class:`EdgeDensity`, :class:`CliqueDensity`,
:class:`PatternDensity`.  Guards refuse graphs whose ``2^m`` worlds or
``2^n`` subsets would not fit in memory.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from ..cliques.enumeration import enumerate_cliques
from ..graph.graph import Edge, Node, canonical_edge
from ..graph.uncertain import UncertainGraph
from ..patterns.matching import enumerate_instances, instance_nodes
from .measures import (
    CliqueDensity,
    DensityMeasure,
    EdgeDensity,
    NodeSet,
    PatternDensity,
)
from .results import MPDSResult, ScoredNodeSet

#: refuse to allocate more than this many world slots (2^26 = 512 MiB of
#: float64 probabilities)
MAX_EDGES = 26
#: refuse more than this many node subsets
MAX_NODES = 16


def _instances(
    graph: UncertainGraph, measure: DensityMeasure
) -> List[Tuple[FrozenSet[Node], Tuple[Edge, ...]]]:
    """Return (node set, edge tuple) of every instance of the measure's
    motif in the deterministic version of ``graph``."""
    world = graph.deterministic_version()
    if isinstance(measure, EdgeDensity):
        return [
            (frozenset(edge), (canonical_edge(*edge),))
            for edge in world.edges()
        ]
    if isinstance(measure, CliqueDensity):
        result = []
        for clique in enumerate_cliques(world, measure.h):
            edges = tuple(
                canonical_edge(u, v)
                for u, v in itertools.combinations(clique, 2)
            )
            result.append((frozenset(clique), edges))
        return result
    if isinstance(measure, PatternDensity):
        result = []
        for instance in enumerate_instances(world, measure.pattern):
            result.append((instance_nodes(instance), tuple(instance)))
        return result
    raise TypeError(
        f"bitmask exact solver supports edge / clique / pattern density, "
        f"not {type(measure).__name__}"
    )


class _WorldEnsemble:
    """All ``2^m`` worlds of an uncertain graph, vectorised.

    Bundles what both exact queries need: per-world probabilities, the
    per-instance presence vectors, subset iteration, and the per-world
    maximum density as an exact integer fraction (``best_num/best_den``).
    """

    def __init__(
        self,
        graph: UncertainGraph,
        measure: DensityMeasure,
        max_edges: int,
        max_nodes: int,
    ) -> None:
        self.nodes = graph.nodes()
        edges = [canonical_edge(u, v) for u, v in graph.edges()]
        n, m = len(self.nodes), len(edges)
        if m > max_edges:
            raise ValueError(
                f"{m} edges -> 2^{m} worlds exceeds the max_edges="
                f"{max_edges} guard; use the sampling estimator instead"
            )
        if n > max_nodes:
            raise ValueError(
                f"{n} nodes -> 2^{n} subsets exceeds the max_nodes="
                f"{max_nodes} guard; use the sampling estimator instead"
            )
        self.num_nodes = n
        self.empty = m == 0
        if self.empty:
            return
        edge_bit = {edge: i for i, edge in enumerate(edges)}
        self.node_bit = {node: i for i, node in enumerate(self.nodes)}

        worlds = np.arange(1 << m, dtype=np.uint64)

        # Pr(world) = prod_i [bit_i ? p_i : 1 - p_i]
        self.prob = np.ones(1 << m, dtype=np.float64)
        for u, v, p in graph.weighted_edges():
            bit = (worlds >> np.uint64(edge_bit[canonical_edge(u, v)])) \
                & np.uint64(1)
            self.prob *= np.where(bit.astype(bool), p, 1.0 - p)

        # one presence vector per instance: a world contains the instance
        # iff the instance's edge mask is a submask of the world
        self._presence: List[np.ndarray] = []
        self._instance_node_masks: List[int] = []
        for inst_nodes, inst_edges in _instances(graph, measure):
            mask = np.uint64(0)
            for edge in inst_edges:
                mask |= np.uint64(1 << edge_bit[edge])
            self._presence.append(((worlds & mask) == mask).astype(np.uint32))
            node_mask = 0
            for node in inst_nodes:
                node_mask |= 1 << self.node_bit[node]
            self._instance_node_masks.append(node_mask)

        self._zeros = np.zeros(1 << m, dtype=np.uint32)

        # per-world maximum density as the exact fraction num/den
        self.best_num = np.zeros(1 << m, dtype=np.int64)
        self.best_den = np.ones(1 << m, dtype=np.int64)
        for subset_mask, size in self.subsets():
            counts = self.counts(subset_mask)
            better = counts * self.best_den > self.best_num * size
            if better.any():
                self.best_num = np.where(better, counts, self.best_num)
                self.best_den = np.where(better, size, self.best_den)
        self.positive = self.best_num > 0

    def subsets(self) -> Iterable[Tuple[int, int]]:
        """Yield (subset bitmask, subset size) for every non-empty subset."""
        for mask in range(1, 1 << self.num_nodes):
            yield mask, bin(mask).count("1")

    def counts(self, subset_mask: int) -> np.ndarray:
        """Per-world count of instances lying inside the subset."""
        total = self._zeros
        for node_mask, present in zip(
            self._instance_node_masks, self._presence
        ):
            if node_mask & ~subset_mask == 0:
                total = total + present
        return total.astype(np.int64)

    def achieves_maximum(self, subset_mask: int, size: int) -> np.ndarray:
        """Boolean vector: subset's density equals the world's (positive)
        maximum."""
        counts = self.counts(subset_mask)
        return self.positive & (
            counts * self.best_den == self.best_num * size
        )

    def to_node_set(self, subset_mask: int) -> NodeSet:
        return frozenset(
            node for node in self.nodes
            if subset_mask >> self.node_bit[node] & 1
        )


def bitmask_candidate_probabilities(
    graph: UncertainGraph,
    measure: Optional[DensityMeasure] = None,
    max_edges: int = MAX_EDGES,
    max_nodes: int = MAX_NODES,
) -> Dict[NodeSet, float]:
    """Return tau(U) for every node set with tau(U) > 0, exactly.

    Equivalent to :func:`repro.core.exact.exact_candidate_probabilities`
    but vectorised over all ``2^m`` worlds at once.
    """
    measure = measure or EdgeDensity()
    ensemble = _WorldEnsemble(graph, measure, max_edges, max_nodes)
    if ensemble.empty:
        return {}
    taus: Dict[NodeSet, float] = {}
    for subset_mask, size in ensemble.subsets():
        achieves = ensemble.achieves_maximum(subset_mask, size)
        if achieves.any():
            tau = float(ensemble.prob[achieves].sum())
            if tau > 0.0:
                taus[ensemble.to_node_set(subset_mask)] = tau
    return taus


def bitmask_union_distribution(
    graph: UncertainGraph,
    measure: Optional[DensityMeasure] = None,
    max_edges: int = MAX_EDGES,
    max_nodes: int = MAX_NODES,
) -> Dict[NodeSet, float]:
    """Return Pr[maximum-sized densest subgraph = S] for every S, exactly.

    By the [59] generalisation the paper relies on (Algorithm 5, footnote
    5), the maximum-sized densest subgraph of a world is the union of all
    its densest node sets, and a node set lies in *some* densest subgraph
    iff it lies in that union.  This distribution is therefore the exact
    sufficient statistic for every containment query:
    ``gamma(U) = sum over S >= U of Pr[S]`` (:func:`bitmask_gamma`).
    """
    measure = measure or EdgeDensity()
    ensemble = _WorldEnsemble(graph, measure, max_edges, max_nodes)
    if ensemble.empty:
        return {}
    union = np.zeros_like(ensemble.best_num)
    for subset_mask, size in ensemble.subsets():
        achieves = ensemble.achieves_maximum(subset_mask, size)
        if achieves.any():
            union = np.where(achieves, union | subset_mask, union)
    distribution: Dict[NodeSet, float] = {}
    for union_mask in np.unique(union[ensemble.positive]):
        weight = float(
            ensemble.prob[ensemble.positive & (union == union_mask)].sum()
        )
        if weight > 0.0:
            distribution[ensemble.to_node_set(int(union_mask))] = weight
    return distribution


def bitmask_gamma(
    graph: UncertainGraph,
    nodes: Iterable[Node],
    measure: Optional[DensityMeasure] = None,
    max_edges: int = MAX_EDGES,
    max_nodes: int = MAX_NODES,
) -> float:
    """Exact containment probability gamma(U) (Definition 5), vectorised.

    Same answer as :func:`repro.core.exact.exact_gamma` (tested).
    """
    target = frozenset(nodes)
    distribution = bitmask_union_distribution(
        graph, measure, max_edges=max_edges, max_nodes=max_nodes
    )
    return sum(
        weight for maximal, weight in distribution.items()
        if target <= maximal
    )


def bitmask_top_k_nds(
    graph: UncertainGraph,
    k: int = 1,
    min_size: int = 2,
    measure: Optional[DensityMeasure] = None,
    max_edges: int = MAX_EDGES,
    max_nodes: int = MAX_NODES,
) -> "NDSResult":
    """Exact top-k NDS (Problem 3) via the bitmask engine.

    Same result as :func:`repro.core.exact.exact_top_k_nds` (tested); the
    closed-set mining runs over the *distinct* maximum-sized densest
    subgraphs from :func:`bitmask_union_distribution` instead of one
    transaction per world, so it also scales to far more worlds.
    """
    from ..itemsets.tfp import naive_closed_itemsets
    from .results import NDSResult

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if min_size < 1:
        raise ValueError(f"min_size (l_m) must be >= 1, got {min_size}")
    distribution = bitmask_union_distribution(
        graph, measure, max_edges=max_edges, max_nodes=max_nodes
    )
    if not distribution:
        return NDSResult(top=[], theta=0, transactions=0)
    maximal_sets = list(distribution.items())
    closed = naive_closed_itemsets(
        [list(maximal) for maximal, _ in maximal_sets], min_size
    )
    scored: List[ScoredNodeSet] = []
    for itemset in closed:
        gamma = sum(
            weight for maximal, weight in maximal_sets
            if itemset.items <= maximal
        )
        scored.append(ScoredNodeSet(frozenset(itemset.items), gamma))
    scored.sort(
        key=lambda s: (-s.probability, len(s.nodes), sorted(map(repr, s.nodes)))
    )
    return NDSResult(top=scored[:k], theta=0, transactions=len(maximal_sets))


def bitmask_top_k_mpds(
    graph: UncertainGraph,
    k: int = 1,
    measure: Optional[DensityMeasure] = None,
    max_edges: int = MAX_EDGES,
    max_nodes: int = MAX_NODES,
) -> MPDSResult:
    """Exact top-k MPDS via the bitmask engine (same result object as
    :func:`repro.core.exact.exact_top_k_mpds`)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    taus = bitmask_candidate_probabilities(
        graph, measure, max_edges=max_edges, max_nodes=max_nodes
    )
    ranked = sorted(
        taus.items(),
        key=lambda item: (-item[1], len(item[0]), sorted(map(repr, item[0]))),
    )
    top = [ScoredNodeSet(nodes, tau) for nodes, tau in ranked[:k]]
    return MPDSResult(
        top=top,
        candidates=dict(taus),
        theta=0,
        worlds_with_densest=len(taus),
        densest_counts=[],
    )
