"""k-clique listing in the style of kClist (Danisch, Balalau, Sozio [56]).

Algorithm 2 of the paper needs, per sampled world: all h-cliques, per-node
h-clique degrees, and the set of (h-1)-cliques contained in h-cliques
(together with which node completes each of them).  All of that is derived
from a single degeneracy-ordered listing pass.

Cliques are reported as sorted tuples so they can be used as dict keys.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..graph.graph import Graph, Node

Clique = Tuple[Node, ...]


def enumerate_cliques(graph: Graph, h: int) -> Iterator[Clique]:
    """Yield every h-clique of ``graph`` exactly once, as a sorted tuple.

    ``h = 1`` yields all nodes; ``h = 2`` all edges.  Uses the degeneracy
    orientation: each node only extends cliques with neighbors later in a
    degeneracy ordering, so each clique is generated from its earliest node.
    """
    if h < 1:
        raise ValueError(f"clique size must be >= 1, got {h}")
    if h == 1:
        for node in graph:
            yield (node,)
        return
    ordering = graph.degeneracy_ordering()
    position = {node: i for i, node in enumerate(ordering)}
    # out-neighbors in the degeneracy orientation
    later: Dict[Node, List[Node]] = {
        node: sorted(
            (nbr for nbr in graph.neighbors(node) if position[nbr] > position[node]),
            key=lambda x: position[x],
        )
        for node in ordering
    }

    def extend(prefix: List[Node], candidates: List[Node], depth: int) -> Iterator[Clique]:
        if depth == h:
            yield tuple(sorted(prefix, key=repr))
            return
        for i, node in enumerate(candidates):
            # prune: not enough candidates left to reach size h
            if len(candidates) - i < h - depth:
                break
            prefix.append(node)
            if depth + 1 == h:
                yield tuple(sorted(prefix, key=repr))
            else:
                narrowed = [
                    nbr for nbr in candidates[i + 1 :] if graph.has_edge(node, nbr)
                ]
                yield from extend(prefix, narrowed, depth + 1)
            prefix.pop()

    for node in ordering:
        yield from extend([node], later[node], 1)


def count_cliques(graph: Graph, h: int) -> int:
    """Return the number of h-cliques, mu_h(G) (Definition 2)."""
    return sum(1 for _ in enumerate_cliques(graph, h))


def clique_degrees(graph: Graph, h: int) -> Dict[Node, int]:
    """Return ``deg_G(v, h)`` for every node (Definition 6).

    The h-clique degree of ``v`` is the number of h-cliques containing it.
    Nodes in no h-clique map to 0.
    """
    degrees: Dict[Node, int] = {node: 0 for node in graph}
    for clique in enumerate_cliques(graph, h):
        for node in clique:
            degrees[node] += 1
    return degrees


def sub_cliques_of_h_cliques(
    graph: Graph, h: int
) -> Tuple[List[Clique], Dict[Clique, List[Node]]]:
    """Return (Lambda, completions) for Algorithm 2 / Algorithm 6.

    ``Lambda`` is the set of all (h-1)-cliques contained in at least one
    h-clique (line 3 of Algorithm 2).  ``completions[lam]`` lists, with
    multiplicity one, the nodes ``v`` such that ``lam + v`` is an h-clique;
    these become the capacity-1 arcs ``v -> lam`` of the flow network.
    """
    completions: Dict[Clique, set] = {}
    for clique in enumerate_cliques(graph, h):
        members = set(clique)
        for excluded in clique:
            lam = tuple(sorted(members - {excluded}, key=repr))
            completions.setdefault(lam, set()).add(excluded)
    lambdas = sorted(completions, key=repr)
    return lambdas, {lam: sorted(nodes, key=repr) for lam, nodes in completions.items()}
