"""Engine benchmark: vectorised vs pure-Python possible-world pipeline.

Monte Carlo + edge-density MPDS at theta = 160 on a 500-node G(n, p)
uncertain graph -- the workload of Algorithm 1 that dominates the Fig. 16
runtime plots.  The vectorised engine must be >= 3x faster than the
pure-Python pipeline while returning *identical* estimates for the same
seed (its contract; see ``repro/engine``).

Timings are split into the two stages of Algorithm 1 so speedups are
attributable:

* **sampling** -- drawing the possible worlds (per-edge Bernoulli flips
  vs one numpy batch);
* **world evaluation** -- enumerating all densest subgraphs per world
  (object Graph + FlowNetwork machinery vs the CSR/bitmask substrate).

The vectorised evaluation stage is further split into the engine's own
sub-stages (``EngineMeasure.stage_stats`` via the session counters):
*stream* (pulling masks off the batch sampler), *bound* (the batched
cross-world kernels: lockstep peel bound + vector-k core), and *exact*
(the warm parametric flow chain on the survivors).  When numba is
installed a third engine column (``engine="jit"``) is timed as well;
without numba the table records the fallback instead.

The per-stage table is archived as
``benchmarks/results/bench_engine_stages.txt`` on every run (pytest or
``python -m benchmarks.bench_engine [--tiny]``), so the evaluation-stage
trajectory is tracked across PRs.
"""

from __future__ import annotations

import argparse
import random
import time

from repro.core.mpds import top_k_mpds
from repro.engine import HAVE_NUMBA, VectorizedMonteCarloSampler
from repro.graph.uncertain import UncertainGraph
from repro.sampling import (
    LazyPropagationSampler,
    MonteCarloSampler,
    RecursiveStratifiedSampler,
)

from .conftest import emit

BENCH_N = 500
BENCH_EDGE_PROB = 0.01
BENCH_THETA = 160
BENCH_SEED = 7

#: per-sampler comparison scale (three samplers x two engines per run)
SAMPLER_BENCH_N = 300
SAMPLER_BENCH_EDGE_PROB = 0.015
SAMPLER_BENCH_THETA = 60

#: --tiny smoke scale (CI artifact; seconds, not minutes)
TINY_N = 120
TINY_EDGE_PROB = 0.03
TINY_THETA = 24


def _bench_graph(
    seed: int = 2023, n: int = BENCH_N, edge_prob: float = BENCH_EDGE_PROB
) -> UncertainGraph:
    """A G(n, p) topology with uniform edge probabilities."""
    rng = random.Random(seed)
    graph = UncertainGraph()
    for node in range(n):
        graph.add_node(node)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_prob:
                graph.add_edge(u, v, rng.uniform(0.3, 0.9))
    return graph


def run_stage_benchmark(
    n: int = BENCH_N,
    edge_prob: float = BENCH_EDGE_PROB,
    theta: int = BENCH_THETA,
    seed: int = BENCH_SEED,
) -> dict:
    """Time sampling / world-evaluation / end-to-end for both engines.

    The sampling stage is measured by draining each engine's sampler
    without evaluating worlds; the world-evaluation stage is the
    end-to-end estimator time minus the sampling time (evaluation is the
    only other per-world work Algorithm 1 does).  The vectorised run
    goes through a :class:`repro.session.Session` so its evaluation
    stage can be split further (stream / bound / exact, plus the
    primed/filtered world counters); when numba is installed the same
    query is timed a third time under ``engine="jit"``.  Returns a dict
    with per-stage seconds, per-stage speedups, the rendered table, and
    the results (whose estimates must all be identical).
    """
    from repro.session import Session

    graph = _bench_graph(seed=2023, n=n, edge_prob=edge_prob)

    start = time.perf_counter()
    vector_sampler = VectorizedMonteCarloSampler(graph, seed)
    for _ in vector_sampler.mask_worlds(theta):
        pass
    vector_sampling = time.perf_counter() - start

    def timed_session_run(engine: str):
        start = time.perf_counter()
        with Session(graph, engine=engine, cache_worlds=False) as session:
            result = (
                session.query()
                .sampler(theta=theta, seed=seed)
                .top_k(3)
                .mpds()
            )
            stats = session.stats_snapshot()
        return time.perf_counter() - start, result, stats

    # fast engines run before the long pure-Python leg so their stage
    # timings are not polluted by its thermal / allocator aftermath
    vector_total, vector_result, vector_stats = timed_session_run(
        "vectorized"
    )

    jit = None
    if HAVE_NUMBA:
        jit_total, jit_result, _jit_stats = timed_session_run("jit")
        jit = {"total": jit_total, "result": jit_result}

    start = time.perf_counter()
    sampler = MonteCarloSampler(graph, seed)
    for _ in sampler.worlds(theta):
        pass
    python_sampling = time.perf_counter() - start

    start = time.perf_counter()
    python_result = top_k_mpds(
        graph, k=3, theta=theta, seed=seed, engine="python"
    )
    python_total = time.perf_counter() - start

    python_eval = python_total - python_sampling
    vector_eval = vector_total - vector_sampling
    split = {
        "stream": vector_stats["eval_sampling_seconds"],
        "bound": vector_stats["eval_bound_seconds"],
        "exact": vector_stats["eval_exact_seconds"],
        "primed": vector_stats["worlds_primed"],
        "filtered": vector_stats["worlds_filtered"],
    }
    identical = (
        python_result.candidates == vector_result.candidates
        and python_result.top == vector_result.top
        and python_result.densest_counts == vector_result.densest_counts
    )

    if jit is not None:
        jit_result = jit.pop("result")
        identical = identical and (
            python_result.candidates == jit_result.candidates
            and python_result.top == jit_result.top
            and python_result.densest_counts == jit_result.densest_counts
        )
        jit["evaluation"] = jit["total"] - vector_sampling

    def row(stage: str, py: float, vec: float) -> str:
        return (
            f"{stage:18s} {py:10.3f} s {vec:12.3f} s "
            f"{py / vec if vec > 0 else float('inf'):9.2f} x"
        )

    lines = [
        f"graph: G(n={n}, p={edge_prob}) m={graph.number_of_edges()} "
        f"theta={theta} seed={seed}",
        f"{'stage':18s} {'python':>12s} {'vectorized':>14s} {'speedup':>10s}",
        row("sampling", python_sampling, vector_sampling),
        row("world evaluation", python_eval, vector_eval),
        f"  eval split: stream={split['stream']:.3f} s "
        f"bound={split['bound']:.3f} s exact={split['exact']:.3f} s "
        f"(worlds primed={split['primed']}, filtered={split['filtered']})",
        row("end-to-end", python_total, vector_total),
    ]
    if jit is not None:
        lines.append(row("world eval (jit)", python_eval, jit["evaluation"]))
        lines.append(row("end-to-end (jit)", python_total, jit["total"]))
    else:
        lines.append(
            "jit tier: numba not installed; engine='jit' falls back to "
            "the vectorized row above (identical estimates)"
        )
    lines.append(f"identical estimates: {identical}")
    return {
        "python": {
            "sampling": python_sampling,
            "evaluation": python_eval,
            "total": python_total,
        },
        "vectorized": {
            "sampling": vector_sampling,
            "evaluation": vector_eval,
            "total": vector_total,
        },
        "stage_split": split,
        "jit": jit,
        "identical": identical,
        "table": "\n".join(lines),
        "results": (python_result, vector_result),
    }


def test_engine_speedup_with_identical_estimates(benchmark):
    report = benchmark.pedantic(run_stage_benchmark, rounds=1, iterations=1)
    python_result, vector_result = report["results"]

    assert python_result.candidates == vector_result.candidates
    assert python_result.top == vector_result.top
    assert python_result.densest_counts == vector_result.densest_counts

    emit("bench_engine_stages", report["table"])
    split = report["stage_split"]
    assert split["primed"] == BENCH_THETA  # every world saw the pre-pass
    assert split["bound"] > 0.0 and split["exact"] > 0.0
    speedup = report["python"]["total"] / report["vectorized"]["total"]
    eval_speedup = (
        report["python"]["evaluation"] / report["vectorized"]["evaluation"]
    )
    assert speedup >= 3.0, (
        f"vectorized engine only {speedup:.2f}x faster end-to-end"
    )
    assert eval_speedup >= 3.0, (
        f"vectorized world evaluation only {eval_speedup:.2f}x faster"
    )


def test_engine_speedup_per_sampler(benchmark):
    """Widened fast path: MC vs LP vs RSS, python vs vectorised engine.

    The per-sampler speedups track the perf trajectory of the widened
    engine: each strategy must return identical estimates on both engines
    and the vectorised path must stay faster for every one of them (the
    win comes mostly from the mask-native measure pipeline, which all
    three samplers now feed).
    """
    graph = _bench_graph(
        n=SAMPLER_BENCH_N, edge_prob=SAMPLER_BENCH_EDGE_PROB
    )
    factories = {
        "MC": lambda: MonteCarloSampler(graph, BENCH_SEED),
        "LP": lambda: LazyPropagationSampler(graph, BENCH_SEED),
        "RSS": lambda: RecursiveStratifiedSampler(graph, BENCH_SEED),
    }

    def run_all():
        rows = {}
        for name, factory in factories.items():
            timings = {}
            results = {}
            for engine in ("python", "vectorized"):
                start = time.perf_counter()
                results[engine] = top_k_mpds(
                    graph,
                    k=3,
                    theta=SAMPLER_BENCH_THETA,
                    sampler=factory(),
                    engine=engine,
                )
                timings[engine] = time.perf_counter() - start
            rows[name] = (timings, results)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"graph: G(n={SAMPLER_BENCH_N}, p={SAMPLER_BENCH_EDGE_PROB}) "
        f"m={graph.number_of_edges()} theta={SAMPLER_BENCH_THETA} "
        f"seed={BENCH_SEED}",
    ]
    for name, (timings, results) in rows.items():
        identical = (
            results["python"].candidates == results["vectorized"].candidates
        )
        speedup = timings["python"] / timings["vectorized"]
        lines.append(
            f"{name:3s} python={timings['python']:7.2f}s "
            f"vectorized={timings['vectorized']:7.2f}s "
            f"speedup={speedup:6.2f}x identical={identical}"
        )
        assert identical, f"{name}: engines disagree"
        assert speedup > 1.2, (
            f"vectorized {name} only {speedup:.2f}x faster"
        )
    emit("bench_engine_per_sampler", "\n".join(lines))


def test_engine_sampling_stage_speedup(benchmark):
    """World generation alone: batch Bernoulli draws vs per-edge flips."""
    graph = _bench_graph()
    theta = 400

    def sample_python():
        sampler = MonteCarloSampler(graph, BENCH_SEED)
        return sum(1 for _ in sampler.worlds(theta))

    def sample_vectorized():
        sampler = VectorizedMonteCarloSampler(graph, BENCH_SEED)
        return int(sampler.edge_masks(theta).sum())

    def run():
        start = time.perf_counter()
        sample_python()
        python_seconds = time.perf_counter() - start
        start = time.perf_counter()
        sample_vectorized()
        vector_seconds = time.perf_counter() - start
        return python_seconds, vector_seconds

    python_seconds, vector_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = python_seconds / vector_seconds
    emit(
        "bench_engine_sampling",
        f"theta={theta} python={python_seconds:.3f}s "
        f"vectorized={vector_seconds:.3f}s speedup={speedup:.1f}x",
    )
    assert speedup > 1.0


def main(argv=None) -> int:
    """Standalone entry: ``python -m benchmarks.bench_engine [--tiny]``.

    ``--tiny`` runs the smoke-scale per-stage benchmark (the CI artifact
    path); without it the full bench-scale workload runs.  Either way the
    per-stage table lands in ``benchmarks/results/bench_engine_stages.txt``
    and a non-zero exit code signals an estimate mismatch.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke scale (CI): small graph, few worlds",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        report = run_stage_benchmark(
            n=TINY_N, edge_prob=TINY_EDGE_PROB, theta=TINY_THETA
        )
    else:
        report = run_stage_benchmark()
    emit("bench_engine_stages", report["table"])
    return 0 if report["identical"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke step
    raise SystemExit(main())
