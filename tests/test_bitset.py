"""Property tests for the bit-packed world-mask substrate.

The packing layer is load-bearing for the whole determinism contract
(a packed :class:`WorldStore` must replay byte-identical worlds), so its
algebra is pinned directly: pack -> unpack round-trips on randomized
matrices whose widths hit every word-boundary regime
(``m mod 64 in {0, 1, 63}``), popcounts against the ``np.sum`` oracle
(on both the ``np.bitwise_count`` fast path and the 16-bit LUT
fallback), the AND/OR column kernels, and the degenerate shapes
(zero-theta, zero-width, empty and full worlds).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.bitset as bitset
from repro.engine.bitset import (
    PackedMasks,
    WORD_BITS,
    alive_edges,
    and_reduce,
    column_counts,
    or_reduce,
    pack_row,
    pack_rows,
    popcount,
    row_popcounts,
    unpack_row,
    unpack_rows,
    words_for,
)

#: widths covering every ``m mod 64`` regime the packer must survive:
#: exact multiples, one bit into a fresh word, one bit short of full
BOUNDARY_WIDTHS = [
    0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 320, 447, 448, 449,
]


def random_masks(seed: int, t: int, m: int, density: float = 0.5):
    rng = np.random.default_rng(seed)
    return rng.random((t, m)) < density


class TestRoundTrip:
    @pytest.mark.parametrize("m", BOUNDARY_WIDTHS)
    def test_randomized_round_trip_at_word_boundaries(self, m):
        masks = random_masks(m + 1, 17, m)
        words = pack_rows(masks)
        assert words.shape == (17, words_for(m))
        assert words.dtype == np.uint64
        restored = unpack_rows(words, m)
        assert restored.dtype == np.bool_
        np.testing.assert_array_equal(restored, masks)

    @pytest.mark.parametrize("density", [0.0, 0.05, 0.5, 0.95, 1.0])
    def test_round_trip_across_densities(self, density):
        masks = random_masks(3, 9, 130, density)
        np.testing.assert_array_equal(
            unpack_rows(pack_rows(masks), 130), masks
        )

    def test_zero_theta_round_trips(self):
        masks = np.zeros((0, 70), dtype=bool)
        words = pack_rows(masks)
        assert words.shape == (0, 2)
        assert unpack_rows(words, 70).shape == (0, 70)

    def test_zero_width_round_trips(self):
        masks = np.zeros((5, 0), dtype=bool)
        words = pack_rows(masks)
        assert words.shape == (5, 0)
        assert unpack_rows(words, 0).shape == (5, 0)

    def test_empty_and_full_worlds(self):
        empty = np.zeros((4, 100), dtype=bool)
        full = np.ones((4, 100), dtype=bool)
        assert not pack_rows(empty).any()
        np.testing.assert_array_equal(unpack_rows(pack_rows(full), 100), full)

    def test_single_row_helpers_match_matrix_forms(self):
        mask = random_masks(3, 1, 77)[0]
        row = pack_row(mask)
        np.testing.assert_array_equal(row, pack_rows(mask[None, :])[0])
        np.testing.assert_array_equal(unpack_row(row, 77), mask)

    def test_padding_bits_are_zero(self):
        # all-ones masks must not set bits past m in the last word,
        # or popcounts over raw words would overcount
        for m in (1, 63, 65, 100):
            words = pack_rows(np.ones((2, m), dtype=bool))
            assert row_popcounts(words).tolist() == [m, m]

    def test_bit_position_layout_is_lsb_first(self):
        mask = np.zeros(70, dtype=bool)
        mask[0] = mask[64] = True
        words = pack_row(mask)
        assert words[0] == 1 and words[1] == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="mask matrix"):
            pack_rows(np.zeros(8, dtype=bool))
        with pytest.raises(ValueError, match="word matrix"):
            unpack_rows(np.zeros(2, dtype=np.uint64), 64)
        with pytest.raises(ValueError, match="columns"):
            unpack_rows(np.zeros((2, 2), dtype=np.uint64), 64)
        with pytest.raises(ValueError, match=">= 0"):
            words_for(-1)


class TestPopcount:
    @pytest.mark.parametrize("m", [1, 63, 64, 65, 200])
    def test_row_popcounts_match_np_sum_oracle(self, m):
        masks = random_masks(m, 23, m, 0.37)
        np.testing.assert_array_equal(
            row_popcounts(pack_rows(masks)),
            masks.sum(axis=1, dtype=np.int64),
        )

    def test_popcount_extremes(self):
        words = np.array([0, 1, np.iinfo(np.uint64).max], dtype=np.uint64)
        assert popcount(words).tolist() == [0, 1, 64]

    def test_lut_fallback_matches_fast_path(self, monkeypatch):
        # force the 16-bit LUT path (pre-numpy-2 hosts) and pin it
        # against the same oracle
        masks = random_masks(99, 11, 150, 0.6)
        words = pack_rows(masks)
        fast = popcount(words)
        monkeypatch.setattr(bitset, "_HAS_BITWISE_COUNT", False)
        monkeypatch.setattr(bitset, "_POP16", None)
        slow = popcount(words)
        np.testing.assert_array_equal(fast, slow)
        np.testing.assert_array_equal(
            row_popcounts(words), masks.sum(axis=1, dtype=np.int64)
        )

    def test_column_counts_match_np_sum_oracle(self):
        masks = random_masks(5, 200, 77, 0.3)
        np.testing.assert_array_equal(
            column_counts(pack_rows(masks), 77, block=64),
            masks.sum(axis=0, dtype=np.int64),
        )


class TestReductions:
    def test_and_or_match_boolean_oracle(self):
        masks = random_masks(8, 9, 130, 0.8)
        words = pack_rows(masks)
        np.testing.assert_array_equal(
            unpack_row(and_reduce(words), 130), masks.all(axis=0)
        )
        np.testing.assert_array_equal(
            unpack_row(or_reduce(words), 130), masks.any(axis=0)
        )

    def test_empty_reductions(self):
        empty = np.zeros((0, 2), dtype=np.uint64)
        with pytest.raises(ValueError, match="at least one row"):
            and_reduce(empty)
        assert not or_reduce(empty).any()

    def test_alive_edges_matches_flatnonzero(self):
        mask = random_masks(7, 1, 140, 0.2)[0]
        np.testing.assert_array_equal(
            alive_edges(pack_row(mask), 140), np.flatnonzero(mask)
        )


class TestPackedMasks:
    def test_matrix_protocol(self):
        masks = random_masks(42, 12, 100)
        packed = PackedMasks.from_bool(masks)
        assert packed.shape == (12, 100)
        assert len(packed) == 12
        assert packed.nbytes == 12 * 2 * 8
        np.testing.assert_array_equal(packed[3], masks[3])
        np.testing.assert_array_equal(packed.rows(2, 7), masks[2:7])
        np.testing.assert_array_equal(packed.to_bool(), masks)
        for i, row in enumerate(packed.iter_bool_rows()):
            np.testing.assert_array_equal(row, masks[i])
        np.testing.assert_array_equal(
            packed.row_popcounts(), masks.sum(axis=1)
        )
        assert "worlds=12" in repr(packed)

    def test_rejects_mismatched_words(self):
        with pytest.raises(ValueError, match="columns"):
            PackedMasks(np.zeros((3, 2), dtype=np.uint64), 200)
        with pytest.raises(ValueError, match="words"):
            PackedMasks(np.zeros(4, dtype=np.uint64), 64)

    def test_zero_copy_over_readonly_words(self):
        # the shared-memory attach path wraps read-only views in place
        masks = random_masks(1, 5, 80)
        words = pack_rows(masks)
        words.flags.writeable = False
        packed = PackedMasks(words, 80)
        assert packed.words is words
        np.testing.assert_array_equal(packed.to_bool(), masks)

    @pytest.mark.parametrize("m", [5, 64, 100, 130])
    def test_set_column_surgery_matches_boolean_oracle(self, m):
        masks = random_masks(7, 20, m)
        packed = PackedMasks.from_bool(masks)
        j = m // 2
        column = random_masks(8, 20, 1)[:, 0]
        old = packed.set_column(j, column)
        np.testing.assert_array_equal(old, masks[:, j])
        expected = masks.copy()
        expected[:, j] = column
        np.testing.assert_array_equal(packed.to_bool(), expected)
        # padding bits stay zero through surgery
        tail = packed.words[:, -1] >> np.uint64(m % WORD_BITS or WORD_BITS)
        assert not tail.any()

    def test_set_column_invalidates_the_row_block_cache(self):
        # regression: the 64-row unpack cache must not serve rows drawn
        # before an in-place column write (read, mutate, re-read)
        masks = random_masks(9, 70, 90)
        packed = PackedMasks.from_bool(masks)
        before = packed[3].copy()          # fills the rows-0..63 block
        column = ~masks[:, 10]
        packed.set_column(10, column)
        after = packed[3]                  # same block, post-surgery
        assert after[10] == column[3]
        assert before[10] == masks[3, 10]
        assert after[10] != before[10]
        # rows outside the mutated column are untouched
        keep = np.ones(90, dtype=bool)
        keep[10] = False
        np.testing.assert_array_equal(after[keep], before[keep])

    def test_set_column_copies_readonly_words_before_writing(self):
        # shm-attached stores publish read-only words; surgery must not
        # die on (or write through) the shared view
        masks = random_masks(11, 6, 80)
        words = pack_rows(masks)
        words.flags.writeable = False
        packed = PackedMasks(words, 80)
        packed.set_column(0, ~masks[:, 0])
        assert packed.words is not words
        assert not words.flags.writeable  # original view untouched
        np.testing.assert_array_equal(
            unpack_rows(words, 80), masks
        )
        assert packed[0][0] != masks[0, 0]
