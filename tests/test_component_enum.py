"""Unit tests for Algorithm 3 (independent component set enumeration).

These exercise the component machinery directly on hand-built residual
structures, independent of the flow pipeline (which test_all_densest.py
covers end to end).
"""

from __future__ import annotations

from typing import List, Set

from repro.dense.component_enum import (
    ComponentStructure,
    count_independent_sets,
    enumerate_independent_sets,
)


def build(components, graph_nodes, edges) -> ComponentStructure:
    """Construct a ComponentStructure from explicit DAG edges."""
    descendants: List[Set[int]] = [set() for _ in components]
    # transitive closure by repeated relaxation (tiny inputs)
    changed = True
    direct = [set() for _ in components]
    for a, b in edges:
        direct[a].add(b)
    while changed:
        changed = False
        for i in range(len(components)):
            new = set(direct[i])
            for j in direct[i]:
                new |= descendants[j]
            if new != descendants[i]:
                descendants[i] = new
                changed = True
    ancestors: List[Set[int]] = [set() for _ in components]
    for i, desc in enumerate(descendants):
        for j in desc:
            ancestors[j].add(i)
    return ComponentStructure(
        [frozenset(c) for c in components],
        [frozenset(g) for g in graph_nodes],
        descendants,
        ancestors,
    )


class TestEnumeration:
    def test_single_component(self):
        structure = build([{"a"}], [{"a"}], [])
        results = list(enumerate_independent_sets(structure))
        assert results == [frozenset({"a"})]
        assert count_independent_sets(structure) == 1

    def test_two_independent_components(self):
        structure = build([{"a"}, {"b"}], [{"a"}, {"b"}], [])
        results = set(enumerate_independent_sets(structure))
        # {a}, {b}, and {a, b} (both chosen together)
        assert results == {
            frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})
        }
        assert count_independent_sets(structure) == 3

    def test_chain_includes_descendants(self):
        # 0 -> 1: choosing 0 pulls in 1; {1} alone also valid; {0,1} is NOT
        # an independent set (1 is a descendant of 0) so no duplicate
        structure = build([{"a"}, {"b"}], [{"a"}, {"b"}], [(0, 1)])
        results = list(enumerate_independent_sets(structure))
        assert sorted(results, key=sorted) == [
            frozenset({"a", "b"}), frozenset({"b"})
        ]
        assert count_independent_sets(structure) == 2

    def test_component_without_graph_nodes_not_chosen(self):
        # component 1 holds only clique-nodes; it contributes via descent
        structure = build(
            [{"a"}, {"lam"}, {"b"}],
            [{"a"}, set(), {"b"}],
            [(0, 1), (1, 2)],
        )
        results = set(enumerate_independent_sets(structure))
        assert results == {frozenset({"a", "b"}), frozenset({"b"})}

    def test_each_set_exactly_once(self):
        # diamond DAG: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        structure = build(
            [{"a"}, {"b"}, {"c"}, {"d"}],
            [{"a"}, {"b"}, {"c"}, {"d"}],
            [(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        results = list(enumerate_independent_sets(structure))
        assert len(results) == len(set(results))
        # valid independent sets: {0}, {1}, {2}, {3}, {1,2}
        assert len(results) == 5
        assert frozenset({"b", "c", "d"}) in set(results)

    def test_limit_truncates(self):
        structure = build(
            [{"a"}, {"b"}, {"c"}], [{"a"}, {"b"}, {"c"}], []
        )
        assert count_independent_sets(structure) == 7  # all non-empty subsets
        limited = list(enumerate_independent_sets(structure, limit=3))
        assert len(limited) == 3

    def test_closure_nodes_precomputed(self):
        structure = build([{"a"}, {"b"}], [{"a"}, {"b"}], [(0, 1)])
        assert structure.closure_nodes[0] == frozenset({"a", "b"})
        assert structure.closure_nodes[1] == frozenset({"b"})
