"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.datasets.paper_examples import figure1_graph
from repro.graph.io import write_uncertain_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "figure1.txt"
    write_uncertain_edge_list(figure1_graph(), path)
    return str(path)


class TestCLI:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "nodes\t4" in out
        assert "edges\t3" in out

    def test_mpds(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--k", "2", "--theta", "1500", "--seed", "3",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        rank1 = lines[0].split("\t")
        assert rank1[0] == "1"
        assert set(rank1[3].split()) == {"B", "D"}

    def test_mpds_with_sampler_and_ablation(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--theta", "300", "--sampler", "RSS",
            "--one-per-world", "--seed", "1",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_nds(self, graph_file, capsys):
        code = main([
            "nds", graph_file, "--k", "1", "--min-size", "2",
            "--theta", "1500", "--seed", "3",
        ])
        assert code == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        parts = line.split("\t")
        assert set(parts[3].split()) == {"B", "D"}
        assert abs(float(parts[1]) - 0.7) < 0.05

    def test_exact(self, graph_file, capsys):
        assert main(["exact", graph_file, "--k", "1"]) == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        parts = line.split("\t")
        assert abs(float(parts[1]) - 0.42) < 1e-9

    def test_exact_refuses_large_graphs(self, tmp_path, capsys):
        from repro.graph.generators import uncertain_erdos_renyi
        import random
        graph = uncertain_erdos_renyi(12, 0.6, random.Random(1))
        path = tmp_path / "big.txt"
        write_uncertain_edge_list(graph, path)
        assert main(["exact", str(path)]) == 2

    def test_clique_density_option(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--density", "clique", "--h", "2",
            "--theta", "200", "--seed", "5",
        ])
        assert code == 0

    def test_heuristic_flag(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--heuristic", "--theta", "200", "--seed", "5",
        ])
        assert code == 0

    def test_surplus_density_option(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--density", "surplus", "--alpha", "0.33",
            "--theta", "64", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tau-hat" in out

    @pytest.mark.parametrize("command", ["mpds", "nds"])
    def test_engine_option_identical_output(self, command, graph_file, capsys):
        """--engine python and --engine vectorized print identical results."""
        outputs = {}
        for engine in ("python", "vectorized", "auto"):
            code = main([
                command, graph_file, "--k", "2", "--theta", "120",
                "--seed", "9", "--engine", engine,
            ])
            assert code == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["python"] == outputs["vectorized"] == outputs["auto"]
        assert outputs["python"].strip()

    def test_engine_option_with_explicit_sampler(self, graph_file, capsys):
        for engine in ("python", "vectorized"):
            code = main([
                "mpds", graph_file, "--sampler", "LP", "--theta", "80",
                "--seed", "2", "--engine", engine,
            ])
            assert code == 0
        assert capsys.readouterr().out.strip()

    def test_engine_option_rejects_unknown(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["mpds", graph_file, "--engine", "warp-drive"])


class TestCLISpecs:
    """Registry spec strings on --sampler/--measure, and --workers auto."""

    def test_measure_spec_flag(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--measure", "clique:h=2",
            "--theta", "200", "--seed", "5",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_measure_spec_overrides_density(self, graph_file, capsys):
        """--measure wins over the legacy --density flags; equal specs
        print identical output."""
        assert main([
            "mpds", graph_file, "--density", "edge",
            "--measure", "clique:h=2", "--theta", "150", "--seed", "2",
        ]) == 0
        via_spec = capsys.readouterr().out
        assert main([
            "mpds", graph_file, "--density", "clique", "--h", "2",
            "--theta", "150", "--seed", "2",
        ]) == 0
        assert via_spec == capsys.readouterr().out

    def test_sampler_spec_lowercase_and_params(self, graph_file, capsys):
        assert main([
            "mpds", graph_file, "--sampler", "rss:r=3",
            "--theta", "100", "--seed", "1",
        ]) == 0
        assert capsys.readouterr().out.strip()

    def test_sampler_spec_carries_theta_and_seed(self, graph_file, capsys):
        """theta=/seed= in the spec override the flags: both spellings
        must print identical results."""
        assert main([
            "mpds", graph_file, "--sampler", "mc:theta=200,seed=9", "--k", "2",
        ]) == 0
        via_spec = capsys.readouterr().out
        assert main([
            "mpds", graph_file, "--theta", "200", "--seed", "9", "--k", "2",
        ]) == 0
        assert via_spec == capsys.readouterr().out

    def test_unknown_sampler_spec_exits_2(self, graph_file, capsys):
        assert main(["mpds", graph_file, "--sampler", "metropolis"]) == 2
        assert "unknown sampler" in capsys.readouterr().err

    def test_bad_sampler_constructor_params_exit_2(self, graph_file, capsys):
        """Spec parameters the sampler rejects (bad values or unknown
        keywords) exit 2 cleanly, like every other spec error."""
        assert main([
            "mpds", graph_file, "--sampler", "rss:r=0", "--seed", "1",
        ]) == 2
        assert "r must be >= 1" in capsys.readouterr().err
        assert main([
            "mpds", graph_file, "--sampler", "lp:r=4", "--seed", "1",
        ]) == 2
        assert "keyword" in capsys.readouterr().err

    def test_unknown_measure_spec_exits_2(self, graph_file, capsys):
        assert main(["mpds", graph_file, "--measure", "volume"]) == 2
        assert "unknown measure" in capsys.readouterr().err

    def test_workers_auto_accepted(self, graph_file, capsys):
        assert main([
            "mpds", graph_file, "--theta", "150", "--seed", "3",
            "--workers", "auto", "--k", "2",
        ]) == 0
        auto_out = capsys.readouterr().out
        assert main([
            "mpds", graph_file, "--theta", "150", "--seed", "3", "--k", "2",
        ]) == 0
        assert auto_out == capsys.readouterr().out

    def test_workers_rejects_garbage(self, graph_file):
        with pytest.raises(SystemExit):
            main(["mpds", graph_file, "--workers", "many"])

    def test_workers_rejects_nonpositive(self, graph_file):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit):
                main(["mpds", graph_file, "--workers", bad])


class TestCLIQuery:
    """The `query` subcommand: several runs on one Session."""

    def test_query_runs_share_one_draw(self, graph_file, capsys):
        code = main([
            "query", graph_file, "--sampler", "mc:theta=300,seed=7",
            "--run", "mpds:k=2",
            "--run", "mpds:k=2,measure=clique:h=2",
            "--run", "nds:k=1,min_size=2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("# run ") == 3
        assert "tau-hat" in out and "gamma-hat" in out
        assert "300 worlds sampled in 1 draw(s)" in out
        assert "2 warm hit(s)" in out

    def test_query_matches_one_shot_commands(self, graph_file, capsys):
        assert main([
            "query", graph_file, "--theta", "200", "--seed", "3",
            "--run", "mpds:k=2", "--run", "nds:k=1",
        ]) == 0
        query_out = capsys.readouterr().out
        assert main([
            "mpds", graph_file, "--k", "2", "--theta", "200", "--seed", "3",
        ]) == 0
        mpds_out = capsys.readouterr().out
        assert main([
            "nds", graph_file, "--k", "1", "--theta", "200", "--seed", "3",
        ]) == 0
        nds_out = capsys.readouterr().out
        for line in mpds_out.strip().splitlines():
            assert line in query_out
        for line in nds_out.strip().splitlines():
            assert line in query_out

    def test_query_default_run_is_mpds(self, graph_file, capsys):
        assert main([
            "query", graph_file, "--theta", "100", "--seed", "1",
        ]) == 0
        assert "tau-hat" in capsys.readouterr().out

    def test_query_unseeded_summary_reports_sampling(self, graph_file,
                                                     capsys):
        """Without --seed nothing is cacheable; the summary must report
        the worlds actually drawn, not '0 draw(s)'."""
        assert main([
            "query", graph_file, "--theta", "50",
            "--run", "mpds:k=1", "--run", "nds:k=1",
        ]) == 0
        out = capsys.readouterr().out
        assert "# session: unseeded -- 100 worlds sampled" in out
        assert "pass --seed" in out

    def test_query_rejects_unknown_algorithm(self, graph_file, capsys):
        assert main([
            "query", graph_file, "--run", "pagerank:k=2",
        ]) == 2
        assert "unknown run algorithm" in capsys.readouterr().err

    def test_query_rejects_unknown_run_parameter(self, graph_file, capsys):
        assert main([
            "query", graph_file, "--run", "mpds:depth=3",
        ]) == 2
        assert "unknown run parameter" in capsys.readouterr().err

    def test_query_rejects_bad_measure(self, graph_file, capsys):
        assert main([
            "query", graph_file, "--run", "mpds:measure=volume",
        ]) == 2
        assert "unknown measure" in capsys.readouterr().err

    def test_query_rejects_bad_run_values_cleanly(self, graph_file, capsys):
        """Typos in run parameter *values* exit 2 with the offending
        run named -- no tracebacks."""
        for run in ("mpds:k=zero", "mpds:k=0", "nds:min_size=0",
                    "mpds:workers=oops"):
            assert main([
                "query", graph_file, "--theta", "20", "--seed", "1",
                "--run", run,
            ]) == 2, run
            err = capsys.readouterr().err
            assert f"run '{run}'" in err
