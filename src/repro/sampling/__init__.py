"""Possible-world samplers: Monte Carlo, Lazy Propagation, RSS."""

from .base import WeightedWorld, WorldSampler
from .monte_carlo import MonteCarloSampler
from .lazy_propagation import LazyPropagationSampler
from .stratified import RecursiveStratifiedSampler

SAMPLERS = {
    "MC": MonteCarloSampler,
    "LP": LazyPropagationSampler,
    "RSS": RecursiveStratifiedSampler,
}

__all__ = [
    "WeightedWorld",
    "WorldSampler",
    "MonteCarloSampler",
    "LazyPropagationSampler",
    "RecursiveStratifiedSampler",
    "SAMPLERS",
]
