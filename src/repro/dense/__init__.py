"""Densest-subgraph engines for deterministic graphs.

Edge density: Goldberg's exact algorithm [1] + all-densest enumeration [46].
Clique density: Algorithms 2/3/6 of the paper (novel enumeration).
Pattern density: Algorithms 4/3/7 of the paper (novel enumeration).
Plus peeling approximations, generalised cores, and the kClist++ solver.
"""

from .goldberg import (
    DensestResult,
    build_edge_density_network,
    densest_subgraph,
    maximum_edge_density,
)
from .all_densest import (
    all_densest_subgraphs,
    count_densest_subgraphs,
    enumerate_all_densest_subgraphs,
    maximum_sized_densest_subgraph,
    prepare_from_bound,
    prepare_from_bound_csr,
)
from .clique_density import (
    CliqueDensestResult,
    all_clique_densest_subgraphs,
    build_clique_density_network,
    clique_densest_subgraph,
    enumerate_all_clique_densest_subgraphs,
    maximum_clique_density,
    maximum_sized_clique_densest_subgraph,
)
from .pattern_density import (
    PatternDensestResult,
    all_pattern_densest_subgraphs,
    build_pattern_density_network,
    enumerate_all_pattern_densest_subgraphs,
    maximum_pattern_density,
    maximum_sized_pattern_densest_subgraph,
    pattern_densest_subgraph,
)
from .kcore import (
    core_decomposition,
    innermost_core_nodes,
    k_core,
    kh_core,
    kh_core_decomposition,
    kpsi_core,
    kpsi_core_decomposition,
)
from .peeling import (
    PeelingResult,
    peel_clique_density,
    peel_edge_density,
    peel_edge_density_csr,
    peel_pattern_density,
)
from .kclistpp import KClistResult, kclistpp_densest
from .greedypp import (
    GreedyPPResult,
    greedypp_clique_densest,
    greedypp_densest,
    greedypp_from_instances,
    greedypp_pattern_densest,
)

__all__ = [
    "DensestResult",
    "build_edge_density_network",
    "densest_subgraph",
    "maximum_edge_density",
    "all_densest_subgraphs",
    "count_densest_subgraphs",
    "enumerate_all_densest_subgraphs",
    "maximum_sized_densest_subgraph",
    "prepare_from_bound",
    "prepare_from_bound_csr",
    "CliqueDensestResult",
    "all_clique_densest_subgraphs",
    "build_clique_density_network",
    "clique_densest_subgraph",
    "enumerate_all_clique_densest_subgraphs",
    "maximum_clique_density",
    "maximum_sized_clique_densest_subgraph",
    "PatternDensestResult",
    "all_pattern_densest_subgraphs",
    "build_pattern_density_network",
    "enumerate_all_pattern_densest_subgraphs",
    "maximum_pattern_density",
    "maximum_sized_pattern_densest_subgraph",
    "pattern_densest_subgraph",
    "core_decomposition",
    "innermost_core_nodes",
    "k_core",
    "kh_core",
    "kh_core_decomposition",
    "kpsi_core",
    "kpsi_core_decomposition",
    "PeelingResult",
    "peel_clique_density",
    "peel_edge_density",
    "peel_edge_density_csr",
    "peel_pattern_density",
    "KClistResult",
    "kclistpp_densest",
    "GreedyPPResult",
    "greedypp_clique_densest",
    "greedypp_densest",
    "greedypp_from_instances",
    "greedypp_pattern_densest",
]
