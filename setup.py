"""Packaging metadata for the repro library.

Kept as a plain ``setup.py`` (rather than PEP 517 ``pyproject.toml``) so
``pip install -e .`` works in offline environments whose interpreter
lacks the ``wheel`` package: pip can then fall back to the legacy
``setup.py develop`` route.

``numpy`` is a hard dependency: the exact bitmask solver
(``repro.core.exact_bitmask``) and the vectorised possible-world engine
(``repro.engine``) are built on it.
"""

from setuptools import find_packages, setup

setup(
    name="repro-mpds",
    version="1.0.0",
    description=(
        "Most Probable Densest Subgraphs in uncertain graphs "
        "(reproduction of Saha, Ke, Khan, Long -- ICDE 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
    ],
    entry_points={
        "console_scripts": [
            "repro-mpds = repro.cli:main",
            "repro-serve = repro.serve:main",
            "repro-lint = repro.analysis.cli:main",
        ],
    },
)
