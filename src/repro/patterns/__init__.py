"""Pattern graphs and subgraph-isomorphism instance enumeration."""

from .pattern import Pattern, paper_patterns
from .matching import (
    Instance,
    NodeSet,
    count_instances,
    enumerate_instances,
    group_instances,
    instance_nodes,
    pattern_degrees,
)

__all__ = [
    "Pattern",
    "paper_patterns",
    "Instance",
    "NodeSet",
    "count_instances",
    "enumerate_instances",
    "group_instances",
    "instance_nodes",
    "pattern_degrees",
]
