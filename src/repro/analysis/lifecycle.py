"""Resource-lifecycle checkers (RES3xx).

Shared-memory segments and spill files outlive the objects that created
them unless someone closes/unlinks them; PR 7's pager short-read bug was
a lifecycle bug surfacing far from its cause.  Three rules:

``RES301``
    ``SharedMemory(create=True)`` whose handle neither escapes the
    function (returned / stored on ``self``) nor sees a ``close()`` /
    ``unlink()`` in the same function.  Returning the handle is an
    ownership transfer (``pack_arrays`` documents caller-owns) and is
    not flagged.
``RES302``
    ``tempfile.NamedTemporaryFile`` / ``mkstemp`` / ``mkdtemp`` results
    that are neither context-managed, closed/unlinked/replaced in the
    function, stored on ``self`` (a holder class is expected to expose
    ``close``), nor returned.
``RES303``
    A registered resource-holding container (:data:`RESOURCE_CONTAINERS`,
    e.g. ``Session._stores`` holding spill-backed world stores) dropped
    wholesale -- ``.clear()``, rebinding, or a discarded ``.pop()`` --
    in a function that never calls ``.close()`` on values derived from
    it.  Dropping the dict reference leaves cleanup to GC timing, which
    the determinism/bench harnesses cannot rely on.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Sequence, Set

from .core import Checker, Finding, SourceFile, base_name, contains_name, dotted_name

#: file suffix -> attribute names holding closeable resources
RESOURCE_CONTAINERS: Dict[str, FrozenSet[str]] = {
    "repro/session.py": frozenset({"_stores"}),
    "repro/serve.py": frozenset({"_graphs"}),
}

_TEMPFILE_FACTORIES = {"NamedTemporaryFile", "TemporaryFile", "mkstemp", "mkdtemp"}


class ResourceLifecycleChecker(Checker):
    family = "RES"

    def __init__(self, containers: Dict[str, Sequence[str]] = None):
        self.containers = (
            RESOURCE_CONTAINERS if containers is None else containers
        )

    def run(self, src: SourceFile) -> List[Finding]:
        if src.kind != "python" or src.tree is None:
            return []
        findings: List[Finding] = []
        findings.extend(self._shared_memory(src))
        findings.extend(self._tempfiles(src))
        findings.extend(self._container_drops(src))
        return findings

    # -- RES301 ------------------------------------------------------------
    def _shared_memory(self, src: SourceFile) -> List[Finding]:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = dotted_name(node.func)
            if not fname.endswith("SharedMemory"):
                continue
            if not any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                continue
            if self._handle_escapes(src, node, ("close", "unlink")):
                continue
            findings.append(
                self.finding(
                    "RES301",
                    src,
                    node,
                    "SharedMemory(create=True) with no reachable close()/"
                    "unlink() and no ownership transfer; the segment "
                    "outlives the process in /dev/shm",
                    "close+unlink in a finally, store it on self with a "
                    "close() method, or return it to a documented owner",
                )
            )
        return findings

    # -- RES302 ------------------------------------------------------------
    def _tempfiles(self, src: SourceFile) -> List[Finding]:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = dotted_name(node.func)
            leaf = fname.rsplit(".", 1)[-1]
            if leaf not in _TEMPFILE_FACTORIES:
                continue
            if self._in_with_item(src, node):
                continue
            cleanup = ("close", "unlink", "replace", "rename", "remove", "rmtree", "cleanup", "fdopen")
            if self._handle_escapes(src, node, cleanup):
                continue
            findings.append(
                self.finding(
                    "RES302",
                    src,
                    node,
                    f"tempfile.{leaf}(...) result is never cleaned up on "
                    "this path (no with-block, close/unlink/replace, or "
                    "owning object)",
                    "context-manage it, or close/unlink in a finally",
                )
            )
        return findings

    @staticmethod
    def _in_with_item(src: SourceFile, node: ast.AST) -> bool:
        parent = src.parents.get(node)
        return isinstance(parent, ast.withitem)

    def _handle_escapes(self, src, call, cleanup_attrs) -> bool:
        """True when the call's result is owned somewhere reachable.

        Owned means: returned/yielded from the enclosing function, bound
        to a ``self`` attribute, or bound to names on which a cleanup
        call (``close``/``unlink``/...) appears in the same function.
        Tuple unpacking (``fd, path = mkstemp()``) tracks every element.
        """
        fn = src.enclosing_function(call)
        if fn is None:
            return True  # module-level singletons are deliberate
        parent = src.parents.get(call)
        names: Set[str] = set()
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Attribute):
                    return True  # stored on an owning object
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            names.add(elt.id)
                        elif isinstance(elt, ast.Attribute):
                            return True
        elif isinstance(parent, (ast.Return, ast.Yield)):
            return True
        elif isinstance(parent, ast.Attribute) and parent.attr in cleanup_attrs:
            return True  # e.g. SharedMemory(...).close() chained directly
        if not names:
            return False
        for node in ast.walk(fn):
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                if any(contains_name(node.value, name) for name in names):
                    return True
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in cleanup_attrs
                    and base_name(func.value) in names
                ):
                    return True
                # cleanup free functions taking the handle: os.unlink(path)
                leaf = dotted_name(func).rsplit(".", 1)[-1]
                if leaf in cleanup_attrs and any(
                    isinstance(a, ast.Name) and a.id in names for a in node.args
                ):
                    return True
        return False

    # -- RES303 ------------------------------------------------------------
    def _container_drops(self, src: SourceFile) -> List[Finding]:
        attrs: Set[str] = set()
        for suffix, owned in self.containers.items():
            if src.label.endswith(suffix):
                attrs |= set(owned)
        if not attrs:
            return []
        findings = []
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name == "__init__":
                continue
            drops = self._drop_sites(src, fn, attrs)
            if not drops:
                continue
            if self._closes_derived_values(src, fn, attrs):
                continue
            for node, attr in drops:
                findings.append(
                    self.finding(
                        "RES303",
                        src,
                        node,
                        f"{attr} holds closeable resources but is dropped "
                        f"in {fn.name}() without closing its values "
                        "(cleanup left to GC timing)",
                        "close each value (e.g. `for v in ...: v.close()`) "
                        "before clearing",
                    )
                )
        return findings

    @staticmethod
    def _drop_sites(src, fn, attrs):
        """(node, attr) for clear()/rebind/discarded-pop of owned attrs."""
        sites = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("clear", "pop", "popitem")
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr in attrs
                ):
                    parent = src.parents.get(node)
                    if func.attr == "clear" or isinstance(parent, ast.Expr):
                        sites.append((node, func.value.attr))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and target.attr in attrs:
                        sites.append((node, target.attr))
        return sites

    @staticmethod
    def _closes_derived_values(src, fn, attrs) -> bool:
        """Does ``fn`` call ``.close()`` on anything derived from the attrs?"""

        def mentions_attr(tree) -> bool:
            return any(
                isinstance(n, ast.Attribute) and n.attr in attrs
                for n in ast.walk(tree)
            )

        derived: Set[str] = set()
        changed = True
        while changed:  # two passes reach entries -> entry chains
            changed = False
            for node in ast.walk(fn):
                targets = []
                source = None
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    source = node.value
                elif isinstance(node, ast.For):
                    targets = [node.target]
                    source = node.iter
                if source is None:
                    continue
                if mentions_attr(source) or any(
                    contains_name(source, name) for name in derived
                ):
                    for target in targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name) and leaf.id not in derived:
                                derived.add(leaf.id)
                                changed = True
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "close"):
                continue
            base = base_name(func.value)
            if base in derived:
                return True
            # chained `self._stores.pop(key).close()`
            if isinstance(func.value, ast.Call) and mentions_attr(func.value):
                return True
            if mentions_attr(func.value):
                return True
        return False
