"""Result-quality metrics: purity, F1, and top-k list similarity.

* Purity (Table X): the highest fraction of a node set's members drawn
  from a single ground-truth community.
* F1 (Figs. 17-18): harmonic mean of precision and recall of a returned
  node set against the exact node set at the same rank; the paper reports
  the average across ranks 1..k.
* Top-k similarity (Fig. 19): how close the result lists for consecutive
  theta values are; implemented as the average best-match Jaccard between
  the two lists (a natural set-list similarity; the paper does not spell
  out its formula).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence

Node = Hashable
NodeSet = FrozenSet[Node]


def purity(nodes: Iterable[Node], communities: Mapping[Node, Hashable]) -> float:
    """Return the largest fraction of ``nodes`` in one ground-truth community."""
    members = [node for node in nodes if node in communities]
    if not members:
        return 0.0
    counts: Dict[Hashable, int] = {}
    for node in members:
        label = communities[node]
        counts[label] = counts.get(label, 0) + 1
    return max(counts.values()) / len(members)


def average_purity(
    node_sets: Sequence[Iterable[Node]], communities: Mapping[Node, Hashable]
) -> float:
    """Return the mean purity over a list of node sets (top-k results)."""
    if not node_sets:
        return 0.0
    return sum(purity(s, communities) for s in node_sets) / len(node_sets)


def f1_score(returned: Iterable[Node], truth: Iterable[Node]) -> float:
    """Return the F1 score of ``returned`` against ``truth``."""
    returned_set = frozenset(returned)
    truth_set = frozenset(truth)
    if not returned_set or not truth_set:
        return 0.0
    overlap = len(returned_set & truth_set)
    if overlap == 0:
        return 0.0
    precision = overlap / len(returned_set)
    recall = overlap / len(truth_set)
    return 2.0 * precision * recall / (precision + recall)


def average_f1_by_rank(
    returned: Sequence[Iterable[Node]], truth: Sequence[Iterable[Node]]
) -> float:
    """Return the F1 averaged across ranks 1..k (Figs. 17-18 protocol).

    Rank ``i`` of ``returned`` is scored against rank ``i`` of ``truth``;
    missing ranks score 0.
    """
    k = max(len(returned), len(truth))
    if k == 0:
        return 0.0
    total = 0.0
    for i in range(k):
        if i < len(returned) and i < len(truth):
            total += f1_score(returned[i], truth[i])
    return total / k


def jaccard(a: Iterable[Node], b: Iterable[Node]) -> float:
    """Return the Jaccard similarity of two node sets."""
    sa, sb = frozenset(a), frozenset(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


def top_k_similarity(
    current: Sequence[Iterable[Node]], previous: Sequence[Iterable[Node]]
) -> float:
    """Return the average best-match Jaccard between two top-k lists.

    For each set of ``current``, take its best Jaccard against any set of
    ``previous``; average.  Equal lists score 1; used for the Fig. 19
    convergence-of-theta protocol.
    """
    current_sets = [frozenset(s) for s in current]
    previous_sets = [frozenset(s) for s in previous]
    if not current_sets and not previous_sets:
        return 1.0
    if not current_sets or not previous_sets:
        return 0.0
    total = 0.0
    for s in current_sets:
        total += max(jaccard(s, t) for t in previous_sets)
    return total / len(current_sets)
