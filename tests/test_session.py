"""Session/Query API semantics: spec registry, store caching, the
zero-resampling contract (spy-asserted), result serialization, and the
``workers="auto"`` resolution."""

from __future__ import annotations

import json
import random

import pytest

from repro.core import CliqueDensity, EdgeDensity, PatternDensity
from repro.core.extensions import EdgeSurplus
from repro.core.heuristics import HeuristicMeasure
from repro.core.mpds import mpds_from_store, top_k_mpds
from repro.core.nds import nds_from_store, top_k_nds
from repro.core.results import (
    MPDSResult,
    NDSResult,
    ScoredNodeSet,
    result_from_dict,
    result_from_json,
)
from repro.engine.worldstore import WorldStore
from repro.sampling import (
    LazyPropagationSampler,
    MonteCarloSampler,
    RecursiveStratifiedSampler,
)
from repro.session import Query, Session
from repro.specs import (
    build_measure,
    build_sampler,
    parse_sampler_spec,
    parse_spec,
    split_sampler_spec,
)

from .conftest import random_uncertain_graph


@pytest.fixture
def graph():
    return random_uncertain_graph(random.Random(3), 24, 0.2)


# ----------------------------------------------------------------------
# spec registry
# ----------------------------------------------------------------------
class TestSpecs:
    def test_parse_spec_values(self):
        name, params = parse_spec("rss:r=4,max_depth=2,frac=0.5,flag=true")
        assert name == "rss"
        assert params == {"r": 4, "max_depth": 2, "frac": 0.5, "flag": True}

    def test_parse_spec_bare_name_and_case(self):
        assert parse_spec("MC") == ("mc", {})
        assert parse_spec("Clique:h=3") == ("clique", {"h": 3})

    def test_parse_spec_rejects_malformed(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_spec("mc:oops")
        with pytest.raises(ValueError, match="empty spec"):
            parse_spec("   ")

    def test_sampler_spec_vocabulary(self):
        assert parse_sampler_spec("LP") == ("lp", {})
        with pytest.raises(ValueError, match="unknown sampler"):
            parse_sampler_spec("metropolis")

    def test_split_sampler_spec_extracts_query_knobs(self):
        kind, theta, seed, params = split_sampler_spec(
            "rss:theta=80,seed=9,r=3"
        )
        assert (kind, theta, seed) == ("rss", 80, 9)
        assert params == {"r": 3}

    def test_split_sampler_spec_rejects_bad_theta(self):
        with pytest.raises(ValueError, match="theta must be an integer"):
            split_sampler_spec("mc:theta=1.5")
        # bool subclasses int; theta=true must not mean "1 world"
        with pytest.raises(ValueError, match="theta must be an integer"):
            split_sampler_spec("mc:theta=true")
        with pytest.raises(ValueError, match="seed must be an integer"):
            split_sampler_spec("mc:seed=false")

    def test_build_sampler_kinds(self, graph):
        assert isinstance(build_sampler("mc", graph, 1), MonteCarloSampler)
        assert isinstance(
            build_sampler("lp", graph, 1), LazyPropagationSampler
        )
        assert isinstance(
            build_sampler("rss", graph, 1, r=3), RecursiveStratifiedSampler
        )
        with pytest.raises(ValueError, match="unknown sampler"):
            build_sampler("nope", graph)

    def test_build_measure_specs(self):
        assert isinstance(build_measure(), EdgeDensity)
        assert isinstance(build_measure("edge"), EdgeDensity)
        clique = build_measure("clique:h=4")
        assert isinstance(clique, CliqueDensity) and clique.h == 4
        pattern = build_measure("pattern:psi=2-star")
        assert isinstance(pattern, PatternDensity)
        surplus = build_measure("surplus:alpha=0.25")
        assert isinstance(surplus, EdgeSurplus)

    def test_build_measure_overrides_and_heuristic(self):
        clique = build_measure("clique", h=5)
        assert clique.h == 5
        wrapped = build_measure("edge", heuristic=True)
        assert isinstance(wrapped, HeuristicMeasure)

    def test_build_measure_passthrough_and_errors(self):
        measure = CliqueDensity(3)
        assert build_measure(measure) is measure
        with pytest.raises(ValueError, match="unknown measure"):
            build_measure("volume")
        with pytest.raises(ValueError, match="does not accept"):
            build_measure("edge:h=3")
        with pytest.raises(ValueError, match="unknown pattern"):
            build_measure("pattern:psi=pentagon")


# ----------------------------------------------------------------------
# world store
# ----------------------------------------------------------------------
class TestWorldStore:
    def test_store_replays_one_shot_result(self, graph):
        store = WorldStore.from_sampler(graph, None, 32, seed=5)
        assert store.count == 32
        result = mpds_from_store(store, k=3)
        assert result == top_k_mpds(graph, k=3, theta=32, seed=5)
        nds = nds_from_store(store, k=2, min_size=2)
        assert nds == top_k_nds(graph, k=2, theta=32, seed=5)

    def test_store_replay_is_repeatable(self, graph):
        store = WorldStore.from_sampler(graph, None, 24, seed=8)
        first = mpds_from_store(store, k=2)
        second = mpds_from_store(store, k=2)
        assert first == second

    def test_store_python_engine_replay(self, graph):
        store = WorldStore.from_sampler(graph, None, 24, seed=8)
        assert mpds_from_store(store, k=2, engine="python") == top_k_mpds(
            graph, k=2, theta=24, seed=8, engine="python"
        )

    def test_store_orders_for_lp(self, graph):
        sampler = LazyPropagationSampler(graph, 4)
        store = WorldStore.from_sampler(graph, sampler, 16, seed=4)
        assert store.kind == "lp"
        assert store.order_data is not None
        assert store.nbytes > 0
        assert "lp" in repr(store)

    def test_store_validations(self, graph):
        store = WorldStore.from_sampler(graph, None, 8, seed=1)
        with pytest.raises(ValueError, match="k must be"):
            mpds_from_store(store, k=0)
        with pytest.raises(ValueError, match="min_size"):
            nds_from_store(store, k=1, min_size=0)


# ----------------------------------------------------------------------
# session semantics
# ----------------------------------------------------------------------
class TestSession:
    def test_store_cached_across_queries_and_algorithms(self, graph):
        with Session(graph) as session:
            session.query().sampler("mc", theta=24, seed=7).top_k(2).mpds()
            session.query().sampler("mc", theta=24, seed=7).top_k(5).mpds()
            session.query().sampler("mc", theta=24, seed=7).nds()
            session.query().sampler(
                "mc", theta=24, seed=7
            ).measure("clique:h=2").mpds()
            stats = session.stats
        assert stats["stores_built"] == 1
        # the k=5 re-query is served by the evaluation cache *before*
        # the store is consulted; nds and the clique measure re-evaluate
        # and hit the store
        assert stats["store_hits"] == 2
        assert stats["eval_hits"] == 1
        assert stats["worlds_sampled"] == 24
        assert stats["queries"] == 4

    def test_k_variants_hit_the_evaluation_cache(self, graph):
        with Session(graph) as session:
            for k in (1, 2, 3, 4):
                session.query().sampler("mc", theta=24, seed=7).top_k(k).mpds()
            assert session.stats["eval_hits"] == 3
            assert session.stats["worlds_evaluated"] == 24

    def test_distinct_draws_get_distinct_stores(self, graph):
        with Session(graph) as session:
            session.query().sampler("mc", theta=24, seed=7).mpds()
            session.query().sampler("mc", theta=24, seed=8).mpds()
            session.query().sampler("mc", theta=32, seed=7).mpds()
            session.query().sampler("lp", theta=24, seed=7).mpds()
            assert session.stats["stores_built"] == 4
            assert session.stats["store_hits"] == 0

    def test_second_query_does_zero_sampling_work(self, graph, monkeypatch):
        """The acceptance spy: after the first query populates the
        store, no sampling entry point runs again -- not the drain, not
        any batch draw, not a pure-Python world loop."""
        import repro.engine.blocks as blocks
        from repro.engine.lazy import VectorizedLazyPropagationSampler
        from repro.engine.sampler import VectorizedMonteCarloSampler
        from repro.engine.stratified import VectorizedStratifiedSampler
        from repro.sampling.base import WorldSampler

        reference = top_k_mpds(graph, k=2, theta=24, seed=7)
        with Session(graph) as session:
            first = session.query().sampler(
                "mc", theta=24, seed=7
            ).top_k(2).mpds()

            def forbid(name):
                def _fail(*args, **kwargs):
                    raise AssertionError(f"warm query called {name}")
                return _fail

            monkeypatch.setattr(
                blocks, "drain_mask_stream", forbid("drain_mask_stream")
            )
            monkeypatch.setattr(
                VectorizedMonteCarloSampler, "edge_masks",
                forbid("edge_masks"),
            )
            monkeypatch.setattr(
                VectorizedMonteCarloSampler, "mask_worlds",
                forbid("mask_worlds"),
            )
            monkeypatch.setattr(
                VectorizedLazyPropagationSampler, "mask_worlds",
                forbid("lp mask_worlds"),
            )
            monkeypatch.setattr(
                VectorizedStratifiedSampler, "mask_worlds",
                forbid("rss mask_worlds"),
            )
            monkeypatch.setattr(
                MonteCarloSampler, "worlds", forbid("python worlds")
            )
            # same seed/theta, different k, measure and algorithm: all
            # must be served from the session caches
            second = session.query().sampler(
                "mc", theta=24, seed=7
            ).top_k(5).mpds()
            third = session.query().sampler(
                "mc", theta=24, seed=7
            ).measure("clique:h=2").top_k(2).mpds()
            fourth = session.query().sampler("mc", theta=24, seed=7).nds()
            assert session.stats["stores_built"] == 1
            assert session.stats["store_hits"] + session.stats["eval_hits"] == 3
        assert first.top and second.top  # sanity: queries really ran
        assert third is not None and fourth is not None
        assert first == reference

    def test_unseeded_queries_resample(self, graph):
        """The cache is seed-keyed: unseeded queries stream fresh worlds
        every time and leave nothing behind to be wrongly reused."""
        with Session(graph) as session:
            session.query().sampler("mc", theta=8).mpds()
            session.query().sampler("mc", theta=8).mpds()
            assert session.stats["stores_built"] == 0
            assert not session._stores and not session._eval_cache

    def test_sampler_instances_stream_without_caching(self, graph):
        sampler = MonteCarloSampler(graph, 5)
        with Session(graph) as session:
            result = session.query().sampler(
                sampler, theta=16, seed=5
            ).top_k(2).mpds()
            assert session.stats["stores_built"] == 0
        assert result == top_k_mpds(
            graph, k=2, theta=16, sampler=MonteCarloSampler(graph, 5)
        )

    def test_indexed_graph_shared_across_stores(self, graph):
        with Session(graph) as session:
            session.query().sampler("mc", theta=8, seed=1).mpds()
            session.query().sampler("lp", theta=8, seed=1).mpds()
            stores = list(session._stores.values())
        assert len(stores) == 2
        assert stores[0].indexed is stores[1].indexed
        assert stores[0].indexed is session.indexed

    def test_world_store_accepts_spec_strings(self, graph):
        with Session(graph) as session:
            a = session.world_store("mc:theta=16,seed=3")
            b = session.world_store("mc", theta=16, seed=3)
            assert a is b
            assert a.count == 16

    def test_close_is_idempotent_and_repr(self, graph):
        session = Session(graph)
        session.query().sampler("mc", theta=8, seed=1).mpds()
        assert "stores=1" in repr(session)
        session.close()
        session.close()

    def test_close_releases_cached_stores(self, graph):
        """close() must close every cached store (spill files, packed
        buffers) rather than leave cleanup to GC timing -- the RES303
        finding repro-lint surfaced."""

        class _ClosableStore:
            closed = 0

            def close(self):
                self.closed += 1

        session = Session(graph)
        session.query().sampler("mc", theta=8, seed=1).mpds()
        fake = _ClosableStore()
        with session._lock:
            session._stores[("fake", "store", "key")] = fake
        session.close()
        assert fake.closed == 1
        with session._lock:
            assert session._stores == {}

    def test_query_validations_match_legacy(self, graph):
        with Session(graph) as session:
            with pytest.raises(ValueError, match="k must be >= 1, got 0"):
                session.query().top_k(0).mpds()
            with pytest.raises(ValueError, match="min_size"):
                session.query().min_size(0).nds()
            with pytest.raises(ValueError, match="theta must be positive"):
                session.query().theta(0).workers(2).mpds()
            with pytest.raises(ValueError, match="workers must be >= 1"):
                session.query().workers(0).mpds()
            with pytest.raises(ValueError, match="engine must be one of"):
                session.query().engine("warp").sampler(
                    "mc", theta=4, seed=1
                ).mpds()

    def test_query_sampler_argument_forms(self, graph):
        query = Session(graph).query()
        assert query.sampler("rss:r=3", theta=8, seed=2) is query
        with pytest.raises(ValueError, match="constructor parameters"):
            query.sampler(MonteCarloSampler(graph, 1), r=3)
        with pytest.raises(ValueError, match="theta must be an integer"):
            Session(graph).query().sampler("mc:theta=true")
        with pytest.raises(ValueError, match="seed must be an integer"):
            Session(graph).world_store("mc:seed=true")
        assert "rss" in repr(query) or "Query" in repr(query)

    def test_default_repr_measure_skips_eval_cache(self, graph):
        """A measure whose repr is an object address must not share
        evaluation-cache lines (addresses get reused); it re-evaluates
        per query while still reusing the sampled worlds."""

        class AddressOnlyMeasure(EdgeDensity):
            __repr__ = object.__repr__

        with Session(graph) as session:
            first = session.query().sampler("mc", theta=16, seed=2) \
                .measure(AddressOnlyMeasure()).top_k(2).mpds()
            second = session.query().sampler("mc", theta=16, seed=2) \
                .measure(AddressOnlyMeasure()).top_k(2).mpds()
            assert session.stats["stores_built"] == 1
            assert session.stats["eval_hits"] == 0
            assert session.stats["worlds_evaluated"] == 32
        assert first == second

    def test_same_named_patterns_do_not_share_eval_cache(self, graph):
        """Two structurally different patterns can share a name;
        PatternDensity's repr alone must not alias their cache lines."""
        from repro.core.mpds import top_k_mpds as one_shot
        from repro.patterns.pattern import Pattern

        path = Pattern("custom", [(0, 1), (1, 2)])
        triangle = Pattern("custom", [(0, 1), (1, 2), (0, 2)])
        with Session(graph) as session:
            first = session.query().sampler("mc", theta=16, seed=2) \
                .measure(PatternDensity(path)).top_k(2).mpds()
            second = session.query().sampler("mc", theta=16, seed=2) \
                .measure(PatternDensity(triangle)).top_k(2).mpds()
            assert session.stats["eval_hits"] == 0
        assert first == one_shot(
            graph, k=2, theta=16, seed=2, measure=PatternDensity(path)
        )
        assert second == one_shot(
            graph, k=2, theta=16, seed=2, measure=PatternDensity(triangle)
        )

    def test_heuristic_max_sets_do_not_share_eval_cache(self, graph):
        """HeuristicMeasure's repr carries max_sets, so differently
        capped heuristics cannot alias a warm cache line."""
        from repro.core.mpds import top_k_mpds as one_shot

        wide = HeuristicMeasure(EdgeDensity(), max_sets=8)
        narrow = HeuristicMeasure(EdgeDensity(), max_sets=1)
        with Session(graph) as session:
            first = session.query().sampler("mc", theta=30, seed=5) \
                .measure(wide).top_k(2).mpds()
            second = session.query().sampler("mc", theta=30, seed=5) \
                .measure(narrow).top_k(2).mpds()
            assert session.stats["eval_hits"] == 0
        assert first == one_shot(
            graph, k=2, theta=30, seed=5,
            measure=HeuristicMeasure(EdgeDensity(), max_sets=8),
        )
        assert second == one_shot(
            graph, k=2, theta=30, seed=5,
            measure=HeuristicMeasure(EdgeDensity(), max_sets=1),
        )

    def test_sampler_spec_wins_over_keywords(self, graph):
        """Query.sampler and Session.world_store resolve spec-vs-keyword
        conflicts the same way: the spec wins."""
        with Session(graph) as session:
            result = session.query().sampler(
                "mc:theta=12,seed=9", theta=50, seed=1
            ).top_k(1).mpds()
            assert result.theta == 12
            store = session.world_store("mc:theta=12,seed=9", theta=50,
                                        seed=1)
            assert store.count == 12 and store.seed == 9
            assert session.stats["stores_built"] == 1  # same draw: shared

    def test_streaming_queries_count_sampled_worlds(self, graph):
        """Uncached (unseeded / instance-sampler) queries still report
        their sampling work in session stats."""
        with Session(graph) as session:
            session.query().sampler("mc", theta=8).mpds()
            session.query().sampler("mc", theta=8).nds()
            assert session.stats["worlds_sampled"] == 16
            assert session.stats["stores_built"] == 0

    def test_heuristic_wrapper_keys_on_wrapped_measure(self, graph):
        """HeuristicMeasure(PatternDensity(...)) must inherit the
        pattern-structure keying through the wrapper."""
        from repro.core.heuristics import HeuristicMeasure
        from repro.patterns.pattern import Pattern
        from repro.session import _measure_key

        path = HeuristicMeasure(PatternDensity(Pattern("x", [(0, 1)])))
        tri = HeuristicMeasure(
            PatternDensity(Pattern("x", [(0, 1), (1, 2), (0, 2)]))
        )
        assert _measure_key(path) != _measure_key(tri)

    def test_session_usable_after_close(self, graph):
        """close() is not terminal: later queries refill the caches and
        publish fresh segments, and a second close() releases them."""
        session = Session(graph)
        session.query().sampler("mc", theta=16, seed=2).workers(2).mpds()
        assert session._published_segments
        session.close()
        assert not session._published_segments
        result = session.query().sampler(
            "mc", theta=16, seed=2
        ).workers(2).top_k(2).mpds()
        assert session._published_segments  # republished after close
        session.close()
        assert not session._published_segments
        assert result == top_k_mpds(graph, k=2, theta=16, seed=2)

    def test_graph_segment_published_once_across_stores(self, graph):
        """The graph payload is store-independent: parallel queries over
        several draws share one published graph segment."""
        from repro.core.parallel import PublishedGraph

        with Session(graph) as session:
            session.query().sampler("mc", theta=16, seed=1).workers(2).mpds()
            session.query().sampler("mc", theta=16, seed=2).workers(2).mpds()
            session.query().sampler("mc", theta=12, seed=1).workers(2).nds()
            graphs = [
                segment for segment in session._published_segments
                if isinstance(segment, PublishedGraph)
            ]
            assert len(graphs) == 1
            assert session.stats["plans_published"] == 3

    def test_session_default_workers_apply(self, graph):
        with Session(graph, workers=2) as session:
            result = session.query().sampler(
                "mc", theta=16, seed=3
            ).top_k(2).mpds()
        assert result == top_k_mpds(graph, k=2, theta=16, seed=3)


# ----------------------------------------------------------------------
# result serialization protocol
# ----------------------------------------------------------------------
class TestResultSerialization:
    def test_mpds_round_trip(self, graph):
        result = top_k_mpds(graph, k=3, theta=24, seed=9)
        result.replayed_worlds = 2  # exercise the counter round-trip
        rebuilt = MPDSResult.from_dict(result.to_dict())
        assert rebuilt == result
        via_json = MPDSResult.from_json(result.to_json())
        assert via_json == result
        assert via_json.candidates == result.candidates
        assert via_json.densest_counts == result.densest_counts
        assert via_json.replayed_worlds == 2

    def test_nds_round_trip(self, graph):
        result = top_k_nds(graph, k=2, theta=24, seed=9)
        rebuilt = NDSResult.from_json(result.to_json())
        assert rebuilt == result
        assert rebuilt.transactions == result.transactions
        assert rebuilt.theta == result.theta

    def test_scored_node_set_round_trip(self):
        scored = ScoredNodeSet(frozenset({"B", "A"}), 0.25)
        data = scored.to_dict()
        assert data["nodes"] == ["A", "B"]
        assert ScoredNodeSet.from_dict(data) == scored

    def test_kind_dispatch(self, graph):
        mpds = top_k_mpds(graph, k=1, theta=8, seed=1)
        nds = top_k_nds(graph, k=1, theta=8, seed=1)
        assert result_from_dict(mpds.to_dict()) == mpds
        assert result_from_json(nds.to_json()) == nds
        with pytest.raises(ValueError, match="unknown result kind"):
            result_from_dict({"kind": "zds"})
        with pytest.raises(ValueError, match="cannot rebuild"):
            MPDSResult.from_dict(nds.to_dict())

    def test_json_is_actually_json(self, graph):
        text = top_k_mpds(graph, k=2, theta=8, seed=1).to_json()
        payload = json.loads(text)
        assert payload["kind"] == "mpds"
        assert isinstance(payload["top"], list)
