"""Fig. 16: running times of MPDS / NDS across density notions.

Four panels in the paper: (a) edge & clique MPDS on the small datasets;
(b) pattern MPDS on the small datasets; (c) edge & clique NDS on the large
datasets; (d) heuristic pattern NDS on the large datasets.  Expected
shapes: edge density is the cheapest (smallest flow networks); among
cliques there is no uniform winner (bigger cliques are fewer but slower to
list); the heuristic keeps patterns tractable on the large graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.heuristics import HeuristicMeasure
from ..core.measures import CliqueDensity, DensityMeasure, EdgeDensity, PatternDensity
from ..core.mpds import top_k_mpds
from ..core.nds import top_k_nds
from ..graph.uncertain import UncertainGraph
from ..patterns.pattern import paper_patterns
from .common import DEFAULT_THETA, LARGE_DATASETS, SMALL_DATASETS, format_table, timed


@dataclass
class RuntimeRow:
    """One (dataset, notion) bar of Fig. 16."""

    panel: str
    dataset: str
    notion: str
    seconds: float


def clique_measures(hs=(3, 4, 5)) -> Dict[str, DensityMeasure]:
    """Edge plus h-clique measures (Fig. 16 panels a/c)."""
    measures: Dict[str, DensityMeasure] = {"edge": EdgeDensity()}
    for h in hs:
        measures[f"{h}-clique"] = CliqueDensity(h)
    return measures


def pattern_measures() -> Dict[str, DensityMeasure]:
    """The four paper patterns (Fig. 16 panels b/d)."""
    return {p.name: PatternDensity(p) for p in paper_patterns()}


def run_fig16_mpds(
    datasets: Optional[Dict[str, Callable[[], UncertainGraph]]] = None,
    measures: Optional[Dict[str, DensityMeasure]] = None,
    panel: str = "a",
    theta: Optional[int] = None,
    seed: int = 7,
) -> List[RuntimeRow]:
    """Panels (a)/(b): MPDS runtimes on the small datasets."""
    datasets = datasets or SMALL_DATASETS
    measures = measures or clique_measures()
    rows: List[RuntimeRow] = []
    for name, loader in datasets.items():
        graph = loader()
        t = theta or DEFAULT_THETA.get(name, 64)
        for notion, measure in measures.items():
            _result, seconds = timed(
                lambda: top_k_mpds(graph, k=1, theta=t, measure=measure, seed=seed)
            )
            rows.append(RuntimeRow(panel, name, notion, seconds))
    return rows


def run_fig16_nds(
    datasets: Optional[Dict[str, Callable[[], UncertainGraph]]] = None,
    measures: Optional[Dict[str, DensityMeasure]] = None,
    panel: str = "c",
    heuristic: bool = False,
    theta: Optional[int] = None,
    seed: int = 7,
) -> List[RuntimeRow]:
    """Panels (c)/(d): NDS runtimes on the large datasets.

    ``heuristic=True`` wraps the measures in :class:`HeuristicMeasure`
    (panel d: heuristic pattern NDS).
    """
    datasets = datasets or {
        name: fn for name, fn in LARGE_DATASETS.items() if name != "Friendster"
    }
    measures = measures or clique_measures()
    rows: List[RuntimeRow] = []
    for name, loader in datasets.items():
        graph = loader()
        t = theta or DEFAULT_THETA.get(name, 32)
        for notion, measure in measures.items():
            effective = HeuristicMeasure(measure) if heuristic else measure
            _result, seconds = timed(
                lambda: top_k_nds(
                    graph, k=1, min_size=2, theta=t,
                    measure=effective, seed=seed,
                )
            )
            rows.append(RuntimeRow(panel, name, notion, seconds))
    return rows


def run_fig16_engine_comparison(
    datasets: Optional[Dict[str, Callable[[], UncertainGraph]]] = None,
    theta: Optional[int] = None,
    seed: int = 7,
) -> List[RuntimeRow]:
    """Engine ablation rider on panel (a): edge-density MPDS per engine.

    Times the same Monte Carlo + edge-density estimation once per
    possible-world engine (``repro.engine``); the engines return
    identical estimates, so the rows differ only in runtime.
    """
    datasets = datasets or SMALL_DATASETS
    rows: List[RuntimeRow] = []
    for name, loader in datasets.items():
        graph = loader()
        t = theta or DEFAULT_THETA.get(name, 64)
        results = {}
        for engine in ("python", "vectorized"):
            result, seconds = timed(
                lambda: top_k_mpds(
                    graph, k=1, theta=t, seed=seed, engine=engine
                )
            )
            results[engine] = result
            rows.append(RuntimeRow("a", name, f"edge[{engine}]", seconds))
        if results["python"].candidates != results["vectorized"].candidates:
            raise AssertionError(
                f"engines disagree on {name}: the vectorized engine must "
                "return identical estimates"
            )
    return rows


def format_fig16(rows: List[RuntimeRow]) -> str:
    """Render the Fig. 16 bars as a table."""
    headers = ["Panel", "Dataset", "Notion", "Time(s)"]
    body = [[r.panel, r.dataset, r.notion, r.seconds] for r in rows]
    return format_table(headers, body)
