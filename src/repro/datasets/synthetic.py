"""Scaled-down synthetic stand-ins for the paper's large datasets.

The paper evaluates on seven real graphs (Table II); all but Karate Club
are unavailable or too large for a pure-Python laptop reproduction, so each
gets a generator matched on its *published* characteristics: graph family,
edge-probability distribution (mean / spread per Table II), and the
presence of dense communities so densest-subgraph structure exists.  Sizes
are scaled down by 1-4 orders of magnitude (documented per generator and
in DESIGN.md); the experiments' qualitative comparisons survive the
scaling, absolute numbers do not.

Every generator plants one or more dense communities with above-background
edge probabilities -- mirroring the real datasets, where communities /
protein complexes / echo chambers are precisely what MPDS and NDS find.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from ..graph.generators import barabasi_albert, exponential_cdf_probability
from ..graph.graph import Graph
from ..graph.uncertain import UncertainGraph


def _plant_community(
    graph: UncertainGraph,
    members: Sequence,
    rng: random.Random,
    edge_fraction: float,
    low: float,
    high: float,
) -> None:
    """Overlay a dense community: near-clique with probabilities in [low, high]."""
    members = list(members)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if rng.random() < edge_fraction:
                graph.add_edge(u, v, rng.uniform(low, high))


def make_intel_lab_like(
    n: int = 54, seed: int = 2023
) -> UncertainGraph:
    """Sensor network stand-in for Intel Lab (54 nodes, ~969 edges).

    Sensors sit on a grid; a link's probability is its delivery rate,
    decaying with distance (Table II: mean 0.33, std 0.19).  This one is
    *not* scaled down -- the real dataset is already tiny.
    """
    rng = random.Random(seed)
    columns = 9
    positions = {i: (i % columns, i // columns) for i in range(n)}
    graph = UncertainGraph()
    for node in range(n):
        graph.add_node(node)
    for u in range(n):
        for v in range(u + 1, n):
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            distance = math.hypot(dx, dy)
            if distance > 4.6:
                continue
            quality = max(0.02, min(0.98, 0.85 * math.exp(-distance / 2.2)
                                    + rng.gauss(0.0, 0.08)))
            graph.add_edge(u, v, quality)
    return graph


def make_lastfm_like(
    n: int = 400, seed: int = 2023, communities: int = 3
) -> UncertainGraph:
    """Social-network stand-in for LastFM (scaled 6 899 -> ~400 nodes).

    BA topology with reciprocal-degree probabilities (the paper's LastFM
    model) plus planted listening communities with higher probabilities.
    """
    rng = random.Random(seed)
    topology = barabasi_albert(n, 3, rng)
    graph = UncertainGraph()
    for node in topology:
        graph.add_node(node)
    for u, v in topology.edges():
        graph.add_edge(u, v, 1.0 / max(topology.degree(u), topology.degree(v)))
    for c in range(communities):
        size = rng.randint(8, 12)
        members = rng.sample(range(n), size)
        _plant_community(graph, members, rng, 0.85, 0.45, 0.8)
    return graph


def make_homo_sapiens_like(
    n: int = 700, seed: int = 2023, complexes: int = 5
) -> UncertainGraph:
    """PPI stand-in for Homo Sapiens (scaled 18 384 -> ~700 nodes).

    Power-law interaction topology; probabilities are experiment
    confidences (Table II: mean 0.32); protein complexes appear as planted
    high-confidence near-cliques.
    """
    rng = random.Random(seed)
    topology = barabasi_albert(n, 4, rng)
    graph = UncertainGraph()
    for node in topology:
        graph.add_node(node)
    for u, v in topology.edges():
        confidence = min(0.95, max(0.02, rng.betavariate(2.0, 4.2)))
        graph.add_edge(u, v, confidence)
    for c in range(complexes):
        size = rng.randint(8, 14)
        members = rng.sample(range(n), size)
        _plant_community(graph, members, rng, 0.9, 0.6, 0.95)
    return graph


def make_biomine_like(
    n: int = 1000, seed: int = 2023, communities: int = 6
) -> UncertainGraph:
    """Biological-database stand-in for Biomine (scaled 1M -> ~1000 nodes)."""
    rng = random.Random(seed)
    topology = barabasi_albert(n, 5, rng)
    graph = UncertainGraph()
    for node in topology:
        graph.add_node(node)
    for u, v in topology.edges():
        relevance = min(0.95, max(0.01, rng.betavariate(1.6, 4.4)))
        graph.add_edge(u, v, relevance)
    for c in range(communities):
        size = rng.randint(9, 15)
        members = rng.sample(range(n), size)
        _plant_community(graph, members, rng, 0.9, 0.55, 0.9)
    return graph


def make_twitter_like(
    n: int = 1200, seed: int = 2023, communities: int = 5
) -> UncertainGraph:
    """Retweet-network stand-in for Twitter (scaled 6.3M -> ~1200 nodes).

    Exponential-CDF probabilities over synthetic retweet counts with mean
    count ~3 (Table II: probability mean 0.14), plus planted echo chambers
    whose members retweet each other heavily.
    """
    rng = random.Random(seed)
    topology = barabasi_albert(n, 4, rng)
    graph = UncertainGraph()
    for node in topology:
        graph.add_node(node)
    for u, v in topology.edges():
        retweets = 1 + int(rng.expovariate(1 / 2.5))
        graph.add_edge(u, v, exponential_cdf_probability(retweets, 20.0))
    for c in range(communities):
        size = rng.randint(10, 16)
        members = rng.sample(range(n), size)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < 0.85:
                    retweets = 10 + int(rng.expovariate(1 / 20.0))
                    graph.add_edge(
                        u, v, exponential_cdf_probability(retweets, 20.0)
                    )
    return graph


def make_friendster_like(
    n: int = 1500, seed: int = 2023, communities: int = 4
) -> UncertainGraph:
    """Stand-in for Friendster (scaled 65M -> ~1500 nodes).

    Extremely low background probabilities (Table II: mean 0.005) with a
    handful of tight friend groups at moderate probabilities -- the regime
    in which the paper switches to its heuristic methods (Table XII).
    """
    rng = random.Random(seed)
    topology = barabasi_albert(n, 6, rng)
    graph = UncertainGraph()
    for node in topology:
        graph.add_node(node)
    for u, v in topology.edges():
        interactions = rng.random()
        graph.add_edge(u, v, max(0.0005, min(0.05, rng.expovariate(1 / 0.004))))
    for c in range(communities):
        size = rng.randint(10, 14)
        members = rng.sample(range(n), size)
        _plant_community(graph, members, rng, 0.9, 0.15, 0.45)
    return graph
