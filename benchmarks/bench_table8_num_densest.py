"""Table VIII: distribution of #densest subgraphs per sampled world."""

from repro.experiments import format_table8, run_table8

from .conftest import BENCH_SMALL, emit


def test_table8(benchmark):
    datasets = {
        "KarateClub": BENCH_SMALL["KarateClub"],
        "LastFM": BENCH_SMALL["LastFM"],
    }
    rows = benchmark.pedantic(
        lambda: run_table8(datasets=datasets, theta=24),
        rounds=1, iterations=1,
    )
    emit("table8_num_densest_subgraphs", format_table8(rows))
    assert len(rows) == 6  # 2 datasets x {edge, 3-clique, diamond}
    for row in rows:
        assert row.mean >= 0 and row.std >= 0
