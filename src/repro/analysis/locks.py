"""Lock-discipline checker (LOCK2xx).

Thread-shared mutable state in the session/serving tier is guarded by
per-object locks.  The rules are declarative: :data:`LOCK_REGISTRY` maps
a file to the attribute-ownership contract of each shared class -- which
attributes a lock owns, and which attributes (Conditions built on that
lock) count as holding it.

``LOCK201``
    A read or write of an owned attribute reached without holding the
    owner's lock *on the same receiver*.  ``with self._lock:`` guards
    ``self.stats`` but NOT ``self.admission.draining`` -- that needs
    ``self.admission``'s own lock (or a locked accessor method on the
    owning class).

The matcher is receiver-syntactic (``self``, ``session``,
``self.admission`` compared by unparsed text), which is exactly right
for the idioms in this codebase; cross-file aliasing (e.g. a CLI reading
``session.stats``) is out of scope and documented as such.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .core import Checker, Finding, SourceFile, unparse


@dataclass(frozen=True)
class Ownership:
    """One class's lock contract: ``lock_attr`` owns ``attrs``."""

    cls: str
    lock_attr: str
    attrs: FrozenSet[str]
    #: Condition/Event attributes constructed over the same lock --
    #: ``with self._drained:`` acquires the underlying lock too
    lock_aliases: Tuple[str, ...] = ()
    #: methods exempt from the contract (construction, finalizers)
    exempt: Tuple[str, ...] = ("__init__", "__del__")


#: file suffix -> ownership contracts for the shared classes it defines
LOCK_REGISTRY: Dict[str, Tuple[Ownership, ...]] = {
    "repro/session.py": (
        Ownership(
            cls="Session",
            lock_attr="_lock",
            attrs=frozenset(
                {
                    "stats",
                    "_stores",
                    "_eval_cache",
                    "_store_flights",
                    "_eval_flights",
                    "_published",
                    "_graph_segment",
                    "_indexed",
                }
            ),
        ),
    ),
    "repro/serve.py": (
        Ownership(
            cls="AdmissionController",
            lock_attr="_lock",
            attrs=frozenset(
                {
                    "draining",
                    "paused",
                    "active",
                    "peak_active",
                    "admitted",
                    "rejected",
                    "heavy_routed",
                }
            ),
            lock_aliases=("_drained", "_resume"),
        ),
        Ownership(
            cls="ReproServer",
            lock_attr="_lock",
            attrs=frozenset(
                {"stats", "_graphs", "_histograms", "_shadow_acc", "_closed"}
            ),
        ),
        Ownership(
            cls="LatencyHistogram",
            lock_attr="_lock",
            attrs=frozenset(
                {"counts", "count", "total_ms", "min_ms", "max_ms"}
            ),
        ),
    ),
}


class LockDisciplineChecker(Checker):
    family = "LOCK"

    def __init__(self, registry: Dict[str, Sequence[Ownership]] = None):
        self.registry = LOCK_REGISTRY if registry is None else registry

    def run(self, src: SourceFile) -> List[Finding]:
        if src.kind != "python" or src.tree is None:
            return []
        rules: List[Ownership] = []
        for suffix, owned in self.registry.items():
            if src.label.endswith(suffix):
                rules.extend(owned)
        if not rules:
            return []
        owned_attrs: Set[str] = set()
        lock_names: Set[str] = set()
        exempt: Set[str] = set()
        for rule in rules:
            owned_attrs |= set(rule.attrs)
            lock_names.add(rule.lock_attr)
            lock_names.update(rule.lock_aliases)
            exempt.update(rule.exempt)
        findings: List[Finding] = []
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in exempt:
                continue
            self._check_function(
                src, fn, owned_attrs, lock_names, frozenset(), findings
            )
        return findings

    def _check_function(self, src, fn, owned_attrs, lock_names, held, findings):
        for stmt in fn.body:
            self._visit(src, stmt, owned_attrs, lock_names, set(held), findings)

    def _visit(self, src, node, owned_attrs, lock_names, held, findings):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are visited at the top level
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                ce = item.context_expr
                if isinstance(ce, ast.Attribute) and ce.attr in lock_names:
                    inner.add(unparse(ce.value))
            for stmt in node.body:
                self._visit(src, stmt, owned_attrs, lock_names, inner, findings)
            return
        # flag owned-attribute accesses whose receiver's lock is not held
        if isinstance(node, ast.Attribute) and node.attr in owned_attrs:
            receiver = unparse(node.value)
            if receiver not in held:
                findings.append(
                    self.finding(
                        "LOCK201",
                        src,
                        node,
                        f"access to {receiver}.{node.attr} without holding "
                        f"{receiver}'s lock",
                        f"wrap in `with {receiver}._lock:` or call a locked "
                        "accessor on the owning class",
                    )
                )
            # still recurse into the receiver expression
            self._visit(src, node.value, owned_attrs, lock_names, held, findings)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(src, child, owned_attrs, lock_names, held, findings)
