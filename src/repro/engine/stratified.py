"""Vectorised Recursive Stratified Sampling (batched free-edge trials).

The pure-Python :class:`~repro.sampling.stratified.RecursiveStratifiedSampler`
walks a deterministic recursion tree (stratum selection and allocation use
no randomness) and draws one world at a time at the leaves, one
``rng.random()`` call per free edge.  This module reuses that exact tree
via :meth:`~repro.sampling.stratified.RecursiveStratifiedSampler.leaf_strata`
and replaces the per-world flips with one
``random_sample((rows, |free|)) < probs[free]`` trial matrix per batch of
rows -- row-major fill order makes the doubles land on exactly the edges
the sequential sampler would have flipped, so for the same seed the worlds
are byte-identical, just represented as boolean edge masks.

Stratum masks: each leaf's fixed edge states become a base mask shared by
all of its worlds; the weighted estimator combine (weight =
``Pr(stratum) / theta_stratum``) is inherited unchanged from the leaf.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Union

import numpy as np

from ..graph.uncertain import UncertainGraph
from ..sampling.base import WeightedWorld
from ..sampling.stratified import RecursiveStratifiedSampler
from .indexed import IndexedGraph, MaskWorld
from .sampler import DEFAULT_BATCH, randomstate_like, write_back_state


class VectorizedStratifiedSampler:
    """RSS sampler drawing each stratum's free-edge trials in numpy batches.

    Drop-in replacement for :class:`RecursiveStratifiedSampler`: for the
    same seed it yields byte-identical weighted worlds.  The recursion
    tree (and its ``memory_units`` peak bookkeeping) is delegated to a
    wrapped pure-Python sampler, so the stratum structure cannot drift
    between engines.
    """

    name = "RSS"

    def __init__(
        self,
        graph: Union[UncertainGraph, IndexedGraph],
        seed: Optional[int] = None,
        r: int = 4,
        max_depth: int = 2,
        min_samples_to_recurse: int = 32,
        batch: int = DEFAULT_BATCH,
    ) -> None:
        if isinstance(graph, IndexedGraph):
            indexed = graph
            uncertain = graph.to_uncertain()
        else:
            indexed = IndexedGraph.from_uncertain(graph)
            uncertain = graph
        inner = RecursiveStratifiedSampler(
            uncertain,
            seed=seed,
            r=r,
            max_depth=max_depth,
            min_samples_to_recurse=min_samples_to_recurse,
        )
        self._bind(inner, indexed, adopted=False, batch=batch)

    def _bind(
        self,
        inner: RecursiveStratifiedSampler,
        indexed: IndexedGraph,
        adopted: bool,
        batch: int,
    ) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self._inner = inner
        self._indexed = indexed
        self._state = randomstate_like(inner._rng)
        self._source_rng = inner._rng if adopted else None
        self._batch = batch

    @classmethod
    def from_stratified(
        cls,
        sampler: RecursiveStratifiedSampler,
        batch: int = DEFAULT_BATCH,
    ) -> "VectorizedStratifiedSampler":
        """Adopt a pure-Python RSS sampler's graph and *current* RNG state.

        Every trial batch drawn here is synced back into ``sampler``'s
        RNG, and ``sampler`` itself provides the recursion tree, so its
        ``memory_units`` bookkeeping stays correct and the original
        sampler remains interleavable between engines.
        """
        out = cls.__new__(cls)
        out._bind(
            sampler,
            IndexedGraph.from_uncertain(sampler._graph),
            adopted=True,
            batch=batch,
        )
        return out

    def _sync_source(self) -> None:
        if self._source_rng is not None:
            write_back_state(self._state, self._source_rng)

    @property
    def indexed(self) -> IndexedGraph:
        """The shared index arrays (built once per uncertain graph)."""
        return self._indexed

    def mask_worlds(self, theta: int) -> Iterator[WeightedWorld]:
        """Yield ~``theta`` :class:`MaskWorld`-backed weighted worlds."""
        indexed = self._indexed
        for fixed, free, allocation, probability in self._inner.leaf_strata(
            theta
        ):
            weight = probability / allocation
            fixed_present = np.array(
                [index for index, present in fixed.items() if present],
                dtype=np.int64,
            )
            free_arr = np.asarray(free, dtype=np.int64)
            base = np.zeros(indexed.m, dtype=bool)
            base[fixed_present] = True
            free_probs = indexed.probs[free_arr]
            # bound the live trial matrix at ~batch cells per draw
            rows_cap = max(1, self._batch // max(1, free_arr.size))
            done = 0
            while done < allocation:
                rows = min(allocation - done, rows_cap)
                if free_arr.size:
                    trials = (
                        self._state.random_sample((rows, free_arr.size))
                        < free_probs
                    )
                    self._sync_source()
                else:
                    trials = np.zeros((rows, 0), dtype=bool)
                for i in range(rows):
                    present_free = free_arr[trials[i]]
                    mask = base.copy()
                    mask[present_free] = True
                    # python insertion order: fixed present edges first
                    # (dict order), then the surviving free edges
                    order = np.concatenate([fixed_present, present_free])
                    yield WeightedWorld(
                        MaskWorld(indexed, mask, order=order), weight
                    )
                done += rows

    def worlds(self, theta: int) -> Iterator[WeightedWorld]:
        """Yield ~``theta`` materialised weighted worlds.

        Byte-identical to :meth:`RecursiveStratifiedSampler.worlds` for
        the same seed (same graphs, weights and insertion order).
        """
        for weighted in self.mask_worlds(theta):
            yield WeightedWorld(weighted.graph.to_graph(), weighted.weight)

    def memory_units(self) -> int:
        """Peak fixed-edge bookkeeping (delegated to the recursion tree)."""
        return self._inner.memory_units()
