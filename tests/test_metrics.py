"""Tests for the quality and cohesiveness metrics."""

from __future__ import annotations

import math

import pytest

from repro.graph.graph import Graph
from repro.graph.uncertain import UncertainGraph
from repro.metrics.density import clique_density, edge_density, pattern_density
from repro.metrics.probabilistic import (
    probabilistic_clustering_coefficient,
    probabilistic_density,
)
from repro.metrics.quality import (
    average_f1_by_rank,
    average_purity,
    f1_score,
    jaccard,
    purity,
    top_k_similarity,
)
from repro.patterns.pattern import Pattern


class TestDensityWrappers:
    def test_edge_density(self, triangle_graph):
        assert edge_density(triangle_graph) == 1
        assert edge_density(triangle_graph, [1, 2]) == 0.5

    def test_clique_density(self, triangle_graph):
        assert clique_density(triangle_graph, 3) == pytest.approx(1 / 3)

    def test_pattern_density(self, triangle_graph):
        assert pattern_density(triangle_graph, Pattern.two_star()) == 1


class TestProbabilisticDensity:
    def test_pd_formula(self):
        graph = UncertainGraph.from_weighted_edges(
            [(1, 2, 0.5), (2, 3, 0.25)]
        )
        # PD = 2 * (0.5 + 0.25) / (3 * 2) = 0.25
        assert probabilistic_density(graph, [1, 2, 3]) == pytest.approx(0.25)

    def test_pd_small_sets(self):
        graph = UncertainGraph.from_weighted_edges([(1, 2, 0.5)])
        assert probabilistic_density(graph, [1]) == 0.0
        assert probabilistic_density(graph, []) == 0.0

    def test_pd_complete_certain(self):
        graph = UncertainGraph.from_weighted_edges(
            [(1, 2, 1.0), (2, 3, 1.0), (1, 3, 1.0)]
        )
        assert probabilistic_density(graph, [1, 2, 3]) == pytest.approx(1.0)

    def test_pcc_certain_triangle(self):
        graph = UncertainGraph.from_weighted_edges(
            [(1, 2, 1.0), (2, 3, 1.0), (1, 3, 1.0)]
        )
        assert probabilistic_clustering_coefficient(graph, [1, 2, 3]) == \
            pytest.approx(1.0)

    def test_pcc_open_wedge(self):
        graph = UncertainGraph.from_weighted_edges([(1, 2, 0.9), (2, 3, 0.9)])
        assert probabilistic_clustering_coefficient(graph, [1, 2, 3]) == 0.0

    def test_pcc_hand_computed(self):
        graph = UncertainGraph.from_weighted_edges(
            [(1, 2, 0.5), (2, 3, 0.5), (1, 3, 0.5), (3, 4, 1.0)]
        )
        # triangle weight = 0.125; wedges: at node 1: (2,3) 0.25; node 2:
        # (1,3) 0.25; node 3: (1,2) .25, (1,4) .5, (2,4) .5 -> total 1.75
        expected = 3 * 0.125 / 1.75
        assert probabilistic_clustering_coefficient(graph, [1, 2, 3, 4]) == \
            pytest.approx(expected)


class TestQualityMetrics:
    def test_purity(self):
        communities = {1: "a", 2: "a", 3: "b", 4: "b"}
        assert purity([1, 2], communities) == 1.0
        assert purity([1, 2, 3], communities) == pytest.approx(2 / 3)
        assert purity([], communities) == 0.0

    def test_average_purity(self):
        communities = {1: "a", 2: "a", 3: "b"}
        assert average_purity([[1, 2], [1, 3]], communities) == \
            pytest.approx(0.75)

    def test_f1_score(self):
        assert f1_score([1, 2], [1, 2]) == 1.0
        assert f1_score([1, 2], [3, 4]) == 0.0
        assert f1_score([1, 2, 3], [1, 2]) == pytest.approx(0.8)

    def test_average_f1_by_rank(self):
        returned = [[1, 2], [3]]
        truth = [[1, 2], [4]]
        assert average_f1_by_rank(returned, truth) == pytest.approx(0.5)
        assert average_f1_by_rank([], []) == 0.0
        # missing ranks score zero
        assert average_f1_by_rank([[1]], [[1], [2]]) == pytest.approx(0.5)

    def test_jaccard(self):
        assert jaccard([1, 2], [2, 3]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0

    def test_top_k_similarity(self):
        a = [[1, 2], [3, 4]]
        b = [[1, 2], [3, 4]]
        assert top_k_similarity(a, b) == 1.0
        assert top_k_similarity(a, [[9, 10], [11]]) == 0.0
        assert top_k_similarity([], []) == 1.0
        partial = top_k_similarity([[1, 2]], [[1, 3]])
        assert 0.0 < partial < 1.0
