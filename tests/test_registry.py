"""Tests for the experiment registry and the CLI `reproduce` command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_names,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_experiment_is_registered(self):
        names = set(experiment_names())
        expected = {
            "table1", "table3", "table4", "table5", "table6", "table7",
            "table8", "table9", "table10", "table11", "table12", "table13",
            "table14", "table15", "fig16a", "fig16b", "fig16c", "fig16d",
            "fig17", "fig18", "fig19", "fig20", "karate-case", "brain-case",
        }
        assert expected <= names

    def test_all_entries_are_callables(self):
        for name, runner in EXPERIMENTS.items():
            assert callable(runner), name

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="table1"):
            run_experiment("no-such-table")

    def test_table1_output_matches_paper_cells(self):
        """Table I is an exact recomputation: spot-check the paper's values."""
        text = run_experiment("table1")
        assert "0.42" in text   # DSP of {B, D}
        assert "0.38" in text   # EED of {A, B, C, D}
        assert "EED" in text and "DSP" in text


class TestCLIReproduce:
    def test_list_prints_names(self, capsys):
        assert main(["reproduce", "list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "brain-case" in out

    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "DSP" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["reproduce", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
