"""Probabilistic (k, eta)-core decomposition (Bonchi et al. [40]).

The eta-degree of a node ``v`` in an uncertain graph is the largest ``k``
such that ``Pr[deg(v) >= k] >= eta``; the degree distribution is
Poisson-binomial over the independent incident edges and is evaluated with
the standard O(d^2) dynamic program.

The (k, eta)-core is the maximal subgraph in which every node has
eta-degree >= k; the decomposition peels by minimum eta-degree, recomputing
the eta-degrees of the removed node's neighbours.  The paper compares its
*innermost* core (largest k with a non-empty core) against the MPDS/NDS in
Tables III-VI and the case studies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..graph.graph import Node
from ..graph.uncertain import UncertainGraph


def degree_tail_probabilities(probabilities: Sequence[float]) -> List[float]:
    """Return ``tail[k] = Pr[deg >= k]`` for a Poisson-binomial degree.

    ``probabilities`` are the existence probabilities of the incident
    edges; ``tail`` has length ``len(probabilities) + 1`` and starts at 1.
    """
    pmf = [1.0]
    for p in probabilities:
        nxt = [0.0] * (len(pmf) + 1)
        for j, mass in enumerate(pmf):
            nxt[j] += mass * (1.0 - p)
            nxt[j + 1] += mass * p
        pmf = nxt
    tail = [0.0] * (len(pmf) + 1)
    running = 0.0
    for j in range(len(pmf) - 1, -1, -1):
        running += pmf[j]
        tail[j] = min(1.0, running)
    return tail[: len(pmf)]


def eta_degree(probabilities: Sequence[float], eta: float) -> int:
    """Return the largest ``k`` with ``Pr[deg >= k] >= eta``."""
    tail = degree_tail_probabilities(probabilities)
    best = 0
    for k in range(len(tail)):
        if tail[k] >= eta:
            best = k
    return best


def eta_core_decomposition(
    graph: UncertainGraph, eta: float
) -> Dict[Node, int]:
    """Return (k, eta)-core numbers for every node (peeling [40])."""
    alive = {node: True for node in graph}
    neighbors: Dict[Node, set] = {node: set(graph.neighbors(node)) for node in graph}

    def current_eta_degree(node: Node) -> int:
        probs = [
            graph.probability(node, nbr)
            for nbr in neighbors[node]
            if alive[nbr]
        ]
        return eta_degree(probs, eta)

    degrees = {node: current_eta_degree(node) for node in graph}
    core: Dict[Node, int] = {}
    current = 0
    remaining = set(graph.nodes())
    while remaining:
        node = min(remaining, key=lambda v: (degrees[v], repr(v)))
        current = max(current, degrees[node])
        core[node] = current
        remaining.discard(node)
        alive[node] = False
        for nbr in neighbors[node]:
            if alive[nbr]:
                degrees[nbr] = current_eta_degree(nbr)
    return core


def k_eta_core(
    graph: UncertainGraph, k: int, eta: float
) -> FrozenSet[Node]:
    """Return the node set of the (k, eta)-core (possibly empty)."""
    core = eta_core_decomposition(graph, eta)
    return frozenset(node for node, c in core.items() if c >= k)


def innermost_eta_core(
    graph: UncertainGraph, eta: float
) -> Tuple[int, FrozenSet[Node]]:
    """Return ``(k_max, nodes)`` of the innermost (k, eta)-core.

    The paper uses ``eta = 0.1`` in its comparisons (Tables III-VI).
    """
    core = eta_core_decomposition(graph, eta)
    if not core:
        return 0, frozenset()
    k_max = max(core.values())
    return k_max, frozenset(node for node, c in core.items() if c >= k_max)
