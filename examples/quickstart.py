#!/usr/bin/env python
"""Quickstart: Most Probable Densest Subgraphs on the paper's Fig. 1 graph.

Builds the 4-node uncertain graph of the paper's running example, then:

1. finds the top-3 MPDSs with the sampling estimator (Algorithm 1) and
   compares them against the exact (#P-hard) enumeration;
2. contrasts the MPDS with the expected densest subgraph (the baseline the
   paper improves on -- Example 1);
3. finds the top nucleus densest subgraphs (Algorithm 5);
4. prints the Theorem 2/3 accuracy bounds for the chosen sample size.

Run:  python examples/quickstart.py

Choosing a possible-world engine
--------------------------------
``top_k_mpds`` / ``top_k_nds`` accept ``engine="auto" | "python" |
"vectorized"`` (also reachable from the CLI: ``repro-mpds mpds ...
--engine vectorized``).  The default ``"auto"`` silently switches to the
vectorised engine (``repro.engine``) for every guaranteed byte-identical
combination: any of the paper's samplers (Monte Carlo -- the default --,
Lazy Propagation, Recursive Stratified Sampling) with any of the paper's
measures (edge, clique or pattern density).  Each sampler's vectorised
twin replays its exact RNG stream in numpy batches, and each sampled
world stays an array its whole life: edge-density worlds are peeled,
core-shrunk, max-flowed (CSR push-relabel on integer capacities) and
condensed without ever materialising ``Graph`` objects, while
clique/pattern worlds materialise only the k-core that provably contains
every densest set.  Several times faster on non-trivial graphs while
returning *byte-identical estimates for the same seed* (proven by the
sweep in ``tests/test_engine_differential.py``; see the "Execution
substrates" section of ``docs/API.md`` for the three world
representations and their contract).

Force the pure-Python reference path with ``engine="python"`` (useful
for timing comparisons -- see ``benchmarks/bench_engine.py``, which
reports sampling and world-evaluation stages separately -- or when
debugging), or force ``engine="vectorized"`` to use batch sampling with
any density measure (custom measures run through a mask -> Graph
adapter).  Custom sampler or measure *types* fall back to the
pure-Python path under ``"auto"``.
"""

from __future__ import annotations

from repro import UncertainGraph, exact_top_k_mpds, top_k_mpds, top_k_nds
from repro.baselines import expected_densest_subgraph
from repro.core import theorem2_candidate_inclusion_bound, theorem3_return_bound


def main() -> None:
    # the paper's Fig. 1 uncertain graph: three edges with probabilities
    graph = UncertainGraph.from_weighted_edges([
        ("A", "B", 0.4),
        ("A", "C", 0.4),
        ("B", "D", 0.7),
    ])

    print("== Top-3 MPDS (Algorithm 1, theta = 2000 samples) ==")
    theta = 2000
    approx = top_k_mpds(graph, k=3, theta=theta, seed=7)
    for rank, scored in enumerate(approx.top, 1):
        print(f"  #{rank}: {sorted(scored.nodes)}  "
              f"tau-hat = {scored.probability:.3f}")

    print("\n== Exact top-3 (full possible-world enumeration) ==")
    exact = exact_top_k_mpds(graph, k=3)
    for rank, scored in enumerate(exact.top, 1):
        print(f"  #{rank}: {sorted(scored.nodes)}  tau = {scored.probability:.3f}")

    print("\n== Why not expected density? (Example 1) ==")
    eds = expected_densest_subgraph(graph)
    eds_tau = exact.candidates.get(eds.nodes, 0.0)
    print(f"  EDS = {sorted(eds.nodes)} has expected density "
          f"{float(eds.density):.3f}, but tau = {eds_tau:.2f};")
    best = exact.best()
    print(f"  the MPDS {sorted(best.nodes)} is densest with probability "
          f"{best.probability:.2f} -- 1.5x more likely.")

    print("\n== Top-2 NDS (Algorithm 5, l_m = 2) ==")
    nds = top_k_nds(graph, k=2, min_size=2, theta=theta, seed=7)
    for rank, scored in enumerate(nds.top, 1):
        print(f"  #{rank}: {sorted(scored.nodes)}  "
              f"gamma-hat = {scored.probability:.3f}")

    print("\n== Engines agree byte-for-byte (same seed) ==")
    python_run = top_k_mpds(graph, k=3, theta=theta, seed=7, engine="python")
    vector_run = top_k_mpds(graph, k=3, theta=theta, seed=7,
                            engine="vectorized")
    print(f"  identical estimates: "
          f"{python_run.candidates == vector_run.candidates}")

    print("\n== So does the shared-memory parallel substrate ==")
    from repro.core.parallel import parallel_top_k_mpds

    parallel_run = parallel_top_k_mpds(graph, k=3, theta=theta, seed=7,
                                       workers=2)
    print(f"  identical estimates at workers=2: "
          f"{parallel_run.candidates == approx.candidates}")

    print("\n== Accuracy guarantees at theta =", theta, "==")
    taus = [s.probability for s in exact.top]
    others = [
        tau for nodes, tau in exact.candidates.items()
        if nodes not in set(exact.top_sets())
    ]
    inclusion = theorem2_candidate_inclusion_bound(taus, theta)
    returned = theorem3_return_bound(taus, others, theta)
    print(f"  Pr[true top-3 among candidates] >= {inclusion:.6f}  (Theorem 2)")
    print(f"  Pr[true top-3 returned]         >= {returned:.6f}  (Theorem 3)")


if __name__ == "__main__":
    main()
