"""Benchmark package marker.

Lets the bench modules use ``from .conftest import ...`` under a plain
``PYTHONPATH=src python -m pytest benchmarks/`` invocation (same
convention as ``tests/``).
"""
