"""Golden-file regression for the Table XIII/XIV sampler comparison.

Runs the MC / LP / RSS comparison on a tiny fixed graph and diffs the
deterministic parts (converged theta, memory bookkeeping, returned top-k
sets) against committed fixtures under ``benchmarks/results/``.  Any
change to a sampler's draw order, the convergence protocol, or the
engine's replay fidelity shows up as a golden diff before it can reach
the paper-scale benchmarks.

Regenerate the fixtures after an *intentional* change with::

    PYTHONPATH=src python -m tests.test_golden_sampling --write
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

from repro.experiments import golden_table13_14, run_table13, run_table14
from repro.graph.uncertain import UncertainGraph

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
TABLE13_GOLDEN = GOLDEN_DIR / "table13_tiny.golden"
TABLE14_GOLDEN = GOLDEN_DIR / "table14_tiny.golden"


def tiny_graph() -> UncertainGraph:
    """A fixed 12-node G(n, p) uncertain graph (same on every platform)."""
    rng = random.Random(2023)
    graph = UncertainGraph()
    for node in range(12):
        graph.add_node(node)
    for u in range(12):
        for v in range(u + 1, 12):
            if rng.random() < 0.3:
                graph.add_edge(u, v, rng.uniform(0.2, 0.9))
    return graph


def regenerate_table13() -> str:
    rows = run_table13(
        loader=tiny_graph, k=3, start_theta=8, max_theta=32, seed=7
    )
    return golden_table13_14(rows)


def regenerate_table14() -> str:
    rows = run_table14(
        loader=tiny_graph, k=3, min_size=2, start_theta=8, max_theta=32, seed=7
    )
    return golden_table13_14(rows)


def test_table13_matches_golden():
    assert TABLE13_GOLDEN.exists(), (
        f"missing fixture {TABLE13_GOLDEN}; regenerate with "
        "PYTHONPATH=src python -m tests.test_golden_sampling --write"
    )
    assert regenerate_table13() == TABLE13_GOLDEN.read_text(encoding="utf-8")


def test_table14_matches_golden():
    assert TABLE14_GOLDEN.exists(), (
        f"missing fixture {TABLE14_GOLDEN}; regenerate with "
        "PYTHONPATH=src python -m tests.test_golden_sampling --write"
    )
    assert regenerate_table14() == TABLE14_GOLDEN.read_text(encoding="utf-8")


def _write_fixtures() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    TABLE13_GOLDEN.write_text(regenerate_table13(), encoding="utf-8")
    TABLE14_GOLDEN.write_text(regenerate_table14(), encoding="utf-8")
    print(f"wrote {TABLE13_GOLDEN}")
    print(f"wrote {TABLE14_GOLDEN}")


if __name__ == "__main__":
    if "--write" in sys.argv:
        _write_fixtures()
    else:
        print(__doc__)
