"""Fig. 20: NDS sensitivity to k and to the minimum size l_m."""

from repro.experiments import format_fig20, run_fig20_k, run_fig20_lm

from .conftest import BENCH_LARGE, emit


def test_fig20(benchmark):
    def run():
        k_points = run_fig20_k(datasets=BENCH_LARGE, ks=(1, 5, 10, 50),
                               theta=16)
        lm_points = run_fig20_lm(loader=BENCH_LARGE["HomoSapiens"],
                                 lms=(1, 2, 3, 5, 8, 12, 20), theta=16)
        return k_points, lm_points

    k_points, lm_points = benchmark.pedantic(run, rounds=1, iterations=1)
    k_table, lm_table = format_fig20(k_points, lm_points)
    emit("fig20a_varying_k", k_table)
    emit("fig20b_varying_lm", lm_table)
    # paper shapes: avg containment decreases in k ...
    for dataset in sorted({p.dataset for p in k_points}):
        series = [p.avg_containment for p in k_points if p.dataset == dataset]
        assert series[0] >= series[-1] - 1e-9, dataset
    # ... and decays to 0 once l_m exceeds the largest closed set
    lm_series = [p.avg_containment for p in lm_points]
    assert lm_series[0] >= lm_series[-1] - 1e-9
