"""Visualization exports for case studies (DOT / Graphviz)."""

from .dot import graph_to_dot, uncertain_to_dot

__all__ = ["graph_to_dot", "uncertain_to_dot"]
