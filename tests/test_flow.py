"""Tests for the max-flow substrate (Dinic, residual graph, SCCs)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.flow.maxflow import (
    max_flow,
    min_cut_maximal_source_side,
    min_cut_source_side,
)
from repro.flow.network import FlowNetwork
from repro.flow.scc import condensation_successors, strongly_connected_components


class TestMaxFlowBasics:
    def test_single_arc(self):
        network = FlowNetwork()
        network.add_arc("s", "t", 5)
        assert max_flow(network, "s", "t") == 5

    def test_series_bottleneck(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 10)
        network.add_arc("a", "t", 3)
        assert max_flow(network, "s", "t") == 3

    def test_parallel_paths(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 4)
        network.add_arc("a", "t", 4)
        network.add_arc("s", "b", 6)
        network.add_arc("b", "t", 6)
        assert max_flow(network, "s", "t") == 10

    def test_classic_diamond(self):
        """The textbook network where augmenting must use the cross edge."""
        network = FlowNetwork()
        network.add_arc("s", "a", 10)
        network.add_arc("s", "b", 10)
        network.add_arc("a", "b", 1)
        network.add_arc("a", "t", 10)
        network.add_arc("b", "t", 10)
        assert max_flow(network, "s", "t") == 20

    def test_disconnected_sink(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 5)
        network.add_node("t")
        assert max_flow(network, "s", "t") == 0

    def test_fraction_capacities(self):
        network = FlowNetwork()
        network.add_arc("s", "a", Fraction(1, 3))
        network.add_arc("a", "t", Fraction(1, 2))
        assert max_flow(network, "s", "t") == Fraction(1, 3)

    def test_same_source_sink_rejected(self):
        network = FlowNetwork()
        network.add_arc("s", "t", 1)
        with pytest.raises(ValueError):
            max_flow(network, "s", "s")

    def test_negative_capacity_rejected(self):
        network = FlowNetwork()
        with pytest.raises(ValueError):
            network.add_arc("a", "b", -1)

    def test_reset_flow(self):
        network = FlowNetwork()
        network.add_arc("s", "t", 5)
        assert max_flow(network, "s", "t") == 5
        network.reset_flow()
        assert max_flow(network, "s", "t") == 5


class TestAgainstNetworkx:
    def test_random_networks(self, rng):
        nx = pytest.importorskip("networkx")
        for trial in range(25):
            n = rng.randint(4, 10)
            network = FlowNetwork()
            nxg = nx.DiGraph()
            for node in range(n):
                network.add_node(node)
                nxg.add_node(node)
            for _ in range(rng.randint(5, 25)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                capacity = rng.randint(1, 10)
                network.add_arc(u, v, capacity)
                if nxg.has_edge(u, v):
                    nxg[u][v]["capacity"] += capacity
                else:
                    nxg.add_edge(u, v, capacity=capacity)
            value = max_flow(network, 0, n - 1)
            expected = nx.maximum_flow_value(nxg, 0, n - 1)
            assert value == expected, f"trial {trial}"


class TestMinCutSides:
    def _goldberg_like(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 2)
        network.add_arc("s", "b", 2)
        network.add_arc("a", "t", 1)
        network.add_arc("b", "t", 1)
        network.add_arc_pair("a", "b", 1, 1)
        return network

    def test_cut_sides_are_cuts(self):
        network = self._goldberg_like()
        value = max_flow(network, "s", "t")
        minimal = set(min_cut_source_side(network, "s"))
        maximal = set(min_cut_maximal_source_side(network, "t"))
        assert "s" in minimal and "t" not in minimal
        assert "s" in maximal and "t" not in maximal
        assert minimal <= maximal
        # both must be min cuts: crossing capacity == flow value
        for side in (minimal, maximal):
            crossing = sum(
                arc.capacity
                for arc in network.arcs()
                if network.label_of(arc.tail) in side
                and network.label_of(arc.head) not in side
                and arc.capacity > 0
            )
            assert crossing == value


class TestSCC:
    def test_simple_cycle(self):
        adjacency = {1: [2], 2: [3], 3: [1], 4: [1]}
        components = strongly_connected_components(
            adjacency, lambda v: adjacency.get(v, [])
        )
        as_sets = {frozenset(c) for c in components}
        assert as_sets == {frozenset({1, 2, 3}), frozenset({4})}

    def test_reverse_topological_emission(self):
        adjacency = {1: [2], 2: [3], 3: []}
        components = strongly_connected_components(
            adjacency, lambda v: adjacency.get(v, [])
        )
        order = [c[0] for c in components]
        assert order == [3, 2, 1]

    def test_condensation(self):
        adjacency = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        components = strongly_connected_components(
            adjacency, lambda v: adjacency.get(v, [])
        )
        dag = condensation_successors(
            components, lambda v: adjacency.get(v, [])
        )
        index = {frozenset(c): i for i, c in enumerate(map(frozenset, components))}
        src = index[frozenset({1, 2})]
        dst = index[frozenset({3, 4})]
        assert dag[src] == [dst]
        assert dag[dst] == []

    def test_against_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        for _ in range(20):
            n = rng.randint(3, 12)
            edges = [
                (rng.randrange(n), rng.randrange(n))
                for _ in range(rng.randint(3, 30))
            ]
            adjacency = {v: [] for v in range(n)}
            for u, v in edges:
                adjacency[u].append(v)
            ours = {
                frozenset(c)
                for c in strongly_connected_components(
                    range(n), lambda v: adjacency[v]
                )
            }
            nxg = nx.DiGraph(edges)
            nxg.add_nodes_from(range(n))
            theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
            assert ours == theirs
