"""Vectorised possible-world engine (numpy batch sampling + array worlds).

The sampling estimators (Algorithms 1 and 5) spend their time drawing
possible worlds and solving a densest-subgraph problem in each.  This
subsystem replaces the pure-Python inner machinery with array-native
stages while returning **identical estimates for the same seed**:

1. :class:`IndexedGraph` extracts integer node indices, endpoint arrays
   and a probability vector once per uncertain graph; a world becomes a
   boolean edge mask.
2. Each sampling strategy has a vectorised twin replaying the exact
   MT19937 stream of its pure-Python counterpart:
   :class:`VectorizedMonteCarloSampler` draws all ``theta * m`` Bernoulli
   trials in one ``rng.random((theta, m)) < p`` call;
   :class:`VectorizedLazyPropagationSampler` draws each round's
   geometric-jump gaps as one batch and keeps the next-occurrence
   schedule in arrays; :class:`VectorizedStratifiedSampler` replays the
   deterministic stratum tree and draws each stratum's free-edge trial
   matrix in one call.
3. Per-world evaluation never leaves the array substrate for edge
   density: each :class:`MaskWorld` becomes a :class:`SubWorldView`
   (compact local index arrays over the shared CSR adjacency), gets a
   bucketed Charikar peel bound + mask k-core shrink, and finishes
   exactly through
   :func:`repro.dense.all_densest.prepare_from_bound_csr` --
   per-connected-component Dinkelbach iteration (~1-3 first-phase CSR
   push-relabel flows on integer capacities instead of a ~25-step
   binary search), tree components in closed form, and the residual
   SCC condensation restricted to the dense pocket.  No ``Graph`` or
   object ``FlowNetwork`` is materialised on that path.  Clique/pattern
   worlds are pre-filtered to the core that provably contains every
   densest set and only that shrunken core is materialised for the
   exact per-world machinery.

When does the vectorised path activate?
---------------------------------------
``top_k_mpds`` / ``top_k_nds`` / the ``core.parallel`` wrappers accept
``engine="auto" | "python" | "vectorized" | "jit"``:

* ``auto`` (default) -- vectorised for every guaranteed byte-identical
  combination: {MC (default), LP, RSS} x {EdgeDensity, CliqueDensity,
  PatternDensity}, upgraded to the JIT tier when numba is installed.
  Custom sampler or measure types run the original pure-Python path.
* ``vectorized`` -- force the numpy tier (no JIT upgrade); unknown
  measures still work through the mask -> :class:`Graph` adapter
  (:meth:`IndexedGraph.world_graph`), but the sampler must be MC, LP or
  RSS (or a vectorised twin).
* ``jit`` -- the vectorized engine with the two irreducible hot loops
  (bucketed peel, first-phase push-relabel) numba-compiled
  (:mod:`repro.engine.jit`); falls back to ``vectorized`` when numba is
  not installed.  Same estimates either way.
* ``python`` -- force the original path (e.g. for timing comparisons:
  see ``benchmarks/bench_engine.py``).

On top of whichever per-world tier runs, the vector engines evaluate
cheap stages *batched across worlds*: :func:`primed_world_stream`
buffers a chunk of sampled worlds, stacks their edge masks and runs
the bound / shrink stages (:func:`batch_peel_bounds`,
:func:`batch_k_core_alive`) for the whole chunk in a handful of numpy
calls, so the per-world python loop only performs the exact stage.

Estimates are byte-identical across engines for a fixed seed; the
differential harness in ``tests/test_engine_differential.py`` sweeps
sampler x measure x seed x engine to prove it.  A world whose
densest-subgraph enumeration hits ``per_world_limit`` is replayed
through the pure-Python path (within-world enumeration *order* is not
part of the fast path's contract) and counted in the result's
``replayed_worlds``, so even truncated candidate subsets match exactly.
"""

from .blocks import (
    DEFAULT_BLOCKS,
    derive_block_seeds,
    drain_mask_stream,
    mc_block_masks,
    plan_blocks,
)
from .indexed import IndexedGraph, MaskWorld, SubWorldView
from .shm import attach_arrays, close_attachment, pack_arrays
from .kernels import (
    batch_k_core_alive,
    batch_peel_bounds,
    batch_world_degrees,
    batched_greedypp,
    k_core_alive,
    world_degrees,
)
from .jit import HAVE_NUMBA, jit_active, use_jit
from .lazy import VectorizedLazyPropagationSampler
from .sampler import (
    VectorizedMonteCarloSampler,
    randomstate_like,
    write_back_state,
)
from .stratified import VectorizedStratifiedSampler
from .worldstore import WorldStore
from .estimators import (
    ENGINES,
    VECTOR_ENGINES,
    EngineMeasure,
    measure_core_k,
    prepare_world_stream,
    primed_world_stream,
    resolve_engine,
    vectorized_sampler,
)

__all__ = [
    "DEFAULT_BLOCKS",
    "derive_block_seeds",
    "drain_mask_stream",
    "mc_block_masks",
    "plan_blocks",
    "attach_arrays",
    "close_attachment",
    "pack_arrays",
    "IndexedGraph",
    "MaskWorld",
    "SubWorldView",
    "VectorizedMonteCarloSampler",
    "VectorizedLazyPropagationSampler",
    "VectorizedStratifiedSampler",
    "WorldStore",
    "randomstate_like",
    "write_back_state",
    "world_degrees",
    "batch_world_degrees",
    "k_core_alive",
    "batch_k_core_alive",
    "batch_peel_bounds",
    "batched_greedypp",
    "HAVE_NUMBA",
    "jit_active",
    "use_jit",
    "ENGINES",
    "VECTOR_ENGINES",
    "EngineMeasure",
    "measure_core_k",
    "prepare_world_stream",
    "primed_world_stream",
    "resolve_engine",
    "vectorized_sampler",
]
