"""Tests for pattern graphs and instance enumeration."""

from __future__ import annotations

import itertools

import pytest

from repro.cliques.enumeration import count_cliques
from repro.graph.graph import Graph
from repro.patterns.matching import (
    count_instances,
    enumerate_instances,
    group_instances,
    instance_nodes,
    pattern_degrees,
)
from repro.patterns.pattern import Pattern, paper_patterns

from .conftest import random_graph


class TestPatternConstruction:
    def test_named_patterns(self):
        assert Pattern.two_star().number_of_nodes() == 3
        assert Pattern.three_star().number_of_nodes() == 4
        assert Pattern.c3_star().number_of_edges() == 4
        assert Pattern.diamond().number_of_edges() == 5
        assert Pattern.clique(4).number_of_edges() == 6
        assert Pattern.cycle(5).number_of_edges() == 5
        assert Pattern.path(3).number_of_edges() == 3

    def test_paper_patterns(self):
        names = [p.name for p in paper_patterns()]
        assert names == ["2-star", "3-star", "c3-star", "diamond"]

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(ValueError):
            Pattern("bad", [(0, 1), (2, 3)])

    def test_is_clique(self):
        assert Pattern.clique(3).is_clique()
        assert not Pattern.diamond().is_clique()

    def test_matching_order_connected(self):
        for pattern in paper_patterns():
            order = pattern.matching_order()
            graph = pattern.graph()
            placed = {order[0]}
            for node in order[1:]:
                assert any(nbr in placed for nbr in graph.neighbors(node))
                placed.add(node)


class TestInstanceCounts:
    def test_two_star_on_triangle(self, triangle_graph):
        # each of the 3 nodes is the center of exactly one 2-star
        assert count_instances(triangle_graph, Pattern.two_star()) == 3

    def test_two_star_on_star(self):
        star = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        # C(3, 2) ways to pick the two leaves
        assert count_instances(star, Pattern.two_star()) == 3
        assert count_instances(star, Pattern.three_star()) == 1

    def test_diamond_on_k4(self):
        k4 = Graph.from_edges(itertools.combinations(range(4), 2))
        # K4 contains C(4,2)/... : one diamond per missing-edge choice = 6
        # diamonds in K4: choose the non-adjacent pair (2 nodes): 6 edge
        # subsets isomorphic to diamond -- one per pair kept non-adjacent
        assert count_instances(k4, Pattern.diamond()) == 6

    def test_clique_pattern_agrees_with_clique_listing(self, rng):
        for _ in range(6):
            graph = random_graph(rng, 9, 0.5)
            for h in (3, 4):
                assert count_instances(graph, Pattern.clique(h)) == \
                    count_cliques(graph, h)

    def test_c3_star_hand_count(self):
        # triangle 0-1-2 with pendant 3 attached to node 0
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3)])
        assert count_instances(graph, Pattern.c3_star()) == 1
        # attach another pendant to node 1: now two instances
        graph.add_edge(1, 4)
        assert count_instances(graph, Pattern.c3_star()) == 2

    def test_instances_are_distinct_subgraphs(self, rng):
        for pattern in paper_patterns():
            graph = random_graph(rng, 8, 0.6)
            instances = list(enumerate_instances(graph, pattern))
            assert len(instances) == len(set(instances))
            for instance in instances:
                assert len(instance) == pattern.number_of_edges()
                for u, v in instance:
                    assert graph.has_edge(u, v)


def brute_force_pattern_count(graph: Graph, pattern: Pattern) -> int:
    """Count distinct subgraphs isomorphic to the pattern via networkx."""
    nx = pytest.importorskip("networkx")
    pattern_nx = nx.Graph(pattern.edges())
    seen = set()
    nodes = graph.nodes()
    k = pattern.number_of_nodes()
    for subset in itertools.combinations(nodes, k):
        induced_edges = [
            (u, v) for u, v in itertools.combinations(subset, 2)
            if graph.has_edge(u, v)
        ]
        for edge_subset in itertools.combinations(
            induced_edges, pattern.number_of_edges()
        ):
            candidate = nx.Graph(edge_subset)
            if candidate.number_of_nodes() != k:
                continue
            if nx.is_isomorphic(candidate, pattern_nx):
                seen.add(frozenset(tuple(sorted(e, key=repr)) for e in edge_subset))
    return len(seen)


class TestAgainstBruteForce:
    def test_counts_match_networkx(self, rng):
        for trial in range(4):
            graph = random_graph(rng, 6, 0.6)
            for pattern in paper_patterns():
                assert count_instances(graph, pattern) == \
                    brute_force_pattern_count(graph, pattern), \
                    (trial, pattern.name)


class TestDegreesAndGroups:
    def test_pattern_degree_sum(self, rng):
        graph = random_graph(rng, 8, 0.5)
        for pattern in paper_patterns():
            degrees = pattern_degrees(graph, pattern)
            total_memberships = sum(
                len(instance_nodes(i))
                for i in enumerate_instances(graph, pattern)
            )
            assert sum(degrees.values()) == total_memberships

    def test_grouping_multiplicities(self):
        # two 2-star instances share the node set {0,1,2} on a triangle?
        # on a path 0-1-2 there is exactly one instance; on a triangle each
        # node set {a,b,c} carries three instances (three centers)
        triangle = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        groups = group_instances(triangle, Pattern.two_star())
        assert groups == {frozenset({0, 1, 2}): 3}

    def test_group_total_matches_count(self, rng):
        graph = random_graph(rng, 8, 0.5)
        for pattern in paper_patterns():
            groups = group_instances(graph, pattern)
            assert sum(groups.values()) == count_instances(graph, pattern)
