"""Algorithm 1: sampling-based top-k MPDS estimation (Section III-A).

Sample ``theta`` possible worlds; in each, enumerate *all* densest
subgraphs (edge / clique / pattern density); a node set's estimated densest
subgraph probability ``tau-hat(U)`` is the weight of the worlds in which it
was densest (weight = 1/theta under Monte Carlo; Lemma 1: unbiased).
Return the k node sets with the highest estimates.

The ``enumerate_all`` flag reproduces the Table IX ablation: with
``False`` only one densest subgraph per world is recorded, which the paper
shows can understate probabilities by up to 20x (Section VI-D).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..graph.uncertain import UncertainGraph
from ..sampling.base import WorldSampler
from ..sampling.monte_carlo import MonteCarloSampler
from .measures import DensityMeasure, EdgeDensity
from .results import MPDSResult, NodeSet, ScoredNodeSet

#: one evaluated world: (its densest node sets, its estimator weight)
WorldRecord = Tuple[List[NodeSet], float]


def evaluate_worlds(
    worlds,
    loop_measure: DensityMeasure,
    enumerate_all: bool = True,
    per_world_limit: Optional[int] = 100_000,
) -> Iterator[WorldRecord]:
    """Evaluate a world stream into per-world densest-family records.

    The evaluation half of Algorithm 1's loop, shared verbatim by the
    sequential estimator and the per-block workers of
    :mod:`repro.core.parallel` (a block is just a slice of the stream):
    each world contributes ``(densest_sets, weight)``.
    """
    for weighted in worlds:
        if enumerate_all:
            densest_sets = loop_measure.all_densest(
                weighted.graph, per_world_limit
            )
        else:
            one = loop_measure.one_densest(weighted.graph)
            densest_sets = [one] if one is not None else []
        yield densest_sets, weighted.weight


def finalize_mpds(records: Iterable[WorldRecord], k: int) -> MPDSResult:
    """Accumulate per-world records into the ranked Algorithm 1 result.

    The accumulation half of the loop, again shared by the sequential
    and parallel estimators.  Records must arrive in world-stream order:
    floating-point accumulation is then performed in exactly the same
    sequence everywhere, which is what makes the parallel merge (blocks
    reassembled in grid order) *byte-identical* to a sequential run, not
    merely statistically equivalent.
    """
    estimates: Dict[NodeSet, float] = {}
    total_weight = 0.0
    worlds_with_densest = 0
    densest_counts: List[int] = []
    actual_theta = 0
    for densest_sets, weight in records:
        actual_theta += 1
        total_weight += weight
        densest_counts.append(len(densest_sets))
        if densest_sets:
            worlds_with_densest += 1
        for nodes in densest_sets:
            estimates[nodes] = estimates.get(nodes, 0.0) + weight
    if total_weight > 0.0:
        # normalise so estimates are probabilities even when the sampler
        # (e.g. RSS with empty strata) emits weights summing below 1
        estimates = {
            nodes: weight / total_weight for nodes, weight in estimates.items()
        }
    ranked = sorted(
        estimates.items(),
        key=lambda item: (-item[1], len(item[0]), sorted(map(repr, item[0]))),
    )
    top = [ScoredNodeSet(nodes, prob) for nodes, prob in ranked[:k]]
    return MPDSResult(
        top=top,
        candidates=estimates,
        theta=actual_theta,
        worlds_with_densest=worlds_with_densest,
        densest_counts=densest_counts,
    )


def evaluate_store_mpds(
    store,
    measure: DensityMeasure,
    engine: str = "auto",
    enumerate_all: bool = True,
    per_world_limit: Optional[int] = 100_000,
    stage_stats: Optional[dict] = None,
) -> Tuple[List[WorldRecord], int]:
    """Replay a world store into Algorithm 1's per-world records.

    Returns ``(records, replayed_worlds)`` -- the evaluation half of
    the loop over stored worlds, shared by :func:`mpds_from_store` and
    the session evaluation cache (which keeps the records to serve
    later ``k`` variants through :func:`finalize_mpds` alone).

    When ``stage_stats`` is a dict and a vector engine ran, the
    engine measure's per-stage split (``EngineMeasure.stage_stats``)
    is merged into it -- the session's evaluation-timing seam.
    """
    worlds, loop_measure, engine_measure = store.world_stream(measure, engine)
    records = list(
        evaluate_worlds(worlds, loop_measure, enumerate_all, per_world_limit)
    )
    if engine_measure is not None and stage_stats is not None:
        for key, value in engine_measure.stage_stats().items():
            stage_stats[key] = stage_stats.get(key, 0) + value
    return records, (engine_measure.replayed_worlds if engine_measure else 0)


def mpds_from_store(
    store,
    k: int = 1,
    measure: Optional[DensityMeasure] = None,
    engine: str = "auto",
    enumerate_all: bool = True,
    per_world_limit: Optional[int] = 100_000,
) -> MPDSResult:
    """Algorithm 1 over a pre-sampled world store -- zero sampling work.

    ``store`` is a :class:`repro.engine.worldstore.WorldStore`; its
    worlds are replayed through the same evaluate/finalize seams the
    streaming estimator uses, so the result is byte-identical to
    :func:`top_k_mpds` with the seed/theta the store was drawn from.
    This is the seam :class:`repro.session.Session` queries consume.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    measure = measure or EdgeDensity()
    records, replayed = evaluate_store_mpds(
        store, measure, engine, enumerate_all, per_world_limit
    )
    result = finalize_mpds(records, k)
    result.replayed_worlds = replayed
    return result


def top_k_mpds(
    graph: UncertainGraph,
    k: int = 1,
    theta: int = 160,
    measure: Optional[DensityMeasure] = None,
    sampler: Optional[WorldSampler] = None,
    seed: Optional[int] = None,
    enumerate_all: bool = True,
    per_world_limit: Optional[int] = 100_000,
    engine: str = "auto",
) -> MPDSResult:
    """Estimate the top-k Most Probable Densest Subgraphs (Algorithm 1).

    Thin shim over a one-shot :class:`repro.session.Session` query; use
    a session directly to reuse the sampled worlds across several
    queries (different ``k``, measures, MPDS vs NDS) without
    resampling.

    Parameters
    ----------
    graph:
        The uncertain graph.
    k:
        Number of node sets to return (Problem 2); ``k = 1`` is Problem 1.
    theta:
        Number of sampled possible worlds; Theorems 2-3 bound the failure
        probability as a function of ``theta`` (see
        :mod:`repro.core.guarantees`).
    measure:
        Density notion; defaults to :class:`EdgeDensity`.  Use
        ``CliqueDensity(h)`` / ``PatternDensity(psi)`` for the clique /
        pattern variants (Sections III-B, III-C).
    sampler:
        Possible-world sampler; defaults to Monte Carlo.
    enumerate_all:
        If False, record only one densest subgraph per world (Table IX).
    per_world_limit:
        Safety cap on the number of densest subgraphs enumerated per world
        (their count can be exponential -- Table VIII).
    engine:
        ``"auto"`` (default), ``"python"``, ``"vectorized"`` or
        ``"jit"``; selects the possible-world engine (see
        :mod:`repro.engine`).  ``auto`` vectorises every {MC, LP, RSS}
        x {edge, clique, pattern density} combination (JIT-compiled
        hot loops when numba is installed); custom sampler/measure
        types run pure-Python.  Estimates are identical across engines
        for the same seed.
    """
    from ..session import Session

    return (
        Session(graph, engine=engine, cache_worlds=False)
        .query()
        .sampler(sampler, theta=theta, seed=seed)
        .measure(measure)
        .top_k(k)
        .enumerate_all(enumerate_all)
        .per_world_limit(per_world_limit)
        .mpds()
    )


def estimate_tau(
    graph: UncertainGraph,
    nodes: NodeSet,
    theta: int = 160,
    measure: Optional[DensityMeasure] = None,
    seed: Optional[int] = None,
) -> float:
    """Estimate tau(U) for one node set by Monte Carlo (Lemma 1).

    Convenience wrapper: samples worlds and checks, per world, whether
    ``nodes`` induces a densest subgraph (its density equals the optimum
    and is positive).
    """
    measure = measure or EdgeDensity()
    sampler = MonteCarloSampler(graph, seed)
    target = frozenset(nodes)
    hits = 0.0
    total = 0.0
    for weighted in sampler.worlds(theta):
        total += weighted.weight
        densest = measure.all_densest(weighted.graph)
        if target in densest:
            hits += weighted.weight
    return hits / total if total else 0.0
