"""Bit-packed possible-world masks: uint64 words instead of bool bytes.

A sampled world is a boolean mask over the edge axis, and the engine
stores ``theta`` of them as a ``(T, m)`` byte matrix -- one full byte
per Bernoulli outcome.  This module packs those masks 64-to-a-word:
world ``t`` becomes a row of ``ceil(m / 64)`` ``uint64`` words, with
edge ``j`` living in word ``j // 64`` at bit ``j % 64`` (LSB-first, the
same order ``np.packbits(..., bitorder="little")`` uses).  That is an
8x mask-memory reduction, and the column kernels below (popcount,
AND/OR reductions, per-edge world counts) read whole words at a time
instead of whole bytes.

Determinism contract: packing is **lossless and order-preserving** --
``unpack_rows(pack_rows(masks), m)`` returns a byte-identical copy of
``masks``, so a packed :class:`~repro.engine.worldstore.WorldStore`
replays exactly the worlds an unpacked one would (the property
``tests/test_bitset_differential.py`` pins cell by cell).  Padding bits
past ``m`` in the last word are always zero, which is what lets
popcounts and reductions run over raw words without masking.

The in-word bit order is defined by the *byte layout* (little-endian
words), so pack -> unpack round-trips on any host; the word *values*
are only meaningful relative to this module's own kernels.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

#: bits per packed word
WORD_BITS = 64

#: rows batch-unpacked per :class:`PackedMasks` row-cache fill
ROW_CACHE_BLOCK = 64

#: elementwise popcount: numpy >= 2.0 ships a ufunc; older hosts fall
#: back to a 16-bit lookup table (64 KiB, built once on first use)
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POP16: Optional[np.ndarray] = None


def words_for(m: int) -> int:
    """Number of uint64 words needed for an ``m``-bit mask row."""
    if m < 0:
        raise ValueError(f"mask width must be >= 0, got {m}")
    return -(-m // WORD_BITS)


def pack_rows(masks: np.ndarray) -> np.ndarray:
    """Pack a ``(T, m)`` boolean matrix into ``(T, ceil(m/64))`` words.

    Bit ``j`` of a row lands in word ``j // 64`` at (little-endian) bit
    position ``j % 64``; padding bits beyond ``m`` are zero.  Accepts
    ``T == 0`` and ``m == 0`` (degenerate shapes round-trip).
    """
    masks = np.asarray(masks)
    if masks.ndim != 2:
        raise ValueError(
            f"expected a (T, m) mask matrix, got shape {masks.shape}"
        )
    if masks.dtype != np.bool_:
        masks = masks.astype(bool)
    t, m = masks.shape
    w = words_for(m)
    packed8 = np.packbits(masks, axis=1, bitorder="little")
    padded = np.zeros((t, w * 8), dtype=np.uint8)
    padded[:, : packed8.shape[1]] = packed8
    return padded.view(np.uint64)


def unpack_rows(words: np.ndarray, m: int) -> np.ndarray:
    """Unpack ``(T, W)`` words back into the ``(T, m)`` boolean matrix.

    The exact inverse of :func:`pack_rows`; the returned array is a
    fresh writable copy (packed storage stays immutable).
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(
            f"expected a (T, W) word matrix, got shape {words.shape}"
        )
    t, w = words.shape
    if w != words_for(m):
        raise ValueError(
            f"word matrix has {w} columns, but m={m} needs {words_for(m)}"
        )
    if m == 0:
        return np.zeros((t, 0), dtype=bool)
    as_bytes = np.ascontiguousarray(words).view(np.uint8).reshape(t, w * 8)
    bits = np.unpackbits(as_bytes, axis=1, count=m, bitorder="little")
    return bits.astype(bool)


def pack_row(mask: np.ndarray) -> np.ndarray:
    """Pack one ``(m,)`` boolean mask into a ``(W,)`` word row."""
    return pack_rows(np.asarray(mask)[None, :])[0]


def unpack_row(words: np.ndarray, m: int) -> np.ndarray:
    """Unpack one ``(W,)`` word row into its ``(m,)`` boolean mask."""
    return unpack_rows(np.asarray(words, dtype=np.uint64)[None, :], m)[0]


def popcount(words: np.ndarray) -> np.ndarray:
    """Elementwise set-bit count of a uint64 array (any shape).

    Uses ``np.bitwise_count`` when available; otherwise a 16-bit lookup
    table over the words' half-word views (identical results, pinned by
    ``tests/test_bitset.py`` against the ``np.sum`` oracle).
    """
    words = np.asarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    global _POP16
    if _POP16 is None:
        counts = np.arange(1 << 16, dtype=np.uint32)
        counts = counts - ((counts >> 1) & 0x5555)
        counts = (counts & 0x3333) + ((counts >> 2) & 0x3333)
        counts = (counts + (counts >> 4)) & 0x0F0F
        _POP16 = ((counts + (counts >> 8)) & 0x1F).astype(np.uint8)
    halves = np.ascontiguousarray(words).view(np.uint16)
    return (
        _POP16[halves]
        .reshape(words.shape + (4,))
        .sum(axis=-1, dtype=np.int64)
    )


def row_popcounts(words: np.ndarray) -> np.ndarray:
    """Alive-edge count of every packed row: ``(T, W)`` -> ``(T,)``.

    The packed twin of ``masks.sum(axis=1)`` -- it touches 8x less
    memory, which is where packing pays off in the cross-world kernels.
    """
    words = np.asarray(words, dtype=np.uint64)
    return popcount(words).sum(axis=1, dtype=np.int64)


def and_reduce(words: np.ndarray) -> np.ndarray:
    """AND all packed rows: edges present in *every* stored world."""
    words = np.asarray(words, dtype=np.uint64)
    if len(words) == 0:
        # empty world set: the AND identity is all-ones, but padding
        # bits must stay zero, so callers get an explicit empty instead
        raise ValueError("and_reduce needs at least one row")
    return np.bitwise_and.reduce(words, axis=0)


def or_reduce(words: np.ndarray) -> np.ndarray:
    """OR all packed rows: edges present in *any* stored world."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(
            f"expected a (T, W) word matrix, got shape {words.shape}"
        )
    if len(words) == 0:
        return np.zeros(words.shape[1], dtype=np.uint64)
    return np.bitwise_or.reduce(words, axis=0)


def column_counts(
    words: np.ndarray, m: int, block: int = 1024
) -> np.ndarray:
    """Per-edge world counts: in how many rows is each of the ``m`` bits set?

    The packed twin of ``masks.sum(axis=0)``.  Rows are unpacked in
    bounded blocks so the transient boolean matrix never exceeds
    ``block * m`` bytes regardless of ``T``.
    """
    words = np.asarray(words, dtype=np.uint64)
    counts = np.zeros(m, dtype=np.int64)
    for lo in range(0, len(words), block):
        counts += unpack_rows(words[lo : lo + block], m).sum(
            axis=0, dtype=np.int64
        )
    return counts


def alive_edges(word_row: np.ndarray, m: int) -> np.ndarray:
    """Indices of the set bits of one packed row, ascending.

    The packed twin of ``np.flatnonzero(mask)`` -- exactly the edge
    iteration order Monte Carlo replay uses (edge-index order).
    """
    return np.flatnonzero(unpack_row(word_row, m))


class PackedMasks:
    """An immutable ``(T, m)`` world-mask matrix held as packed words.

    The drop-in replacement for the store's boolean mask matrix:
    ``packed[i]`` unpacks row ``i`` to a fresh ``(m,)`` boolean mask
    (the python-replay boundary -- :class:`~repro.engine.indexed.
    MaskWorld` and ``world_graph`` materialisations consume plain
    boolean rows), while the words stay resident at 1/8 the footprint.
    Everything else (shared-memory publication, popcount kernels,
    block spill) operates on :attr:`words` directly.

    Row access is served from a one-block cache: ``__getitem__`` batch
    unpacks the aligned :data:`ROW_CACHE_BLOCK`-row block containing
    the requested row and keeps it until a different block is touched,
    so sequential replay (the store's access pattern) costs one
    ``np.unpackbits`` per block instead of one per row, while the
    transient footprint stays bounded at ``ROW_CACHE_BLOCK * m`` bytes.
    The cache is one tuple attribute (atomic to swap in CPython) and
    rows are handed out as copies, so concurrent session threads stay
    safe and the packed storage stays effectively immutable.

    The one sanctioned mutation is :meth:`set_column` (dynamic-store
    surgery: a probability update re-draws a single edge's column in
    place).  Every mutation bumps a generation counter the row cache is
    keyed on, so a cached block can never serve pre-surgery rows.
    """

    __slots__ = ("words", "m", "_cache", "_generation")

    def __init__(self, words: np.ndarray, m: int) -> None:
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(
                f"expected (T, W) words, got shape {words.shape}"
            )
        if words.shape[1] != words_for(m):
            raise ValueError(
                f"words have {words.shape[1]} columns, but m={m} needs "
                f"{words_for(m)}"
            )
        self.words = words
        self.m = m
        #: (generation, block_lo, unpacked_rows) of the most recently
        #: touched block; stale the moment the generation moves on
        self._cache: Optional[Tuple[int, int, np.ndarray]] = None
        self._generation = 0

    @classmethod
    def from_bool(cls, masks: np.ndarray) -> "PackedMasks":
        """Pack a boolean ``(T, m)`` matrix."""
        masks = np.asarray(masks)
        return cls(pack_rows(masks), masks.shape[1])

    # ------------------------------------------------------------------
    # matrix protocol (the subset the replay paths use)
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Logical ``(T, m)`` shape (not the word shape)."""
        return (len(self.words), self.m)

    @property
    def nbytes(self) -> int:
        """Packed resident size -- ~1/8 of the boolean equivalent."""
        return self.words.nbytes

    def __len__(self) -> int:
        return len(self.words)

    def __getitem__(self, i: int) -> np.ndarray:
        """World ``i``'s boolean mask (the lazy replay boundary).

        Served as a fresh writable copy out of the one-block row cache
        (see the class docstring); repeated / sequential access does
        not re-unpack the same block.
        """
        i = range(len(self.words))[i]  # normalise negatives, bounds-check
        lo = i - (i % ROW_CACHE_BLOCK)
        generation = self._generation
        cached = self._cache
        if cached is None or cached[0] != generation or cached[1] != lo:
            cached = (
                generation,
                lo,
                unpack_rows(self.words[lo : lo + ROW_CACHE_BLOCK], self.m),
            )
            self._cache = cached
        return cached[2][i - lo].copy()

    def set_column(self, j: int, column: np.ndarray) -> np.ndarray:
        """Overwrite bit ``j`` of every row; return the old bool column.

        The dynamic-store surgery primitive: a probability update
        re-draws one edge's ``(T,)`` outcome column and writes it into
        the packed words in place (one word column touched).  Bumps the
        row-cache generation so subsequent ``__getitem__`` calls can
        never observe pre-surgery rows, and returns the replaced
        column so callers can diff for flipped worlds.
        """
        j = range(self.m)[j]  # normalise negatives, bounds-check
        column = np.asarray(column)
        if column.shape != (len(self.words),):
            raise ValueError(
                f"column must have shape ({len(self.words)},), "
                f"got {column.shape}"
            )
        if column.dtype != np.bool_:
            column = column.astype(bool)
        word, bitpos = divmod(j, WORD_BITS)
        bit = np.uint64(1 << bitpos)
        if not self.words.flags.writeable:
            # shm-published words are read-only views; surgery gets a
            # private copy (publication is invalidated by the caller)
            self.words = self.words.copy()
        old = (self.words[:, word] & bit) != 0
        self.words[:, word] &= np.uint64(~(1 << bitpos) & (2**64 - 1))
        self.words[:, word] |= np.where(column, bit, np.uint64(0))
        self._generation += 1
        self._cache = None
        return old

    def rows(self, lo: int, hi: int) -> np.ndarray:
        """Unpack rows ``lo:hi`` into a boolean ``(hi - lo, m)`` block."""
        return unpack_rows(self.words[lo:hi], self.m)

    def to_bool(self) -> np.ndarray:
        """Unpack the whole matrix (compat / oracle boundary only)."""
        return unpack_rows(self.words, self.m)

    def iter_bool_rows(self) -> Iterator[np.ndarray]:
        """Yield every row's boolean mask, one at a time."""
        for i in range(len(self.words)):
            yield self[i]

    def row_popcounts(self) -> np.ndarray:
        """Alive-edge count per world, straight off the words."""
        return row_popcounts(self.words)

    def __repr__(self) -> str:
        return (
            f"PackedMasks(worlds={len(self.words)}, m={self.m}, "
            f"nbytes={self.nbytes})"
        )
