"""Peeling approximations for densest subgraphs (Charikar [2], [19], [5]).

Iteratively removing the node of smallest (generalised) degree and keeping
the best intermediate subgraph yields:

* a 1/2-approximation of the maximum edge density (Charikar),
* a 1/h-approximation of the maximum h-clique density (Tsourakakis [19]),
* a 1/|V_psi|-approximation of the maximum pattern density (Fang et al. [5]).

Algorithms 2 and 4 use the peeled density ``rho~`` both as the lower bound
of the binary search and to shrink the graph to its (ceil(rho~), .)-core.
The heuristic methods of Section III-C also reuse the intermediate
subgraphs recorded here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cliques.enumeration import enumerate_cliques
from ..graph.graph import Graph, Node
from ..patterns.matching import enumerate_instances, instance_nodes
from ..patterns.pattern import Pattern


@dataclass(frozen=True)
class PeelingResult:
    """Outcome of a peeling run.

    Attributes
    ----------
    density:
        Best (generalised) density among all intermediate subgraphs.
    nodes:
        Node set achieving ``density``.
    trajectory:
        ``(density, size)`` of each intermediate subgraph, outermost first;
        used by the Section III-C heuristic to report all intermediate
        subgraphs denser than a threshold.
    order:
        All nodes in peeling order (first removed first); the subgraph at
        ``trajectory[i]`` is induced by ``order[i:]``.
    """

    density: Fraction
    nodes: FrozenSet[Node]
    trajectory: Tuple[Tuple[Fraction, int], ...]
    order: Tuple[Node, ...] = ()

    def prefix_nodes(self, index: int) -> FrozenSet[Node]:
        """Return the node set of the subgraph at ``trajectory[index]``."""
        return frozenset(self.order[index:])


def peel_edge_density(graph: Graph) -> PeelingResult:
    """Charikar's greedy peeling for edge density (1/2-approximation).

    Ties among minimum-degree nodes break deterministically toward the
    first-inserted node, so the peel order (and hence the returned node
    set and trajectory) is a pure function of the graph -- the contract
    that lets :func:`peel_edge_density_csr` reproduce it bit-for-bit on
    the array substrate.
    """
    if graph.number_of_nodes() == 0:
        return PeelingResult(Fraction(0), frozenset(), ())
    insertion_rank = {node: rank for rank, node in enumerate(graph)}
    degrees = {node: graph.degree(node) for node in graph}
    max_degree = max(degrees.values(), default=0)
    # lazy min-heaps per degree bucket, keyed by insertion rank (ranks are
    # distinct, so heap entries never compare the -- possibly unorderable --
    # node labels); stale entries are skipped on pop
    buckets: List[List[Tuple[int, Node]]] = [
        [] for _ in range(max_degree + 1)
    ]
    for node, degree in degrees.items():
        buckets[degree].append((insertion_rank[node], node))
    for bucket in buckets:
        heapq.heapify(bucket)
    edges_left = graph.number_of_edges()
    nodes_left = graph.number_of_nodes()
    order: List[Node] = []
    removed: set = set()
    best = Fraction(edges_left, nodes_left)
    best_size = nodes_left
    trajectory: List[Tuple[Fraction, int]] = [(best, nodes_left)]
    pointer = 0
    while nodes_left > 1:
        while True:
            bucket = buckets[pointer]
            while bucket and (
                bucket[0][1] in removed or degrees[bucket[0][1]] != pointer
            ):
                heapq.heappop(bucket)
            if bucket:
                break
            pointer += 1
        _rank, node = heapq.heappop(buckets[pointer])
        order.append(node)
        removed.add(node)
        edges_left -= degrees[node]
        nodes_left -= 1
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            d = degrees[neighbor] - 1
            degrees[neighbor] = d
            heapq.heappush(buckets[d], (insertion_rank[neighbor], neighbor))
        # removing a minimum-degree node can lower the minimum by at most 1
        pointer = max(0, pointer - 1)
        density = Fraction(edges_left, nodes_left)
        trajectory.append((density, nodes_left))
        if density > best:
            best = density
            best_size = nodes_left
    survivors = [node for node in graph if node not in set(order)]
    full_order = tuple(order) + tuple(sorted(survivors, key=repr))
    # the best subgraph consists of the last `best_size` peeled-or-surviving
    # nodes: everything except the first n - best_size removals
    drop = graph.number_of_nodes() - best_size
    best_nodes = frozenset(full_order[drop:])
    return PeelingResult(best, best_nodes, tuple(trajectory), full_order)


def _peel_arrays(
    n: int,
    indptr,
    neighbors,
) -> Tuple[List[int], List[int], int, int, int, int]:
    """Charikar peel over local CSR arrays (bucketed degree arrays).

    The array core shared by :func:`peel_edge_density_csr` and the
    engine's per-component bound stage.  Buckets are indexed by degree;
    each bucket is a lazy min-heap of local node indices, so the removed
    node is always the *smallest-index* node of minimum degree -- exactly
    the deterministic tie-break of :func:`peel_edge_density` (local index
    order equals insertion order).  Stale heap entries (from earlier
    degrees) are skipped on pop.

    Returns ``(order, edges_after, best_num, best_den, best_size,
    degeneracy)``: the removal order over all ``n`` nodes, the edge count
    after each of the ``n - 1`` removals, the best intermediate density
    as an exact ratio with its subgraph size, and the degeneracy (the
    largest minimum degree seen, an upper bound on any subgraph's edge
    density).

    When the JIT tier is active (``engine='jit'`` with numba installed;
    see :mod:`repro.engine.jit`) the loop runs as the flat-array port
    :func:`repro.engine.jit.peel_csr`, whose removal order is provably
    identical (same minimum-degree/smallest-index tie-break).
    """
    from ..engine import jit

    if jit.jit_active():
        import numpy as np

        order, edges_after, num, den, size, degen = jit.peel_csr(
            n,
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(neighbors, dtype=np.int64),
        )
        return (
            [int(i) for i in order], [int(e) for e in edges_after],
            int(num), int(den), int(size), int(degen),
        )
    neighbors = neighbors.tolist()
    indptr = indptr.tolist()
    degree = [indptr[i + 1] - indptr[i] for i in range(n)]
    edges_left = sum(degree) // 2
    buckets: List[List[int]] = [[] for _ in range(max(degree, default=0) + 1)]
    for i in range(n):
        buckets[degree[i]].append(i)
    for bucket in buckets:
        heapq.heapify(bucket)
    alive = [True] * n
    order: List[int] = []
    edges_after: List[int] = []
    nodes_left = n
    best_num, best_den = edges_left, nodes_left
    best_size = nodes_left
    degeneracy = 0
    pointer = 0
    while nodes_left > 1:
        while True:
            bucket = buckets[pointer]
            while bucket and (
                not alive[bucket[0]] or degree[bucket[0]] != pointer
            ):
                heapq.heappop(bucket)
            if bucket:
                break
            pointer += 1
        node = heapq.heappop(buckets[pointer])
        if pointer > degeneracy:
            degeneracy = pointer
        alive[node] = False
        order.append(node)
        edges_left -= degree[node]
        nodes_left -= 1
        for pos in range(indptr[node], indptr[node + 1]):
            other = neighbors[pos]
            if alive[other]:
                d = degree[other] - 1
                degree[other] = d
                heapq.heappush(buckets[d], other)
        # removing a minimum-degree node can lower the minimum by at most 1
        if pointer > 0:
            pointer -= 1
        edges_after.append(edges_left)
        if edges_left * best_den > best_num * nodes_left:
            best_num, best_den = edges_left, nodes_left
            best_size = nodes_left
    for i in range(n):  # the lone survivor closes the order
        if alive[i]:
            order.append(i)
            break
    return order, edges_after, best_num, best_den, best_size, degeneracy


def peel_edge_density_csr(view) -> PeelingResult:
    """Charikar peeling on a :class:`~repro.engine.indexed.SubWorldView`.

    Array twin of :func:`peel_edge_density`: identical density, node set,
    trajectory and order for the world (or world core) the view denotes,
    without materialising a :class:`Graph`.
    """
    n = view.n
    if n == 0:
        return PeelingResult(Fraction(0), frozenset(), ())
    indptr, neighbors = view.csr()
    order, edges_after, _num, _den, best_size, _degen = _peel_arrays(
        n, indptr, neighbors
    )
    labels = view.labels()
    trajectory: List[Tuple[Fraction, int]] = [(Fraction(view.m, n), n)]
    best = trajectory[0][0]
    for removals, edges_left in enumerate(edges_after, start=1):
        density = Fraction(edges_left, n - removals)
        trajectory.append((density, n - removals))
        if density > best:
            best = density
    full_order = tuple(labels[i] for i in order)
    best_nodes = frozenset(full_order[n - best_size:])
    return PeelingResult(best, best_nodes, tuple(trajectory), full_order)


def _peel_incidences(
    graph: Graph,
    incidences: Sequence[FrozenSet[Node]],
    arity: int,
) -> PeelingResult:
    """Generic min-incidence-degree peeling; density = live count / nodes."""
    n = graph.number_of_nodes()
    if n == 0:
        return PeelingResult(Fraction(0), frozenset(), ())
    member_of: Dict[Node, List[int]] = {node: [] for node in graph}
    for index, members in enumerate(incidences):
        for node in members:
            member_of[node].append(index)
    live_count = {node: len(ids) for node, ids in member_of.items()}
    incidence_alive = [True] * len(incidences)
    node_alive = {node: True for node in graph}
    incidences_left = len(incidences)
    nodes_left = n
    best = Fraction(incidences_left, nodes_left)
    best_size = nodes_left
    order: List[Node] = []
    trajectory: List[Tuple[Fraction, int]] = [(best, nodes_left)]
    remaining = set(graph.nodes())
    while nodes_left > 1:
        node = min(remaining, key=lambda v: (live_count[v], repr(v)))
        remaining.discard(node)
        order.append(node)
        node_alive[node] = False
        for index in member_of[node]:
            if not incidence_alive[index]:
                continue
            incidence_alive[index] = False
            incidences_left -= 1
            for other in incidences[index]:
                if other != node and node_alive[other]:
                    live_count[other] -= 1
        nodes_left -= 1
        density = Fraction(incidences_left, nodes_left)
        trajectory.append((density, nodes_left))
        if density > best:
            best = density
            best_size = nodes_left
    full_order = tuple(order) + tuple(sorted(remaining, key=repr))
    drop = n - best_size
    best_nodes = frozenset(full_order[drop:])
    return PeelingResult(best, best_nodes, tuple(trajectory), full_order)


def peel_clique_density(graph: Graph, h: int) -> PeelingResult:
    """Greedy h-clique-degree peeling (1/h-approximation, [19])."""
    incidences = [frozenset(c) for c in enumerate_cliques(graph, h)]
    return _peel_incidences(graph, incidences, h)


def peel_pattern_density(graph: Graph, pattern: Pattern) -> PeelingResult:
    """Greedy pattern-degree peeling (1/|V_psi|-approximation, [5])."""
    incidences = [
        instance_nodes(instance)
        for instance in enumerate_instances(graph, pattern)
    ]
    return _peel_incidences(graph, incidences, pattern.number_of_nodes())
