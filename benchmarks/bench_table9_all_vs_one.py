"""Table IX: enumerating all densest subgraphs vs only one per world."""

from repro.experiments import format_table9, run_table9

from .conftest import BENCH_SMALL, emit


def test_table9(benchmark):
    datasets = {
        "KarateClub": BENCH_SMALL["KarateClub"],
        "LastFM": BENCH_SMALL["LastFM"],
    }
    rows = benchmark.pedantic(
        lambda: run_table9(datasets=datasets, theta=24, k=10),
        rounds=1, iterations=1,
    )
    emit("table9_all_vs_one", format_table9(rows))
    for row in rows:
        # Section VI-D: recording one densest subgraph per world can only
        # lose probability mass
        assert row.avg_top10_all >= row.avg_top10_one - 1e-9, (
            row.dataset, row.notion,
        )
