"""Tests for the DOT visualization exports (repro.viz)."""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.uncertain import UncertainGraph
from repro.viz import graph_to_dot, uncertain_to_dot


class TestGraphToDot:
    def test_basic_structure(self, triangle_graph):
        dot = graph_to_dot(triangle_graph)
        assert dot.startswith("graph {")
        assert dot.endswith("}")
        assert dot.count(" -- ") == 3

    def test_all_nodes_declared(self, triangle_graph):
        dot = graph_to_dot(triangle_graph)
        for node in (1, 2, 3):
            assert f'"{node}";' in dot or f'"{node}" [' in dot

    def test_highlight_adds_penwidth(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, highlight={1, 2})
        assert dot.count("penwidth=3") == 2

    def test_communities_colour_nodes(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, communities={1: "a", 2: "a", 3: "b"})
        assert dot.count("style=filled") == 3
        # two communities -> exactly two distinct fill colours
        colours = {
            line.split('fillcolor="')[1].split('"')[0]
            for line in dot.splitlines()
            if "fillcolor" in line
        }
        assert len(colours) == 2

    def test_quoting_of_odd_labels(self):
        graph = Graph.from_edges([('say "hi"', "b")])
        dot = graph_to_dot(graph)
        assert r"\"hi\"" in dot

    def test_deterministic_output(self, triangle_graph):
        assert graph_to_dot(triangle_graph) == graph_to_dot(triangle_graph)


class TestUncertainToDot:
    def _graph(self) -> UncertainGraph:
        return UncertainGraph.from_weighted_edges(
            [("A", "B", 1.0), ("B", "C", 0.5), ("A", "C", 0.02)]
        )

    def test_penwidth_scales_with_probability(self):
        dot = uncertain_to_dot(self._graph(), max_penwidth=4.0)
        assert "penwidth=4.00" in dot       # p = 1.0
        assert "penwidth=2.00" in dot       # p = 0.5
        assert "penwidth=0.20" in dot       # p = 0.02, floored

    def test_tooltips_carry_probabilities(self):
        dot = uncertain_to_dot(self._graph())
        assert 'tooltip="p=0.500"' in dot

    def test_highlight_and_communities_combine(self):
        dot = uncertain_to_dot(
            self._graph(),
            highlight={"A"},
            communities={"A": 0, "B": 0, "C": 1},
        )
        assert "penwidth=3" in dot
        assert dot.count("style=filled") == 3

    def test_karate_case_study_renders(self):
        from repro.datasets import karate_club_uncertain
        from repro.datasets.karate import KARATE_FACTIONS

        graph = karate_club_uncertain(seed=2023)
        dot = uncertain_to_dot(graph, communities=KARATE_FACTIONS)
        assert dot.count(" -- ") == graph.number_of_edges()
