"""Datasets: Karate Club (real), paper examples, brain networks, stand-ins."""

from .karate import (
    KARATE_EDGES,
    KARATE_FACTIONS,
    karate_club_topology,
    karate_club_uncertain,
)
from .paper_examples import (
    TABLE1_EXPECTED_DSP,
    TABLE1_EXPECTED_EED,
    figure1_graph,
    figure3_world_graph,
)
from .brain import (
    ASD_NUCLEUS,
    TD_NUCLEUS,
    brain_network,
    counterpart,
    hemisphere,
    roi_lobes,
    roi_names,
)
from .synthetic import (
    make_biomine_like,
    make_friendster_like,
    make_homo_sapiens_like,
    make_intel_lab_like,
    make_lastfm_like,
    make_twitter_like,
)

__all__ = [
    "KARATE_EDGES",
    "KARATE_FACTIONS",
    "karate_club_topology",
    "karate_club_uncertain",
    "TABLE1_EXPECTED_DSP",
    "TABLE1_EXPECTED_EED",
    "figure1_graph",
    "figure3_world_graph",
    "ASD_NUCLEUS",
    "TD_NUCLEUS",
    "brain_network",
    "counterpart",
    "hemisphere",
    "roi_lobes",
    "roi_names",
    "make_biomine_like",
    "make_friendster_like",
    "make_homo_sapiens_like",
    "make_intel_lab_like",
    "make_lastfm_like",
    "make_twitter_like",
]
