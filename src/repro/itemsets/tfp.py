"""Top-k closed frequent itemset mining with a minimum length (TFP [47]).

Algorithm 5 reduces NDS discovery to this problem: transactions are the
maximum-sized densest subgraphs of sampled worlds, items are graph nodes,
and the top-k closed node sets of size >= ``l_m`` with the highest supports
are exactly the top-k NDS estimates.

The miner is a vertical-format (tidset) depth-first search in the style of
CHARM, with the two signature ingredients of TFP:

* closedness by *closure*: every explored itemset is extended to its
  closure (all items shared by its supporting transactions), so only closed
  itemsets are generated;
* *dynamic support raising*: a bounded top-k pool of closed itemsets of
  length >= ``l_m`` raises the minimum support as it fills, pruning the
  search (support is anti-monotone).

Transactions may repeat; they are deduplicated up-front with counts, so the
tidsets range over distinct transactions and supports are weighted.
A brute-force oracle (:func:`naive_closed_itemsets`) backs the tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

Item = Hashable
Itemset = FrozenSet[Item]


@dataclass(frozen=True)
class ClosedItemset:
    """A closed itemset with its (weighted) support."""

    items: Itemset
    support: float


def _deduplicate(
    transactions: Iterable[Iterable[Item]],
    weights: Optional[Sequence[float]] = None,
) -> Tuple[List[Itemset], List[float]]:
    """Collapse duplicate transactions, accumulating weights (default 1)."""
    counts: Dict[Itemset, float] = {}
    if weights is None:
        for transaction in transactions:
            key = frozenset(transaction)
            if key:
                counts[key] = counts.get(key, 0.0) + 1.0
    else:
        for transaction, weight in zip(transactions, weights):
            key = frozenset(transaction)
            if key:
                counts[key] = counts.get(key, 0.0) + weight
    uniques = list(counts)
    return uniques, [counts[u] for u in uniques]


class _TopKPool:
    """Bounded pool of the k best (support, itemset) pairs seen so far."""

    def __init__(self, k: int) -> None:
        self._k = k
        self._heap: List[Tuple[float, int, Itemset]] = []
        self._tiebreak = itertools.count()

    def offer(self, itemset: Itemset, support: float) -> None:
        entry = (support, next(self._tiebreak), itemset)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
        elif support > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def min_support(self) -> float:
        """Current support threshold: 0 until the pool is full."""
        if len(self._heap) < self._k:
            return 0.0
        return self._heap[0][0]

    def results(self) -> List[ClosedItemset]:
        ordered = sorted(self._heap, key=lambda e: (-e[0], sorted(map(repr, e[2]))))
        return [ClosedItemset(items, support) for support, _, items in ordered]


def top_k_closed_itemsets(
    transactions: Iterable[Iterable[Item]],
    k: int,
    min_length: int = 1,
    weights: Optional[Sequence[float]] = None,
) -> List[ClosedItemset]:
    """Return the top-k closed itemsets of length >= ``min_length``.

    Ordered by decreasing support.  ``weights`` (parallel to
    ``transactions``) makes supports weighted sums -- Algorithm 5 passes the
    sampler weights so RSS-sampled transactions are combined correctly.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    uniques, counts = _deduplicate(transactions, weights)
    if not uniques:
        return []

    # vertical layout: item -> bitmask of supporting transactions
    tid_of_item: Dict[Item, int] = {}
    for tid, transaction in enumerate(uniques):
        bit = 1 << tid
        for item in transaction:
            tid_of_item[item] = tid_of_item.get(item, 0) | bit

    def support_of(mask: int) -> float:
        total = 0.0
        tid = 0
        while mask:
            if mask & 1:
                total += counts[tid]
            mask >>= 1
            tid += 1
        return total

    full_mask = (1 << len(uniques)) - 1
    items = sorted(tid_of_item, key=lambda it: (support_of(tid_of_item[it]), repr(it)))
    order = {item: position for position, item in enumerate(items)}
    pool = _TopKPool(k)

    def closure_of(mask: int) -> Itemset:
        return frozenset(
            item for item, item_mask in tid_of_item.items()
            if mask & ~item_mask == 0
        )

    def explore(current_mask: int, closure: Itemset, core_position: int) -> None:
        """LCM-style DFS: each closed itemset is generated exactly once.

        An extension by item ``i`` (with order > ``core_position``) is kept
        only if it is *prefix-preserving*: the new closure must not acquire
        any item ordered before ``i`` that the old closure lacked (Uno et
        al.'s ppc-extension); this makes the search tree a spanning tree of
        the closed-itemset lattice.
        """
        if len(closure) >= min_length:
            pool.offer(closure, support_of(current_mask))
        for position in range(core_position + 1, len(items)):
            item = items[position]
            if item in closure:
                continue
            new_mask = current_mask & tid_of_item[item]
            if not new_mask:
                continue
            support = support_of(new_mask)
            if support < pool.min_support():
                continue  # TFP support raising: cannot enter the top-k
            new_closure = closure_of(new_mask)
            prefix_ok = all(
                other in closure
                for other in new_closure
                if order[other] < position
            )
            if prefix_ok:
                explore(new_mask, new_closure, position)

    explore(full_mask, closure_of(full_mask), -1)
    return pool.results()


def all_closed_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_length: int = 1,
    weights: Optional[Sequence[float]] = None,
) -> List[ClosedItemset]:
    """Return *all* closed itemsets of length >= ``min_length``.

    Convenience wrapper used by analyses that need the full closed lattice
    (e.g. the l_m sensitivity sweep of Fig. 20); equivalent to asking for a
    huge k.
    """
    uniques, _ = _deduplicate(transactions, weights)
    bound = 1 << min(len(uniques), 60)
    return top_k_closed_itemsets(transactions, bound, min_length, weights)


def naive_closed_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_length: int = 1,
) -> List[ClosedItemset]:
    """Brute-force oracle: closed itemsets are intersections of transactions.

    The closed sets of a transaction database are exactly the non-empty
    intersections of non-empty subsets of (distinct) transactions; this
    computes them by BFS over pairwise intersections.  Exponential in the
    worst case -- tests only.
    """
    uniques, counts = _deduplicate(transactions)
    closed: set = set(uniques)
    frontier = set(uniques)
    while frontier:
        additions: set = set()
        for candidate in frontier:
            for transaction in uniques:
                meet = candidate & transaction
                if meet and meet not in closed:
                    additions.add(meet)
        closed |= additions
        frontier = additions
    results = []
    for itemset in closed:
        if len(itemset) < min_length:
            continue
        support = sum(
            count for transaction, count in zip(uniques, counts)
            if itemset <= transaction
        )
        results.append(ClosedItemset(itemset, support))
    results.sort(key=lambda c: (-c.support, sorted(map(repr, c.items))))
    return results
