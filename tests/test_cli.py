"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.datasets.paper_examples import figure1_graph
from repro.graph.io import write_uncertain_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "figure1.txt"
    write_uncertain_edge_list(figure1_graph(), path)
    return str(path)


class TestCLI:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        out = capsys.readouterr().out
        assert "nodes\t4" in out
        assert "edges\t3" in out

    def test_mpds(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--k", "2", "--theta", "1500", "--seed", "3",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        rank1 = lines[0].split("\t")
        assert rank1[0] == "1"
        assert set(rank1[3].split()) == {"B", "D"}

    def test_mpds_with_sampler_and_ablation(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--theta", "300", "--sampler", "RSS",
            "--one-per-world", "--seed", "1",
        ])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_nds(self, graph_file, capsys):
        code = main([
            "nds", graph_file, "--k", "1", "--min-size", "2",
            "--theta", "1500", "--seed", "3",
        ])
        assert code == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        parts = line.split("\t")
        assert set(parts[3].split()) == {"B", "D"}
        assert abs(float(parts[1]) - 0.7) < 0.05

    def test_exact(self, graph_file, capsys):
        assert main(["exact", graph_file, "--k", "1"]) == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        parts = line.split("\t")
        assert abs(float(parts[1]) - 0.42) < 1e-9

    def test_exact_refuses_large_graphs(self, tmp_path, capsys):
        from repro.graph.generators import uncertain_erdos_renyi
        import random
        graph = uncertain_erdos_renyi(12, 0.6, random.Random(1))
        path = tmp_path / "big.txt"
        write_uncertain_edge_list(graph, path)
        assert main(["exact", str(path)]) == 2

    def test_clique_density_option(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--density", "clique", "--h", "2",
            "--theta", "200", "--seed", "5",
        ])
        assert code == 0

    def test_heuristic_flag(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--heuristic", "--theta", "200", "--seed", "5",
        ])
        assert code == 0

    def test_surplus_density_option(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--density", "surplus", "--alpha", "0.33",
            "--theta", "64", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tau-hat" in out

    @pytest.mark.parametrize("command", ["mpds", "nds"])
    def test_engine_option_identical_output(self, command, graph_file, capsys):
        """--engine python and --engine vectorized print identical results."""
        outputs = {}
        for engine in ("python", "vectorized", "auto"):
            code = main([
                command, graph_file, "--k", "2", "--theta", "120",
                "--seed", "9", "--engine", engine,
            ])
            assert code == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["python"] == outputs["vectorized"] == outputs["auto"]
        assert outputs["python"].strip()

    def test_engine_option_with_explicit_sampler(self, graph_file, capsys):
        for engine in ("python", "vectorized"):
            code = main([
                "mpds", graph_file, "--sampler", "LP", "--theta", "80",
                "--seed", "2", "--engine", engine,
            ])
            assert code == 0
        assert capsys.readouterr().out.strip()

    def test_engine_option_rejects_unknown(self, graph_file, capsys):
        with pytest.raises(SystemExit):
            main(["mpds", graph_file, "--engine", "warp-drive"])
