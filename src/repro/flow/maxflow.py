"""Dinic's maximum-flow algorithm over :class:`~repro.flow.network.FlowNetwork`.

Dinic's algorithm repeatedly builds a BFS level graph and saturates a
blocking flow with iterative DFS.  It terminates for arbitrary non-negative
rational capacities (the level structure strictly grows), which is what the
exact-density constructions need.

Complexity is ``O(V^2 E)`` in general and much better on the unit-ish
networks that arise here; the graphs in this reproduction are laptop-scale.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .network import Arc, Capacity, FlowNetwork, NetNode


def max_flow(network: FlowNetwork, source: NetNode, sink: NetNode) -> Capacity:
    """Push a maximum flow from ``source`` to ``sink``; return its value.

    The network's arcs are mutated in place (their ``flow`` attributes),
    leaving the residual graph available for inspection.  Call
    ``network.reset_flow()`` first to recompute from scratch.
    """
    s = network.index_of(source)
    t = network.index_of(sink)
    if s == t:
        raise ValueError("source and sink must differ")
    n = network.number_of_nodes()
    total: Capacity = 0
    while True:
        level = _bfs_levels(network, s, t, n)
        if level[t] < 0:
            return total
        # iterative DFS blocking flow with per-node arc pointers
        pointers = [0] * n
        while True:
            pushed = _dfs_push(network, s, t, level, pointers)
            if pushed is None:
                break
            total = total + pushed


def _bfs_levels(network: FlowNetwork, s: int, t: int, n: int) -> List[int]:
    level = [-1] * n
    level[s] = 0
    queue = deque([s])
    while queue:
        node = queue.popleft()
        for arc in network.arcs_from(node):
            if arc.residual() > 0 and level[arc.head] < 0:
                level[arc.head] = level[node] + 1
                queue.append(arc.head)
    return level


def _dfs_push(
    network: FlowNetwork,
    s: int,
    t: int,
    level: List[int],
    pointers: List[int],
) -> Optional[Capacity]:
    """Find one augmenting path in the level graph; push its bottleneck.

    Returns the pushed amount, or ``None`` when the level graph admits no
    further augmenting path (blocking flow reached).
    """
    path: List[Arc] = []
    node = s
    while True:
        if node == t:
            bottleneck = min(arc.residual() for arc in path)
            for arc in path:
                arc.flow = arc.flow + bottleneck
                arc.reverse.flow = arc.reverse.flow - bottleneck
            return bottleneck
        arcs = network.arcs_from(node)
        advanced = False
        while pointers[node] < len(arcs):
            arc = arcs[pointers[node]]
            if arc.residual() > 0 and level[arc.head] == level[node] + 1:
                path.append(arc)
                node = arc.head
                advanced = True
                break
            pointers[node] += 1
        if advanced:
            continue
        # dead end: retreat
        level[node] = -1
        if not path:
            return None
        dead = path.pop()
        node = dead.tail
        pointers[node] += 1


def min_cut_source_side(
    network: FlowNetwork, source: NetNode
) -> List[NetNode]:
    """Return the *minimal* min-cut source side after a max-flow run.

    These are the labels reachable from ``source`` in the residual graph.
    """
    return network.residual_reachable_from(source)


def min_cut_maximal_source_side(
    network: FlowNetwork, sink: NetNode
) -> List[NetNode]:
    """Return the *maximal* min-cut source side after a max-flow run.

    By min-cut structure theory the maximal source side is the complement of
    the set of nodes that can still reach the sink in the residual graph.
    The paper uses this to extract the maximum-sized densest subgraph
    (Algorithm 5 line 4; see also [59]).
    """
    coreachable = set(network.residual_coreachable_to(sink))
    return [label for label in network.labels() if label not in coreachable]
