"""Table XI: approximate vs heuristic Pattern-NDS on Karate Club."""

from repro.experiments import format_table11_12, run_table11

from .conftest import emit


def test_table11(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table11(theta=24), rounds=1, iterations=1,
    )
    emit("table11_pattern_heuristic", format_table11_12(rows))
    assert len(rows) == 4  # the four paper patterns
    for row in rows:
        # paper shape: heuristic is faster with comparable quality
        assert row.heuristic_seconds <= row.approx_seconds * 1.5, row.workload
        assert row.heuristic_containment >= row.approx_containment - 0.45, (
            row.workload,
        )
