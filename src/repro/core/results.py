"""Result containers for the MPDS / NDS estimators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Tuple

NodeSet = FrozenSet[Hashable]


@dataclass(frozen=True)
class ScoredNodeSet:
    """A node set with its estimated probability (tau-hat or gamma-hat)."""

    nodes: NodeSet
    probability: float


@dataclass
class MPDSResult:
    """Output of the top-k MPDS estimator (Algorithm 1).

    Attributes
    ----------
    top:
        The top-k node sets with their estimated densest subgraph
        probabilities, sorted by decreasing probability.
    candidates:
        Estimated probability of *every* candidate node set (those that
        induced a densest subgraph in at least one sampled world).
    theta:
        Number of sampled possible worlds.
    worlds_with_densest:
        Number of sampled worlds that had a (non-trivial) densest subgraph.
    densest_counts:
        Per sampled world, the number of densest subgraphs found -- the
        statistic summarised in Table VIII.
    replayed_worlds:
        Number of worlds the vectorised engine replayed through the
        pure-Python path because their densest-subgraph enumeration hit
        ``per_world_limit`` (the truncated subset is order-sensitive, so
        the replay keeps it byte-identical across engines).  Always 0 on
        the pure-Python engine.
    """

    top: List[ScoredNodeSet]
    candidates: Dict[NodeSet, float]
    theta: int
    worlds_with_densest: int
    densest_counts: List[int] = field(default_factory=list)
    replayed_worlds: int = 0

    def top_sets(self) -> List[NodeSet]:
        """Return just the node sets of the top-k, in rank order."""
        return [scored.nodes for scored in self.top]

    def best(self) -> ScoredNodeSet:
        """Return the rank-1 MPDS estimate (raises on empty result)."""
        if not self.top:
            raise ValueError("no candidate induced a densest subgraph")
        return self.top[0]


@dataclass
class NDSResult:
    """Output of the top-k NDS estimator (Algorithm 5).

    ``top`` holds the closed node sets of size >= l_m with the highest
    estimated containment probabilities; ``transactions`` is the number of
    candidate maximum-sized densest subgraphs fed to the TFP miner.
    """

    top: List[ScoredNodeSet]
    theta: int
    transactions: int

    def top_sets(self) -> List[NodeSet]:
        """Return just the node sets of the top-k, in rank order."""
        return [scored.nodes for scored in self.top]

    def best(self) -> ScoredNodeSet:
        """Return the rank-1 NDS estimate (raises on empty result)."""
        if not self.top:
            raise ValueError("no closed node set of the requested size found")
        return self.top[0]
