"""repro: Most Probable Densest Subgraphs in uncertain graphs.

A complete Python reproduction of "Most Probable Densest Subgraphs"
(Saha, Ke, Khan, Long -- ICDE 2023, arXiv:2212.08820): densest-subgraph
discovery on uncertain graphs under edge, h-clique, and pattern densities,
with sampling-based estimators carrying end-to-end accuracy guarantees.

Quickstart
----------
>>> from repro import UncertainGraph, top_k_mpds
>>> g = UncertainGraph.from_weighted_edges(
...     [("A", "B", 0.4), ("A", "C", 0.4), ("B", "D", 0.7)])
>>> result = top_k_mpds(g, k=1, theta=2000, seed=7)
>>> sorted(result.best().nodes)
['B', 'D']

Package layout (see DESIGN.md for the full inventory):

* ``repro.core`` -- Algorithm 1 (top-k MPDS), Algorithm 5 (NDS), exact
  reference solvers, heuristics, accuracy guarantees;
* ``repro.dense`` -- all-densest-subgraph enumeration for edge / clique /
  pattern densities (Algorithms 2-4, 6-7 and [46]);
* ``repro.graph`` / ``repro.flow`` / ``repro.cliques`` /
  ``repro.patterns`` -- substrates;
* ``repro.sampling`` -- Monte Carlo / Lazy Propagation / RSS;
* ``repro.engine`` -- vectorised possible-world engine (numpy batch
  sampling, array kernels; identical estimates, several times faster);
* ``repro.session`` -- Session/Query API: amortizes sampling and
  substrate prep across repeated top-k queries (warm queries reuse the
  seed-keyed world store, byte-identical to one-shot calls);
* ``repro.specs`` -- string-spec registry for samplers and measures
  (``"mc:theta=160"``, ``"clique:h=3"``), shared by sessions, the CLI
  and the experiments tier;
* ``repro.itemsets`` -- TFP-style closed frequent itemset mining;
* ``repro.baselines`` -- EDS, (k,eta)-core, (k,gamma)-truss, DDS;
* ``repro.metrics`` -- PD, PCC, purity, F1, similarity;
* ``repro.datasets`` -- Karate Club, paper examples, brain networks,
  synthetic stand-ins;
* ``repro.experiments`` -- one driver per paper table/figure.
"""

from .graph import Graph, UncertainGraph
from .core import (
    AdaptiveResult,
    bitmask_top_k_mpds,
    CliqueDensity,
    EdgeDensity,
    EdgeSurplus,
    HeuristicMeasure,
    MPDSResult,
    NDSResult,
    PatternDensity,
    adaptive_top_k_mpds,
    adaptive_top_k_nds,
    estimate_gamma,
    estimate_tau,
    exact_gamma,
    exact_tau,
    exact_top_k_mpds,
    exact_top_k_nds,
    parallel_top_k_mpds,
    parallel_top_k_nds,
    top_k_mpds,
    top_k_nds,
)
from .patterns import Pattern
from .sampling import (
    LazyPropagationSampler,
    MonteCarloSampler,
    RecursiveStratifiedSampler,
)
from .engine import IndexedGraph, VectorizedMonteCarloSampler, WorldStore
from .session import Query, Session
from .delta import GraphDelta, draw_dynamic_store
from .specs import build_measure, build_sampler, parse_spec

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "UncertainGraph",
    "AdaptiveResult",
    "adaptive_top_k_mpds",
    "adaptive_top_k_nds",
    "parallel_top_k_mpds",
    "parallel_top_k_nds",
    "CliqueDensity",
    "EdgeDensity",
    "EdgeSurplus",
    "HeuristicMeasure",
    "MPDSResult",
    "NDSResult",
    "PatternDensity",
    "estimate_gamma",
    "estimate_tau",
    "exact_gamma",
    "exact_tau",
    "bitmask_top_k_mpds",
    "exact_top_k_mpds",
    "exact_top_k_nds",
    "top_k_mpds",
    "top_k_nds",
    "Pattern",
    "LazyPropagationSampler",
    "MonteCarloSampler",
    "RecursiveStratifiedSampler",
    "IndexedGraph",
    "VectorizedMonteCarloSampler",
    "WorldStore",
    "Query",
    "Session",
    "GraphDelta",
    "draw_dynamic_store",
    "build_measure",
    "build_sampler",
    "parse_spec",
    "__version__",
]
