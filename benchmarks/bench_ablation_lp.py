"""Ablation: flow-based exact engines vs Charikar's LP relaxation [2].

The library's primary exact densest-subgraph engines are flow-based
(Goldberg [1], Algorithm 6); ``repro.dense.lp`` solves the same problems as
linear programs (scipy/HiGHS).  This bench confirms the two independent
formulations agree on the optimum density for edge, 3-clique, and 2-star
densities, and compares runtimes.
"""

import random
import time

import pytest

pytest.importorskip("scipy")

from repro.dense.clique_density import clique_densest_subgraph
from repro.dense.goldberg import densest_subgraph
from repro.dense.lp import lp_clique_densest, lp_edge_densest, lp_pattern_densest
from repro.dense.pattern_density import pattern_densest_subgraph
from repro.experiments.common import format_table
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.patterns.pattern import Pattern

from .conftest import emit


def test_lp_vs_flow(benchmark):
    rng = random.Random(2023)
    graphs = {
        "BA20": barabasi_albert(20, 3, rng),
        "BA40": barabasi_albert(40, 3, rng),
        "ER20": erdos_renyi(20, 0.25, rng),
    }

    def run():
        rows = []
        for name, graph in graphs.items():
            start = time.perf_counter()
            flow_edge = densest_subgraph(graph).density
            flow_clique = clique_densest_subgraph(graph, 3).density
            flow_pattern = pattern_densest_subgraph(graph, Pattern.two_star()).density
            flow_time = time.perf_counter() - start
            start = time.perf_counter()
            lp_edge = lp_edge_densest(graph).density
            lp_clique = lp_clique_densest(graph, 3).density
            lp_pattern = lp_pattern_densest(graph, Pattern.two_star()).density
            lp_time = time.perf_counter() - start
            rows.append([
                name,
                float(flow_edge), float(flow_clique), float(flow_pattern),
                flow_time, lp_time,
                (flow_edge, flow_clique, flow_pattern)
                == (lp_edge, lp_clique, lp_pattern),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_lp_vs_flow", format_table(
        ["Graph", "rho*_e", "rho*_3", "rho*_2star", "Flow(s)", "LP(s)", "Match"],
        rows,
    ))
    # both formulations are exact: they must agree everywhere
    for row in rows:
        assert row[6], f"LP and flow disagree on {row[0]}"
