"""What-if analysis on an uncertain graph via conditioning.

Uncertain edges often come from noisy measurements that *can* be resolved
-- rerun the biological assay, ask the user, check the log.  Conditioning
answers "which MPDS would we report if this edge were confirmed (or
refuted)?" and, by the law of total probability, decomposes tau(U)
exactly:

    tau(U) = p(e) * tau(U | e present) + (1 - p(e)) * tau(U | e absent)

This example runs on the paper's Figure 1 running example, whose
densest-subgraph probabilities are known in closed form (Table I), so
every number printed here is exact.

Run:  python examples/what_if_analysis.py
"""

from repro.core.exact import exact_tau, exact_top_k_mpds
from repro.core.whatif import exact_edge_influence
from repro.datasets.paper_examples import figure1_graph


def describe(graph, title: str) -> frozenset:
    result = exact_top_k_mpds(graph, k=1)
    best = result.top[0]
    print(f"{title}")
    print(f"  MPDS = {sorted(best.nodes)}  tau = {best.probability:.4f}")
    return best.nodes


def main() -> None:
    graph = figure1_graph()
    print("Figure 1 running example "
          f"({graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} uncertain edges)\n")

    base_nodes = describe(graph, "unconditioned:")
    target = frozenset({"B", "D"})
    p = graph.probability("A", "B")
    tau = exact_tau(graph, target)
    print(f"  tau({{B, D}}) = {tau:.4f}   (Table I: 0.42)\n")

    confirmed = graph.condition("A", "B", present=True)
    describe(confirmed, f"if (A, B) is confirmed (was p = {p}):")
    tau_present = exact_tau(confirmed, target)
    print(f"  tau({{B, D}} | A-B present) = {tau_present:.4f}\n")

    refuted = graph.condition("A", "B", present=False)
    describe(refuted, "if (A, B) is refuted:")
    tau_absent = exact_tau(refuted, target)
    print(f"  tau({{B, D}} | A-B absent) = {tau_absent:.4f}\n")

    recombined = p * tau_present + (1 - p) * tau_absent
    print("law of total probability: "
          f"{p} * {tau_present:.4f} + {1 - p} * {tau_absent:.4f} "
          f"= {recombined:.4f}")
    assert abs(recombined - tau) < 1e-9
    print("decomposition is exact.\n")

    print("which edge should we resolve first?  influence of each edge "
          "on tau({B, D}):")
    for influence in exact_edge_influence(graph, target):
        print(f"  {influence.edge}: p = {influence.probability}  "
              f"tau|present = {influence.tau_present:.2f}  "
              f"tau|absent = {influence.tau_absent:.2f}  "
              f"influence = {influence.influence:+.2f}")
    print()

    pruned = graph.prune(0.5)
    print(f"pruning edges with p < 0.5 keeps "
          f"{pruned.number_of_edges()}/{graph.number_of_edges()} edges "
          "(approximation, distribution changes):")
    describe(pruned, "pruned graph:")
    print(f"\nbaseline MPDS: {sorted(base_nodes)}.  Confirming A-B flips "
          "the winner to {A, B, D}; refuting it nearly doubles the "
          "confidence in {B, D}.")


if __name__ == "__main__":
    main()
