"""The running examples of the paper, reconstructed exactly.

``figure1_graph`` is the 4-node uncertain graph of Fig. 1 / Table I.  The
edge probabilities are recovered from the possible-world probabilities the
paper reports (Example 1 gives Pr(G7) = 0.168 and Pr(G8) = 0.112 to three
decimals): p(A,B) = 0.4, p(A,C) = 0.4, p(B,D) = 0.7 reproduces every world
probability, every expected edge density, and every densest subgraph
probability of Table I -- asserted in the test suite.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graph.uncertain import UncertainGraph

#: Expected edge densities of Table I (node set -> EED), for the tests.
TABLE1_EXPECTED_EED: Dict[Tuple[str, ...], float] = {
    ("A", "B"): 0.2,
    ("A", "C"): 0.2,
    ("B", "D"): 0.35,
    ("A", "B", "C"): 0.2666666667,
    ("A", "B", "D"): 0.3666666667,
    ("A", "B", "C", "D"): 0.375,
}

#: Densest subgraph probabilities of Table I (node set -> DSP), exact.
TABLE1_EXPECTED_DSP: Dict[Tuple[str, ...], float] = {
    ("A", "B"): 0.072,
    ("A", "C"): 0.24,   # G3 (0.072) + G7 (0.168); see note below
    ("B", "D"): 0.42,
    ("A", "B", "C"): 0.048,
    ("A", "B", "D"): 0.168,
    ("A", "B", "C", "D"): 0.28,
}
# Note: Table I rounds to two decimals ({A,C}: 0.24 = 0.072 (G3) + 0.168
# (G7); {A,B}: 0.07 = 0.072 (G2); {A,B,D}: 0.17 = 0.168 (G6)); the values
# above are the exact products of the recovered edge probabilities, and the
# tests recompute them from scratch by full possible-world enumeration.


def figure1_graph() -> UncertainGraph:
    """Return the uncertain graph of Fig. 1 (nodes A-D, three edges)."""
    graph = UncertainGraph()
    for node in ("A", "B", "C", "D"):
        graph.add_node(node)
    graph.add_edge("A", "B", 0.4)
    graph.add_edge("A", "C", 0.4)
    graph.add_edge("B", "D", 0.7)
    return graph


def figure3_world_graph() -> UncertainGraph:
    """Return an uncertain graph shaped like Fig. 3(a) (5 nodes, 6 edges).

    Used to exercise the Example 4 flow construction: its most probable
    worlds contain the {A, B, C, D} near-clique whose densest subgraphs are
    {A, B, C, D} and {B, C, D}.
    """
    graph = UncertainGraph()
    for node in ("A", "B", "C", "D", "E"):
        graph.add_node(node)
    graph.add_edge("A", "B", 0.9)
    graph.add_edge("B", "C", 0.9)
    graph.add_edge("C", "D", 0.9)
    graph.add_edge("B", "D", 0.9)
    graph.add_edge("A", "D", 0.3)
    graph.add_edge("D", "E", 0.3)
    return graph
