"""Regression tests for the PR-7 validation-bug sweep.

Three bugs, three surfaces:

* ``specs.check_int_knob`` accepted ``theta=0`` / negatives, so
  ``"mc:theta=0"`` parsed fine and died much later inside
  ``plan_blocks`` ("total must be positive") -- now rejected at the
  spec layer with a context-prefixed message, and CLI paths exit 2;
* ``Query.top_k`` / ``min_size`` / ``per_world_limit`` accepted 0,
  negatives, and ``bool`` without error until deep in finalize -- now
  validated in the builder with messages mirroring the registry rules;
* ``_MaskPager.block_words`` trusted ``file.read(nbytes)``: a short
  read silently flowed into ``np.frombuffer(...).reshape`` and failed
  far from the cause -- now a descriptive ``IOError`` naming the spill
  file and block.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.paper_examples import figure1_graph
from repro.engine.bitset import PackedMasks
from repro.engine.worldstore import WorldStore, _MaskPager
from repro.graph.io import write_uncertain_edge_list
from repro.session import Session
from repro.specs import check_int_knob, split_sampler_spec

from .conftest import random_uncertain_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "figure1.txt"
    write_uncertain_edge_list(figure1_graph(), path)
    return str(path)


# ----------------------------------------------------------------------
# bug 1: theta positivity at the spec layer
# ----------------------------------------------------------------------
class TestSpecThetaPositivity:
    @pytest.mark.parametrize("theta", [0, -1, -160])
    def test_split_sampler_spec_rejects_nonpositive_theta(self, theta):
        with pytest.raises(ValueError, match="theta must be positive"):
            split_sampler_spec(f"mc:theta={theta},seed=7")

    def test_message_is_context_prefixed(self):
        with pytest.raises(ValueError, match="mc:theta=0"):
            split_sampler_spec("mc:theta=0")

    @pytest.mark.parametrize("value", [0, -3])
    def test_check_int_knob_positive_gate(self, value):
        with pytest.raises(ValueError, match="theta must be positive"):
            check_int_knob("ctx", "theta", value, positive=True)

    def test_check_int_knob_positive_accepts_one(self):
        assert check_int_knob("ctx", "theta", 1, positive=True) == 1

    def test_check_int_knob_still_rejects_bool(self):
        with pytest.raises(ValueError, match="must be an integer"):
            check_int_knob("ctx", "theta", True, positive=True)

    def test_check_int_knob_none_passthrough(self):
        assert check_int_knob("ctx", "theta", None, positive=True) is None


# ----------------------------------------------------------------------
# bug 2: Query builder knobs
# ----------------------------------------------------------------------
class TestQueryBuilderValidation:
    @pytest.fixture
    def session(self):
        with Session(random_uncertain_graph(random.Random(5), 12, 0.3)) as s:
            yield s

    @pytest.mark.parametrize("k", [0, -1])
    def test_top_k_rejects_nonpositive(self, session, k):
        with pytest.raises(ValueError, match="k must be >= 1"):
            session.query().top_k(k)

    @pytest.mark.parametrize("k", [True, False, 1.5, "3", None])
    def test_top_k_rejects_non_int(self, session, k):
        with pytest.raises(ValueError, match="k must be an integer"):
            session.query().top_k(k)

    @pytest.mark.parametrize("min_size", [0, -2])
    def test_min_size_rejects_nonpositive(self, session, min_size):
        with pytest.raises(ValueError, match="min_size"):
            session.query().min_size(min_size)

    def test_min_size_rejects_bool(self, session):
        with pytest.raises(ValueError, match="min_size"):
            session.query().min_size(True)

    @pytest.mark.parametrize("limit", [0, -1, True])
    def test_per_world_limit_rejects_bad(self, session, limit):
        with pytest.raises(ValueError, match="per_world_limit"):
            session.query().per_world_limit(limit)

    def test_per_world_limit_accepts_none(self, session):
        query = session.query().per_world_limit(None)
        assert query is not None

    @pytest.mark.parametrize("theta", [0, -5])
    def test_theta_rejects_nonpositive(self, session, theta):
        with pytest.raises(ValueError, match="theta must be positive"):
            session.query().theta(theta)

    def test_sampler_keyword_theta_rejects_zero(self, session):
        with pytest.raises(ValueError, match="theta must be positive"):
            session.query().sampler("mc", theta=0)

    def test_sampler_spec_theta_rejects_zero(self, session):
        with pytest.raises(ValueError, match="theta must be positive"):
            session.query().sampler("mc:theta=0")

    def test_seed_rejects_bool(self, session):
        with pytest.raises(ValueError, match="seed must be an integer"):
            session.query().seed(True)

    def test_error_raised_at_builder_not_finalize(self, session):
        # the whole point of the fix: the bad knob never reaches
        # plan_blocks / finalize, so no store is ever drawn
        before = session.stats_snapshot()["stores_built"]
        with pytest.raises(ValueError):
            session.query().sampler("mc", theta=0, seed=1)
        assert session.stats_snapshot()["stores_built"] == before


# ----------------------------------------------------------------------
# CLI surfaces exit 2 on the bad knobs
# ----------------------------------------------------------------------
class TestCLIExitCodes:
    @pytest.mark.parametrize("theta", ["0", "-4"])
    def test_mpds_theta_exits_2(self, graph_file, capsys, theta):
        assert main(["mpds", graph_file, "--theta", theta]) == 2
        assert "theta must be positive" in capsys.readouterr().err

    def test_nds_theta_exits_2(self, graph_file, capsys):
        assert main(["nds", graph_file, "--theta", "0"]) == 2
        assert "theta must be positive" in capsys.readouterr().err

    def test_mpds_sampler_spec_theta_exits_2(self, graph_file, capsys):
        code = main([
            "mpds", graph_file, "--sampler", "mc:theta=0,seed=7",
        ])
        assert code == 2
        assert "theta must be positive" in capsys.readouterr().err

    def test_query_theta_exits_2(self, graph_file, capsys):
        code = main([
            "query", graph_file, "--sampler", "mc:theta=0,seed=7",
            "--run", "mpds",
        ])
        assert code == 2
        assert "theta must be positive" in capsys.readouterr().err

    def test_query_theta_flag_exits_2(self, graph_file, capsys):
        code = main(["query", graph_file, "--theta", "-1"])
        assert code == 2
        assert "theta must be positive" in capsys.readouterr().err


# ----------------------------------------------------------------------
# bug 3: pager short reads
# ----------------------------------------------------------------------
class _TruncatingFile:
    """Stub spill file whose reads come back short."""

    def __init__(self, inner, short_by: int) -> None:
        self._inner = inner
        self._short_by = short_by

    def seek(self, offset: int) -> None:
        self._inner.seek(offset)

    def read(self, nbytes: int) -> bytes:
        return self._inner.read(max(0, nbytes - self._short_by))

    def close(self) -> None:  # pragma: no cover - teardown only
        self._inner.close()


def _small_pager() -> _MaskPager:
    rng = np.random.default_rng(11)
    masks = rng.random((64, 40)) < 0.5
    packed = PackedMasks.from_bool(masks)
    blocks = [(0, 32), (32, 64)]
    budget = 32 * packed.words.shape[1] * 8
    return _MaskPager(packed, blocks, budget)


class TestPagerShortRead:
    def test_short_read_raises_descriptive_ioerror(self):
        pager = _small_pager()
        pager._file = _TruncatingFile(pager._file, short_by=8)
        with pytest.raises(IOError) as excinfo:
            pager.block_words(1)
        message = str(excinfo.value)
        assert "short read from world-store spill file" in message
        assert pager.path in message
        assert "block 1" in message

    def test_truncated_to_zero_names_expectation(self):
        pager = _small_pager()
        expected = pager._nbytes[0]
        pager._file = _TruncatingFile(pager._file, short_by=expected)
        with pytest.raises(IOError, match=f"expected {expected} bytes"):
            pager.block_words(0)

    def test_healthy_reads_unaffected(self):
        pager = _small_pager()
        first = pager.block_words(0).copy()
        again = pager.block_words(0)
        np.testing.assert_array_equal(first, again)
        assert pager.block_loads == 1  # second hit was resident

    def test_budgeted_store_roundtrip_still_exact(self):
        # end-to-end: a spilled store with an honest file still replays
        # byte-identically to the resident one
        graph = random_uncertain_graph(random.Random(7), 16, 0.3)
        resident = WorldStore.from_sampler(graph, None, 64, seed=3)
        words_per_row = resident.mask_matrix().words.shape[1]
        spilled = WorldStore.from_sampler(
            graph, None, 64, seed=3,
            memory_budget=4 * words_per_row * 8,
        )
        assert spilled._pager is not None
        for i in range(64):
            np.testing.assert_array_equal(
                resident.mask_row(i), spilled.mask_row(i)
            )
        spilled.close()
