"""``repro-lint``: AST-based determinism/lock/lifecycle/spec analysis.

The repo's determinism contract (byte-identical estimates across
engines, workers, packed masks, and delta steps) is enforced
dynamically by differential tests -- which cannot see hazards on paths
the tests don't exercise.  This package is the static half: four
checker families tuned to this codebase's idioms, a committed baseline
(``analysis/baseline.json``) for accepted legacy findings, and a CI
gate on zero *new* findings.

Checker families (ids in parentheses):

* determinism hazards (``DET101``..``DET104``) -- unseeded RNGs,
  hash-ordered set iteration, identity/repr flowing into cache keys
  (the PR 5 bug class), wall-clock branching;
* lock discipline (``LOCK201``) -- Session/serve shared attributes
  accessed without the owning lock, driven by an attribute-ownership
  registry;
* resource lifecycle (``RES301``..``RES303``) -- SharedMemory and
  tempfile handles with no reachable cleanup, resource-holding
  containers dropped without closing their values;
* spec-registry consistency (``SPEC401``..``SPEC403``) -- every spec
  literal in code/docstrings/markdown parses against ``repro.specs``,
  and engine vocabulary matches ``ENGINES``.

Run ``repro-lint src/repro`` (or ``python -m repro.analysis``); see
:mod:`repro.analysis.cli` for the gate/baseline workflow.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import load_baseline, partition, write_baseline
from .core import Checker, Finding, SourceFile, discover, run_checkers
from .determinism import DeterminismChecker
from .lifecycle import ResourceLifecycleChecker
from .locks import LockDisciplineChecker
from .spec_consistency import SpecConsistencyChecker

__all__ = [
    "Checker",
    "Finding",
    "SourceFile",
    "DeterminismChecker",
    "LockDisciplineChecker",
    "ResourceLifecycleChecker",
    "SpecConsistencyChecker",
    "all_checkers",
    "run_analysis",
    "load_baseline",
    "write_baseline",
    "partition",
]


def all_checkers() -> List[Checker]:
    """One fresh instance of every registered checker family."""
    return [
        DeterminismChecker(),
        LockDisciplineChecker(),
        ResourceLifecycleChecker(),
        SpecConsistencyChecker(),
    ]


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor holding ``.git`` or ``setup.py`` (else ``start``)."""
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / ".git").exists() or (candidate / "setup.py").is_file():
            return candidate
    return probe


def run_analysis(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    checkers: Optional[Sequence[Checker]] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Scan ``paths`` and return fingerprinted findings.

    ``root`` anchors the repo-relative labels used in fingerprints
    (auto-detected from the first path when omitted); ``select`` keeps
    only findings whose checker id starts with one of the given
    prefixes (``["DET"]``, ``["LOCK201"]``, ...).
    """
    paths = [Path(p) for p in paths]
    if root is None:
        root = find_repo_root(paths[0]) if paths else Path.cwd()
    sources = discover(paths, Path(root))
    findings = run_checkers(sources, list(checkers or all_checkers()))
    if select:
        findings = [
            f
            for f in findings
            if any(f.checker.startswith(prefix) for prefix in select)
        ]
    return findings
