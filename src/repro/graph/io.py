"""Reading and writing (uncertain) graphs as edge lists.

Formats
-------
Deterministic edge list: one ``u v`` pair per line.
Probabilistic edge list: one ``u v p`` triple per line, as distributed with
the paper's datasets (https://github.com/ArkaSaha/MPDS uses this layout).

Lines starting with ``#`` or ``%`` are comments.  Node labels are kept as
strings unless every label parses as an integer, in which case they are
converted (so files written by this module round-trip).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from .graph import Graph
from .uncertain import UncertainGraph

PathLike = Union[str, Path]


def _parse_lines(path: PathLike) -> List[List[str]]:
    rows: List[List[str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            rows.append(line.split())
    return rows


def _maybe_int_labels(rows: List[List[str]]) -> bool:
    for row in rows:
        for label in row[:2]:
            try:
                int(label)
            except ValueError:
                return False
    return True


def read_edge_list(path: PathLike) -> Graph:
    """Read a deterministic graph from a ``u v`` edge list file."""
    rows = _parse_lines(path)
    as_int = _maybe_int_labels(rows)
    graph = Graph()
    for row in rows:
        if len(row) < 2:
            raise ValueError(f"malformed edge line: {row!r}")
        u, v = row[0], row[1]
        if as_int:
            graph.add_edge(int(u), int(v))
        else:
            graph.add_edge(u, v)
    return graph


def read_uncertain_edge_list(path: PathLike) -> UncertainGraph:
    """Read an uncertain graph from a ``u v p`` edge list file."""
    rows = _parse_lines(path)
    as_int = _maybe_int_labels(rows)
    graph = UncertainGraph()
    for row in rows:
        if len(row) < 3:
            raise ValueError(f"malformed probabilistic edge line: {row!r}")
        u, v, p = row[0], row[1], float(row[2])
        if as_int:
            graph.add_edge(int(u), int(v), p)
        else:
            graph.add_edge(u, v, p)
    return graph


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write a deterministic graph as a ``u v`` edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v in sorted(graph.edges(), key=repr):
            handle.write(f"{u} {v}\n")


def write_uncertain_edge_list(graph: UncertainGraph, path: PathLike) -> None:
    """Write an uncertain graph as a ``u v p`` edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v, p in sorted(graph.weighted_edges(), key=repr):
            handle.write(f"{u} {v} {p:.9g}\n")
