"""Fig. 17: average-by-rank F1 of the approximate top-k vs exact.

Ground truth comes from the vectorised bitmask exact solver, so -- unlike
the paper, which could only afford its exact method on four tiny graphs
-- all four synthetics are covered for edge and 3-clique density, plus
ER7 for the diamond pattern.
"""

from repro.core.measures import CliqueDensity, EdgeDensity, PatternDensity
from repro.experiments import format_fig17, run_fig17, synthetic_graphs
from repro.patterns.pattern import Pattern

from .conftest import emit


def test_fig17(benchmark):
    graphs = synthetic_graphs()
    measures = {"edge": EdgeDensity(), "3-clique": CliqueDensity(3)}

    def run():
        rows = run_fig17(graphs=graphs, measures=measures, ks=(5, 10),
                         theta=400)
        rows += run_fig17(
            graphs={"ER7": graphs["ER7"]},
            measures={"diamond": PatternDensity(Pattern.diamond())},
            ks=(5, 10), theta=400,
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig17_f1_vs_exact", format_fig17(rows))
    average = sum(r.f1 for r in rows) / len(rows)
    # paper shape: "scores are reasonably high in all cases"
    assert average > 0.6
